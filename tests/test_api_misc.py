"""Tests for remaining public API surface: witnesses, graph views, misc."""

import subprocess
import sys

import pytest

import repro
from repro.detection.witness import CycleWitness, connecting_edges
from repro.engine.interleavings import all_unit_orders, interleaving_count
from repro.experiments.false_negatives import run_false_negatives
from repro.summary.graph import SummaryEdge
from repro.summary.settings import ATTR_DEP_FK


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_workflow(self):
        workload = repro.workloads.auction()
        graph = repro.build_summary_graph(
            workload.programs, workload.schema, repro.ATTR_DEP_FK
        )
        assert repro.is_robust_type2(graph)


class TestWitnessStructure:
    def _edge(self, source, target, counterflow=False):
        return SummaryEdge(source, "qa", 0, counterflow, "qb", 0, target)

    def test_closed_walk_accepted(self):
        witness = CycleWitness(
            edges=(self._edge("A", "B"), self._edge("B", "A", True)),
            reason="type-I",
        )
        assert witness.programs == ("A", "B")

    def test_broken_walk_rejected(self):
        with pytest.raises(ValueError, match="closed walk"):
            CycleWitness(
                edges=(self._edge("A", "B"), self._edge("C", "A")),
                reason="type-I",
            )

    def test_empty_walk_rejected(self):
        with pytest.raises(ValueError):
            CycleWitness(edges=(), reason="type-I")

    def test_describe_highlights(self):
        edge = self._edge("A", "A", True)
        witness = CycleWitness(edges=(edge,), reason="type-I", highlighted=(edge,))
        text = witness.describe()
        assert "*" in text and "counterflow" in text

    def test_connecting_edges_empty_for_same_node(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        assert connecting_edges(graph, "FindBids", "FindBids") == []

    def test_connecting_edges_form_path(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        edges = connecting_edges(graph, "FindBids", "PlaceBid#2")
        assert edges
        assert edges[0].source == "FindBids"
        assert edges[-1].target == "PlaceBid#2"
        for current, following in zip(edges, edges[1:]):
            assert current.target == following.source


class TestSummaryGraphViews:
    def test_edges_between(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        between = graph.edges_between("FindBids", "PlaceBid#1")
        assert {(e.source_stmt, e.target_stmt, e.counterflow) for e in between} == {
            ("q1", "q3", False), ("q2", "q5", False), ("q2", "q5", True),
        }

    def test_to_networkx_multigraph(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == graph.edge_count

    def test_program_graph_simple_edges(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        assert graph.program_graph.number_of_edges() <= graph.edge_count

    def test_statement_lookup_via_edge(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        edge = graph.counterflow_edges[0]
        assert graph.source_statement(edge).name == edge.source_stmt
        assert graph.target_statement(edge).name == edge.target_stmt

    def test_unknown_program_rejected(self, auction_workload):
        from repro.errors import ProgramError
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        with pytest.raises(ProgramError):
            graph.program("Nope")


class TestInterleavingCounts:
    def test_three_transaction_count(self, smallbank_workload):
        from repro.engine.instantiate import Instantiator, TupleUniverse
        universe = TupleUniverse(
            smallbank_workload.schema, {r.name: 1 for r in smallbank_workload.schema}
        )
        instantiator = Instantiator(universe)
        by_origin = {l.origin: l for l in smallbank_workload.unfolded()}
        account = universe.existing("Account")[0]
        checking = universe.existing("Checking")[0]
        transactions = [
            instantiator.instantiate(by_origin["DepositChecking"], [(account,), (checking,)])
            for _ in range(3)
        ]
        orders = list(all_unit_orders(transactions))
        assert len(orders) == interleaving_count(transactions)


class TestFalseNegativeHarnessFast:
    def test_size_one_scan(self):
        """A quick variant: only singleton subsets are searched."""
        result = run_false_negatives(max_subset_size=1, max_transactions=2)
        by_subset = {v.subset: v for v in result.verdicts}
        write_check = by_subset[frozenset({"WriteCheck"})]
        assert not write_check.detected_robust
        assert write_check.counterexample_found
        assert result.delivery_rejected
        text = result.to_text()
        assert "WriteCheck" in text


class TestModuleEntryPoint:
    def test_python_dash_m(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "auction"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "True" in completed.stdout
