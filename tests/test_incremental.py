"""Tests for incremental re-analysis and session-cache persistence."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Analyzer
from repro.btp.program import BTP, seq
from repro.btp.statement import Statement
from repro.cli import main
from repro.errors import ProgramError, ReproError
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, TPL_DEP


def _variant_balance(workload) -> BTP:
    """A modified SmallBank Balance program (reads both balances by key)."""
    savings = workload.schema.relation("Savings")
    checking = workload.schema.relation("Checking")
    return BTP(
        "Balance",
        seq(
            Statement.key_select("q7", savings, reads=["Balance"]),
            Statement.key_select("q8", checking, reads=["Balance"]),
            Statement.key_select("q8b", checking, reads=["Balance"]),
        ),
    )


def _assert_same_verdicts(session, fresh_workload):
    fresh = Analyzer(fresh_workload)
    for settings in (TPL_DEP, ATTR_DEP_FK):
        incremental = session.analyze(settings)
        rebuilt = fresh.analyze(settings)
        assert incremental.robust == rebuilt.robust
        assert incremental.type1_robust == rebuilt.type1_robust
        assert incremental.stats == rebuilt.stats
        assert incremental.graph.edges == rebuilt.graph.edges


class TestIncremental:
    def test_remove_program_matches_fresh_subset(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        session.analyze_matrix()
        session.remove_program("Balance")
        remaining = [
            name for name in smallbank_workload.program_names if name != "Balance"
        ]
        assert session.program_names == tuple(remaining)
        _assert_same_verdicts(session, smallbank_workload.subset(remaining))

    def test_add_program_matches_fresh_full(self, smallbank_workload):
        names = [n for n in smallbank_workload.program_names if n != "Balance"]
        session = Analyzer(smallbank_workload.subset(names))
        session.analyze_matrix()
        session.add_program(smallbank_workload.program("Balance"))
        assert set(session.program_names) == set(smallbank_workload.program_names)
        fresh = Analyzer(smallbank_workload)
        for settings in (TPL_DEP, ATTR_DEP_FK):
            incremental = session.analyze(settings)
            rebuilt = fresh.analyze(settings)
            assert incremental.robust == rebuilt.robust
            # add_program appends, so program order differs from the fresh
            # workload; compare order-insensitively.
            assert incremental.stats.edges == rebuilt.stats.edges
            assert incremental.stats.counterflow == rebuilt.stats.counterflow
            assert set(incremental.stats.program_names) == set(
                rebuilt.stats.program_names
            )
            assert set(incremental.graph.edges) == set(rebuilt.graph.edges)

    def test_replace_program_matches_fresh(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        session.analyze_matrix()
        variant = _variant_balance(smallbank_workload)
        session.replace_program(variant)
        # replace_program keeps the program's position, so a fresh session
        # over the same ordering must agree exactly (stats included).
        modified = Analyzer(
            [
                variant if program.name == "Balance" else program
                for program in smallbank_workload.programs
            ],
            schema=smallbank_workload.schema,
        )
        for settings in (TPL_DEP, ATTR_DEP_FK):
            assert (
                session.analyze(settings).robust
                == modified.analyze(settings).robust
            )
            assert session.analyze(settings).stats == modified.analyze(settings).stats

    def test_replace_recomputes_only_involved_blocks(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        session.analyze(ATTR_DEP_FK)
        total_ltps = len(session.unfolded())
        before = session.cache_info()["block_computations"]
        assert before == total_ltps**2
        session.replace_program(_variant_balance(smallbank_workload))
        session.analyze(ATTR_DEP_FK)
        recomputed = session.cache_info()["block_computations"] - before
        # Balance unfolds to one LTP: 2k - 1 blocks involve it
        assert recomputed == 2 * total_ltps - 1

    def test_replace_repacks_only_the_edited_programs_rows(
        self, smallbank_workload
    ):
        """The plane arena reuses untouched rows across replace_program:
        only the edited program's occurrence rows are repacked."""
        session = Analyzer(smallbank_workload)
        session.analyze(ATTR_DEP_FK)
        store = session.edge_block_store(ATTR_DEP_FK)
        before = store.plane_info()
        assert before["rows_packed"] == before["rows"]
        session.replace_program(_variant_balance(smallbank_workload))
        session.analyze(ATTR_DEP_FK)
        after = store.plane_info()
        # The cumulative pack counter advanced by exactly the variant's
        # occurrence rows (Balance unfolds to a single LTP), proving every
        # other program's rows were reused in place.
        new_rows = next(
            len(ltp.occurrences)
            for ltp in session.unfolded()
            if ltp.name.startswith("Balance")
        )
        assert after["rows_packed"] == before["rows_packed"] + new_rows
        assert after["programs"] == before["programs"]

    def test_replace_back_and_forth_is_stable(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        original_report = session.analyze(ATTR_DEP_FK)
        original = smallbank_workload.program("Balance")
        session.replace_program(_variant_balance(smallbank_workload))
        session.analyze(ATTR_DEP_FK)
        session.replace_program(original)
        assert (
            session.analyze(ATTR_DEP_FK).to_dict() == original_report.to_dict()
        )

    def test_subset_reports_survive_unrelated_changes(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        subset_report = session.analyze(ATTR_DEP_FK, ["Amalgamate", "TransactSavings"])
        session.replace_program(_variant_balance(smallbank_workload))
        # the cached subset report does not involve Balance: same object
        assert (
            session.analyze(ATTR_DEP_FK, ["Amalgamate", "TransactSavings"])
            is subset_report
        )

    def test_add_existing_program_rejected(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        with pytest.raises(ProgramError, match="already exists"):
            session.add_program(smallbank_workload.program("Balance"))

    def test_remove_unknown_program_rejected(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        with pytest.raises(ProgramError, match="unknown program"):
            session.remove_program("Nope")

    def test_replace_unknown_program_rejected(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        with pytest.raises(ProgramError, match="unknown program"):
            session.replace_program(_variant_balance(smallbank_workload), name="Nope")

    def test_replace_validates_new_program(self, smallbank_workload, single_schema):
        from tests.conftest import make_reader

        session = Analyzer(smallbank_workload)
        alien = make_reader(single_schema, name="Balance")  # unknown relation R
        with pytest.raises(ReproError):
            session.replace_program(alien)

    def test_parallel_session_matches_serial(self, auction_workload):
        serial = Analyzer(auction_workload)
        parallel = Analyzer(auction_workload, jobs=4)
        for settings in ALL_SETTINGS:
            assert (
                parallel.analyze(settings).to_dict()
                == serial.analyze(settings).to_dict()
            )
        assert parallel.robust_subsets(ATTR_DEP_FK) == serial.robust_subsets(
            ATTR_DEP_FK
        )


class TestPersistence:
    def test_save_load_round_trip_zero_recomputation(
        self, smallbank_workload, tmp_path
    ):
        warm = Analyzer(smallbank_workload)
        warm_reports = {
            settings.label: warm.analyze(settings) for settings in ALL_SETTINGS
        }
        path = tmp_path / "session.cache"
        warm.save_cache(path)

        fresh = Analyzer(smallbank_workload)
        fresh.load_cache(path)
        for settings in ALL_SETTINGS:
            revived = fresh.analyze(settings)
            assert revived.to_dict() == warm_reports[settings.label].to_dict()
        info = fresh.cache_info()
        assert info["block_computations"] == 0
        assert info["blocks_loaded"] == info["edge_blocks"]

    def test_loaded_session_answers_subsets_without_recomputation(
        self, auction_workload, tmp_path
    ):
        warm = Analyzer(auction_workload)
        expected = warm.robust_subsets(ATTR_DEP_FK)
        path = tmp_path / "auction.cache"
        warm.save_cache(path)
        fresh = Analyzer(auction_workload)
        fresh.load_cache(path)
        assert fresh.robust_subsets(ATTR_DEP_FK) == expected
        assert fresh.cache_info()["block_computations"] == 0

    def test_cache_file_is_json(self, smallbank_workload, tmp_path):
        session = Analyzer(smallbank_workload)
        session.analyze(ATTR_DEP_FK)
        path = tmp_path / "session.cache"
        session.save_cache(path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-analyzer-cache"
        assert data["workload"] == "SmallBank"
        assert set(data["unfolded"]) == set(smallbank_workload.program_names)

    def test_load_rejects_wrong_max_loop_iterations(
        self, tpcc_workload, tmp_path
    ):
        warm = Analyzer(tpcc_workload, max_loop_iterations=1)
        warm.analyze(ATTR_DEP_FK)
        path = tmp_path / "tpcc.cache"
        warm.save_cache(path)
        fresh = Analyzer(tpcc_workload, max_loop_iterations=2)
        with pytest.raises(ProgramError, match="max_loop_iterations"):
            fresh.load_cache(path)

    def test_load_rejects_foreign_workload(
        self, smallbank_workload, auction_workload, tmp_path
    ):
        warm = Analyzer(smallbank_workload)
        warm.analyze(ATTR_DEP_FK)
        path = tmp_path / "sb.cache"
        warm.save_cache(path)
        with pytest.raises(ProgramError, match="not.*in workload"):
            Analyzer(auction_workload).load_cache(path)

    def test_save_after_edit_drops_source_hint(self, tmp_path):
        """A post-edit cache must not advertise the original source string
        to `repro cache load` — the edited workload is not resolvable from
        it, so the loader should ask for --workload instead."""
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        session.replace_program(_variant_balance(session.workload))
        path = tmp_path / "sb.cache"
        session.save_cache(path)
        assert json.loads(path.read_text())["source"] is None

    def test_load_rejects_stale_program(self, smallbank_workload, tmp_path):
        """A same-named program whose statements changed must be rejected —
        stale blocks would otherwise silently answer for the old version."""
        warm = Analyzer(smallbank_workload)
        warm.analyze(ATTR_DEP_FK)
        path = tmp_path / "sb.cache"
        warm.save_cache(path)
        modified = Analyzer(
            [
                _variant_balance(smallbank_workload) if p.name == "Balance" else p
                for p in smallbank_workload.programs
            ],
            schema=smallbank_workload.schema,
        )
        with pytest.raises(ProgramError, match="differs from"):
            modified.load_cache(path)

    def test_load_rejects_changed_schema(self, smallbank_workload, tmp_path):
        from repro.schema import Relation, Schema

        warm = Analyzer(smallbank_workload)
        warm.analyze(ATTR_DEP_FK)
        path = tmp_path / "sb.cache"
        warm.save_cache(path)
        extended = Schema(
            smallbank_workload.schema.relations
            + (Relation("Audit", ("Id", "Note"), key=("Id",)),),
            smallbank_workload.schema.foreign_keys,
        )
        other = Analyzer(list(smallbank_workload.programs), schema=extended)
        with pytest.raises(ProgramError, match="different schema"):
            other.load_cache(path)

    def test_load_rejects_non_cache_file(self, smallbank_workload, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ProgramError, match="not a repro-analyzer-cache"):
            Analyzer(smallbank_workload).load_cache(path)

    def test_incremental_after_load(self, smallbank_workload, tmp_path):
        warm = Analyzer(smallbank_workload)
        warm.analyze(ATTR_DEP_FK)
        path = tmp_path / "sb.cache"
        warm.save_cache(path)
        fresh = Analyzer(smallbank_workload)
        fresh.load_cache(path)
        fresh.replace_program(_variant_balance(smallbank_workload))
        report = fresh.analyze(ATTR_DEP_FK)
        total_ltps = len(fresh.unfolded())
        assert fresh.cache_info()["block_computations"] == 2 * total_ltps - 1
        modified = Analyzer(
            [_variant_balance(smallbank_workload)]
            + [
                program
                for program in smallbank_workload.programs
                if program.name != "Balance"
            ],
            schema=smallbank_workload.schema,
        )
        assert report.robust == modified.analyze(ATTR_DEP_FK).robust


class TestCacheCli:
    def test_cache_save_then_load(self, tmp_path, capsys):
        path = tmp_path / "sb.cache"
        assert main(["cache", "save", "smallbank", str(path), "--all-settings"]) == 0
        out = capsys.readouterr().out
        assert "saved session cache" in out
        assert path.is_file()
        assert main(["cache", "load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 computed" in out
        assert "robust against MVRC" in out

    def test_cache_load_json_reports_zero_computations(self, tmp_path, capsys):
        path = tmp_path / "auction.cache"
        assert main(["cache", "save", "auction", str(path)]) == 0
        capsys.readouterr()
        assert main(["cache", "load", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["robust"] is True
        assert data["cache_info"]["block_computations"] == 0
        assert data["cache_info"]["blocks_loaded"] > 0

    def test_cache_load_explicit_workload_override(self, tmp_path, capsys):
        path = tmp_path / "sb.cache"
        assert main(["cache", "save", "smallbank", str(path)]) == 0
        capsys.readouterr()
        assert main(["cache", "load", str(path), "--workload", "smallbank"]) == 0
        assert "0 computed" in capsys.readouterr().out

    def test_cache_load_wrong_workload_exits_2(self, tmp_path, capsys):
        path = tmp_path / "sb.cache"
        assert main(["cache", "save", "smallbank", str(path)]) == 0
        capsys.readouterr()
        assert main(["cache", "load", str(path), "--workload", "tpcc"]) == 2
        assert "error" in capsys.readouterr().err

    def test_cache_save_with_jobs(self, tmp_path, capsys):
        path = tmp_path / "sb.cache"
        assert main(["cache", "save", "smallbank", str(path), "--jobs", "2"]) == 0
        assert path.is_file()


class TestOneShotPlumbing:
    def test_max_loop_iterations_forwarded(self, tpcc_workload):
        """The one-shot path no longer hard-defaults unfold to 2 (it used
        to disagree with is_robust on k != 2)."""
        from repro.detection.subsets import is_robust, robust_subsets

        for k in (1, 2):
            grid = robust_subsets(
                tpcc_workload.programs,
                tpcc_workload.schema,
                ATTR_DEP_FK,
                max_loop_iterations=k,
            )
            full = frozenset(tpcc_workload.program_names)
            assert grid[full] == is_robust(
                tpcc_workload.programs,
                tpcc_workload.schema,
                ATTR_DEP_FK,
                max_loop_iterations=k,
            )

    def test_jobs_forwarded(self, auction_workload):
        from repro.detection.subsets import robust_subsets

        serial = robust_subsets(
            auction_workload.programs, auction_workload.schema, TPL_DEP
        )
        parallel = robust_subsets(
            auction_workload.programs, auction_workload.schema, TPL_DEP, jobs=4
        )
        assert serial == parallel
