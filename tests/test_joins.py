"""Tests for the multi-relation SELECT extension (Section 5.4)."""

import pytest

from repro.btp.statement import StatementType
from repro.detection.typeii import is_robust_type2
from repro.errors import SqlError
from repro.schema import Relation, Schema
from repro.sqlfront import parse_program
from repro.summary.construct import build_summary_graph
from repro.summary.settings import ATTR_DEP_FK

SCHEMA = Schema(
    [
        Relation("Orders", ["o_id", "o_total"], key=["o_id"]),
        Relation("Lines", ["l_id", "l_order", "l_amount"], key=["l_id"]),
    ]
)


class TestJoinTranslation:
    def test_join_desugars_to_per_relation_pred_selects(self):
        program = parse_program(
            "SELECT o_total, l_amount FROM Orders, Lines WHERE o_id = l_order;",
            SCHEMA,
            "JoinReport",
        )
        stmts = program.statements()
        assert [s.stype for s in stmts] == [StatementType.PRED_SELECT] * 2
        orders, lines = stmts
        assert orders.relation == "Orders"
        assert orders.pread_set == frozenset({"o_id"})
        assert orders.read_set == frozenset({"o_total"})
        assert lines.relation == "Lines"
        assert lines.pread_set == frozenset({"l_order"})
        assert lines.read_set == frozenset({"l_amount"})

    def test_aliases_are_accepted(self):
        program = parse_program(
            "SELECT o_total FROM Orders o, Lines l WHERE o.o_id = l.l_order;",
            SCHEMA,
            "Aliased",
        )
        assert len(program.statements()) == 2

    def test_shared_attribute_goes_to_both_relations(self):
        schema = Schema(
            [
                Relation("A", ["k", "common"], key=["k"]),
                Relation("B", ["k2", "common"], key=["k2"]),
            ]
        )
        program = parse_program(
            "SELECT common FROM A, B WHERE common > 0;", schema, "Shared"
        )
        first, second = program.statements()
        assert first.pread_set == frozenset({"common"})
        assert second.pread_set == frozenset({"common"})

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SqlError, match="not in any"):
            parse_program(
                "SELECT nope FROM Orders, Lines WHERE o_id = l_order;",
                SCHEMA,
                "Bad",
            )

    def test_single_relation_select_unaffected(self):
        program = parse_program(
            "SELECT o_total FROM Orders WHERE o_id = :x;", SCHEMA, "Plain"
        )
        (stmt,) = program.statements()
        assert stmt.stype is StatementType.KEY_SELECT


class TestJoinRobustness:
    def _programs(self):
        report = parse_program(
            "SELECT o_total, l_amount FROM Orders, Lines WHERE o_id = l_order;",
            SCHEMA,
            "Report",
        )
        add_line = parse_program(
            """
            UPDATE Orders SET o_total = o_total + :a WHERE o_id = :o;
            INSERT INTO Lines VALUES (:l, :o, :a);
            """,
            SCHEMA,
            "AddLine",
        )
        return [report, add_line]

    def test_join_workload_not_robust(self):
        """The reporting join can observe a half-applied AddLine: the
        summary graph correctly contains a type-II cycle."""
        graph = build_summary_graph(self._programs(), SCHEMA, ATTR_DEP_FK)
        assert not is_robust_type2(graph)

    def test_join_edges_cover_both_relations(self):
        graph = build_summary_graph(self._programs(), SCHEMA, ATTR_DEP_FK)
        relations_with_edges = set()
        for edge in graph.edges:
            stmt = graph.source_statement(edge)
            relations_with_edges.add(stmt.relation)
        assert relations_with_edges == {"Orders", "Lines"}
