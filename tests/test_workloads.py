"""Tests for the workload package: integrity, registry, subsets."""

import pytest

from repro.errors import ProgramError
from repro.workloads import auction, auction_n, get_workload, smallbank, tpcc
from repro.workloads.base import Workload


class TestWorkloadContainer:
    def test_programs_validate_against_schema(self):
        for factory in (smallbank, tpcc, auction):
            workload = factory()
            for program in workload.programs:
                program.validate_against(workload.schema)

    def test_program_lookup(self):
        workload = smallbank()
        assert workload.program("Balance").name == "Balance"
        with pytest.raises(ProgramError):
            workload.program("Nope")

    def test_subset(self):
        workload = smallbank()
        subset = workload.subset(["Balance", "WriteCheck"])
        assert subset.program_names == ("Balance", "WriteCheck")
        assert set(subset.sql) == {"Balance", "WriteCheck"}
        assert subset.schema is workload.schema

    def test_abbreviations(self):
        workload = tpcc()
        assert workload.abbreviate("NewOrder") == "NO"
        assert workload.abbreviate("Unknown") == "Unknown"

    def test_duplicate_program_names_rejected(self):
        workload = smallbank()
        with pytest.raises(ProgramError):
            Workload(
                "bad", workload.schema,
                (workload.programs[0], workload.programs[0]),
            )

    def test_str(self):
        assert "5 programs" in str(smallbank())


class TestStatementDetails:
    """Spot checks against Figures 2, 10 and 17."""

    def test_auction_figure2(self):
        by_name = {}
        for program in auction().programs:
            by_name.update(program.statements_by_name())
        q2 = by_name["q2"]
        assert q2.stype.value == "pred sel"
        assert q2.pread_set == q2.read_set == frozenset({"bid"})
        q5 = by_name["q5"]
        assert q5.read_set == frozenset() and q5.write_set == frozenset({"bid"})
        q6 = by_name["q6"]
        assert q6.write_set == frozenset({"id", "buyerId", "bid"})

    def test_smallbank_figure10(self):
        by_name = {}
        for program in smallbank().programs:
            by_name.update(program.statements_by_name())
        assert len(by_name) == 16
        assert by_name["q1"].read_set == frozenset({"CustomerId"})
        assert by_name["q3"].write_set == frozenset({"Balance"})
        assert by_name["q16"].stype.value == "key upd"

    def test_tpcc_figure17_counts(self):
        by_name = {}
        for program in tpcc().programs:
            by_name.update(program.statements_by_name())
        assert len(by_name) == 29

    def test_tpcc_q14_stock_sets(self):
        new_order = tpcc().program("NewOrder")
        q14 = new_order.statements_by_name()["q14"]
        assert len(q14.read_set) == 15
        assert q14.write_set == frozenset(
            {"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"}
        )

    def test_tpcc_q11_insert_omits_carrier(self):
        q11 = tpcc().program("NewOrder").statements_by_name()["q11"]
        assert "o_carrier_id" not in q11.write_set
        assert len(q11.write_set) == 7

    def test_tpcc_q23_reads_fifteen_attributes(self):
        q23 = tpcc().program("Payment").statements_by_name()["q23"]
        assert len(q23.read_set) == 15
        assert q23.write_set == frozenset(
            {"c_balance", "c_payment_cnt", "c_ytd_payment"}
        )

    def test_tpcc_structure_strings(self):
        workload = tpcc()
        assert str(workload.program("Delivery").root) == "loop(q1; q2; q3; q4; q5; q6; q7)"
        assert str(workload.program("OrderStatus").root) == "(q16 | q17); q18; q19"
        assert (
            str(workload.program("Payment").root)
            == "q20; q21; (q22 | ε); q23; (q24; q25 | ε); q26"
        )


class TestAuctionN:
    def test_auction_n_program_count(self):
        for n in (1, 2, 5):
            assert len(auction_n(n).programs) == 2 * n

    def test_auction_n_shares_buyer_and_log(self):
        workload = auction_n(3)
        names = {relation.name for relation in workload.schema}
        assert names == {"Buyer", "Log", "Bids1", "Bids2", "Bids3"}

    def test_auction_1_matches_auction(self):
        base = auction()
        scaled = auction_n(1)
        assert [str(p.root) for p in scaled.programs] == [
            str(p.root) for p in base.programs
        ]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            auction_n(0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_workload("smallbank").name == "SmallBank"
        assert get_workload("TPCC").name == "TPC-C"
        assert get_workload("tpc-c").name == "TPC-C"
        assert get_workload("Auction").name == "Auction"

    def test_scaled_auction(self):
        assert get_workload("auction(3)").name == "Auction(3)"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_workload("nope")
        with pytest.raises(ValueError):
            get_workload("auction(x)")
