"""Tests for the cross-session content-addressed block store.

Three layers:

* :class:`BlockStore` unit semantics — refcount pinning, canonical
  publish, LRU eviction under the byte budget, clear/release hygiene;
* the exactness contract — two sessions whose workloads are one program
  apart share exactly ``(n - r)**2`` blocks (``n`` LTPs total, ``r`` LTPs
  of the differing program) with bit-identical
  :meth:`RobustnessReport.to_dict` output vs a store-disabled session,
  property-tested over every builtin workload x all four settings rows;
* refcount hygiene under churn — 500 ``replace_program`` cycles against a
  deliberately tiny budget leak no entries, keep bytes bounded, and leave
  zero pinned blocks once the sessions are gone.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.analysis import Analyzer
from repro.btp.program import BTP, seq
from repro.btp.statement import Statement
from repro.store import BlockStore, entry_bytes
from repro.store.blockstore import ENTRY_OVERHEAD_BYTES
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import WORKLOADS, get_workload


def _key(tag: str) -> tuple[str, str, str, str]:
    return ("schema", "label", f"fp_{tag}", f"fp_{tag}")


_COORDS: tuple = ((0, 0, True, False),)


class TestBlockStoreUnit:
    def test_miss_then_publish_then_hit(self):
        store = BlockStore()
        assert store.get(_key("a")) is None
        published = store.publish(_key("a"), _COORDS)
        assert published == _COORDS
        assert store.get(_key("a")) is published
        info = store.info()
        assert info["shared_hits"] == 1
        assert info["misses"] == 1
        assert info["publishes"] == 1
        assert info["unique_blocks"] == 1

    def test_first_publisher_wins_canonical_coords(self):
        store = BlockStore()
        first = ((0, 0, True, False),)
        second = ((0, 0, True, False),)  # equal content, distinct object
        assert store.publish(_key("a"), first) is first
        assert store.publish(_key("a"), second) is first
        assert store.info()["publishes"] == 1

    def test_pinned_entries_survive_over_budget(self):
        # Budget far below one entry: as long as the publisher holds its
        # reference the entry must stay (evicting it would only break
        # sharing without freeing the coords the session still holds).
        store = BlockStore(budget_bytes=1)
        store.publish(_key("a"), _COORDS)
        assert store.info()["unique_blocks"] == 1
        assert store.info()["pinned_blocks"] == 1
        store.release(_key("a"))
        # Last reference gone: the entry is now evictable and the budget
        # claims it immediately.
        info = store.info()
        assert info["unique_blocks"] == 0
        assert info["evictions"] == 1
        assert info["bytes"] == 0

    def test_eviction_is_lru_oldest_unpinned_first(self):
        per_entry = entry_bytes(_COORDS)
        store = BlockStore(budget_bytes=2 * per_entry)
        for tag in ("a", "b", "c"):
            store.publish(_key(tag), _COORDS)
            store.release(_key(tag))
        # Three unpinned entries against a two-entry budget: "a" (oldest)
        # must be the one evicted.
        assert store.get(_key("a")) is None
        assert store.get(_key("b")) is not None
        assert store.get(_key("c")) is not None
        assert store.info()["evictions"] == 1

    def test_get_repins_an_unpinned_entry(self):
        per_entry = entry_bytes(_COORDS)
        store = BlockStore(budget_bytes=2 * per_entry)
        for tag in ("a", "b"):
            store.publish(_key(tag), _COORDS)
            store.release(_key(tag))
        assert store.get(_key("a")) is not None  # re-pin the oldest
        store.publish(_key("c"), _COORDS)
        store.release(_key("c"))
        # Over budget with "a" pinned again: "b" is the oldest *unpinned*.
        assert store.get(_key("b")) is None
        assert store.get(_key("a")) is not None

    def test_retain_and_release_balance(self):
        store = BlockStore(budget_bytes=1)
        store.publish(_key("a"), _COORDS)
        assert store.retain(_key("a")) is True  # refs: 2
        store.release(_key("a"))  # refs: 1 -> still pinned
        assert store.info()["unique_blocks"] == 1
        store.release(_key("a"))  # refs: 0 -> evicted (budget 1)
        assert store.info()["unique_blocks"] == 0
        assert store.retain(_key("a")) is False

    def test_release_after_clear_is_a_noop(self):
        store = BlockStore()
        store.publish(_key("a"), _COORDS)
        store.clear()
        store.release(_key("a"))  # must not raise
        assert store.info()["unique_blocks"] == 0
        assert store.info()["publishes"] == 0

    def test_zero_budget_keeps_only_pinned_entries(self):
        store = BlockStore(budget_bytes=0)
        store.publish(_key("a"), _COORDS)
        assert store.info()["unique_blocks"] == 1
        store.release(_key("a"))
        assert store.info()["unique_blocks"] == 0

    def test_none_budget_never_evicts(self):
        store = BlockStore(budget_bytes=None)
        for index in range(100):
            key = _key(str(index))
            store.publish(key, _COORDS)
            store.release(key)
        info = store.info()
        assert info["unique_blocks"] == 100
        assert info["evictions"] == 0
        assert info["bytes"] == 100 * entry_bytes(_COORDS)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            BlockStore(budget_bytes=-1)

    def test_entry_bytes_is_deterministic(self):
        coords = tuple((i, i, True, False) for i in range(7))
        assert entry_bytes(coords) == ENTRY_OVERHEAD_BYTES + 72 * 7
        assert entry_bytes(coords) == entry_bytes(tuple(coords))


def _variant_balance(workload) -> BTP:
    """A modified SmallBank Balance (same shape as test_incremental's)."""
    savings = workload.schema.relation("Savings")
    checking = workload.schema.relation("Checking")
    return BTP(
        "Balance",
        seq(
            Statement.key_select("q7", savings, reads=["Balance"]),
            Statement.key_select("q8", checking, reads=["Balance"]),
            Statement.key_select("q8b", checking, reads=["Balance"]),
        ),
    )


class TestCrossSessionSharing:
    def test_one_program_apart_shares_exactly_n_minus_r_squared(self):
        """Replace one program: every block not involving it is adopted."""
        store = BlockStore()
        tenant_a = Analyzer("smallbank", block_store=store)
        tenant_a.analyze(ATTR_DEP_FK)
        total = len(tenant_a.unfolded())
        replaced = len(tenant_a.unfolded(["Balance"]))

        workload = tenant_a.workload
        variant_programs = [
            _variant_balance(workload) if p.name == "Balance" else p
            for p in workload.programs
        ]
        tenant_b = Analyzer(
            variant_programs, schema=workload.schema, block_store=store
        )
        report_shared = tenant_b.analyze(ATTR_DEP_FK)

        info = tenant_b.store_info()
        assert info["attached"] is True
        assert info["shared_hits"] == (total - replaced) ** 2
        # The blocks involving the variant were computed and published.
        assert info["published"] == total**2 - (total - replaced) ** 2

        storeless = Analyzer(variant_programs, schema=workload.schema)
        assert report_shared.to_dict() == storeless.analyze(ATTR_DEP_FK).to_dict()

    @hyp_settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(sorted(WORKLOADS)),
        settings=st.sampled_from(ALL_SETTINGS),
        drop=st.integers(min_value=0, max_value=20),
    )
    def test_sharing_is_exact_across_workloads_and_settings(
        self, name, settings, drop
    ):
        """Tenant B = tenant A minus one program: B adopts *all* its blocks,
        exactly ``(n - r)**2`` of them, and its report is bit-identical to
        a store-disabled analysis of the same workload."""
        store = BlockStore()
        tenant_a = Analyzer(name, block_store=store)
        tenant_a.analyze(settings)
        workload = tenant_a.workload
        dropped = workload.program_names[drop % len(workload.programs)]
        remaining = [n for n in workload.program_names if n != dropped]
        remaining_ltps = len(tenant_a.unfolded(remaining))

        tenant_b = Analyzer(workload.subset(remaining), block_store=store)
        report_shared = tenant_b.analyze(settings)

        info = tenant_b.store_info()
        assert info["shared_hits"] == remaining_ltps**2
        assert info["published"] == 0
        # Adopted blocks still count as computed: the cache_info contract
        # (and with it every churn/replay trace) is store-invariant.
        assert (
            tenant_b.cache_info()["block_computations"] == remaining_ltps**2
        )

        storeless = Analyzer(workload.subset(remaining))
        assert report_shared.to_dict() == storeless.analyze(settings).to_dict()

    def test_disjoint_schemas_share_nothing(self):
        store = BlockStore()
        first = Analyzer("smallbank", block_store=store)
        first.analyze(ATTR_DEP_FK)
        second = Analyzer("auction", block_store=store)
        second.analyze(ATTR_DEP_FK)
        assert second.store_info()["shared_hits"] == 0

    def test_store_info_without_store_reports_detached(self):
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        info = session.store_info()
        assert info == {
            "attached": False,
            "shared_hits": 0,
            "published": 0,
            "refs": 0,
        }


class TestRefcountHygiene:
    def test_500_replace_cycles_leak_nothing_and_stay_bounded(self):
        """Flip-flop one program 500 times against a tiny budget: evictions
        happen, bytes stay bounded by pinned + budget, refs never grow, and
        dropping the session unpins everything."""
        budget = 4 * ENTRY_OVERHEAD_BYTES
        store = BlockStore(budget_bytes=budget)
        session = Analyzer("smallbank", block_store=store)
        session.analyze(ATTR_DEP_FK)
        total = len(session.unfolded())
        expected_refs = total**2
        assert session.store_info()["refs"] == expected_refs

        workload = session.workload
        original = workload.program("Balance")
        variant = _variant_balance(workload)
        max_bytes = 0
        for iteration in range(500):
            session.replace_program(variant if iteration % 2 == 0 else original)
            session.analyze(ATTR_DEP_FK)
            # One ref per cached pair, no matter how many edits happened.
            assert session.store_info()["refs"] == expected_refs
            max_bytes = max(max_bytes, store.info()["bytes"])

        info = store.info()
        # The session pins exactly its current blocks; everything beyond
        # pinned + budget must have been evicted along the way.
        assert info["pinned_blocks"] == expected_refs
        pinned_bytes_bound = expected_refs * (
            ENTRY_OVERHEAD_BYTES + 72 * 64
        )  # generous per-block coord bound
        assert max_bytes <= pinned_bytes_bound + budget + (
            ENTRY_OVERHEAD_BYTES + 72 * 64
        )
        assert info["evictions"] > 0
        assert info["unique_blocks"] == info["pinned_blocks"]

        del session
        gc.collect()
        info = store.info()
        assert info["pinned_blocks"] == 0
        # With every pin gone the budget applies to the whole store.
        assert info["bytes"] <= budget

    def test_clear_resets_session_store_accounting(self):
        store = BlockStore()
        session = Analyzer("smallbank", block_store=store)
        session.analyze(ATTR_DEP_FK)
        assert session.store_info()["refs"] > 0
        session.clear_cache()
        gc.collect()  # the dropped EdgeBlockStores' finalizers release refs
        assert session.store_info()["refs"] == 0
        assert store.info()["pinned_blocks"] == 0

    def test_fork_retains_parent_blocks(self):
        store = BlockStore()
        parent = Analyzer("smallbank", block_store=store)
        parent.analyze(ATTR_DEP_FK)
        refs = parent.store_info()["refs"]
        fork = parent.fork()
        assert fork.store_info()["refs"] == refs
        # Both sessions pin the same entries; dropping one keeps them.
        del parent
        gc.collect()
        assert store.info()["pinned_blocks"] == refs
        del fork
        gc.collect()
        assert store.info()["pinned_blocks"] == 0

    def test_remove_program_releases_its_refs(self):
        store = BlockStore()
        session = Analyzer("smallbank", block_store=store)
        session.analyze(ATTR_DEP_FK)
        total = len(session.unfolded())
        removed_ltps = len(session.unfolded(["Balance"]))
        session.remove_program("Balance")
        assert session.store_info()["refs"] == (total - removed_ltps) ** 2


def test_builtin_workloads_registry_matches_get_workload():
    for name in WORKLOADS:
        assert get_workload(name).name == Analyzer(name).workload.name
