"""Tests for the workload file loader and the Section 5.4 engine variant."""

from pathlib import Path

import pytest

from repro.engine.executor import execute
from repro.engine.instantiate import Instantiator, TupleUniverse
from repro.engine.interleavings import serial_unit_order
from repro.errors import SqlError
from repro.mvsched.mvrc import allowed_under_mvrc
from repro.mvsched.operations import OpKind
from repro.summary.settings import ATTR_DEP_FK
from repro.workloads import load_workload

AUCTION_FILE = """
WORKLOAD FileAuction

TABLE Buyer (id*, calls)
TABLE Bids (buyerId*, bid)
TABLE Log (id*, buyerId, bid)
FK f1: Bids(buyerId) -> Buyer(id)
FK f2: Log(buyerId) -> Buyer(id)

PROGRAM FindBids
UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
SELECT bid FROM Bids WHERE bid >= :T;
COMMIT;
END

PROGRAM PlaceBid
UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
SELECT bid INTO :C FROM Bids WHERE buyerId = :B;
IF :C < :V THEN
    UPDATE Bids SET bid = :V WHERE buyerId = :B;
END IF;
INSERT INTO Log VALUES (:logId, :B, :V);
COMMIT;
END

ANNOTATE PlaceBid: q1 = f1(q2)
ANNOTATE PlaceBid: q1 = f1(q3)
ANNOTATE PlaceBid: q1 = f2(q4)
"""


class TestLoader:
    def test_load_from_text(self):
        workload = load_workload(AUCTION_FILE)
        assert workload.name == "FileAuction"
        assert workload.program_names == ("FindBids", "PlaceBid")
        assert len(workload.schema.relations) == 3

    def test_keys_parsed_from_stars(self):
        workload = load_workload(AUCTION_FILE)
        assert workload.schema.relation("Buyer").key == ("id",)
        assert workload.schema.relation("Log").key == ("id",)

    def test_annotations_attached(self):
        workload = load_workload(AUCTION_FILE)
        constraints = workload.program("PlaceBid").constraints
        assert {(c.fk, c.source, c.target) for c in constraints} == {
            ("f1", "q2", "q1"),
            ("f1", "q3", "q1"),
            ("f2", "q4", "q1"),
        }

    def test_file_auction_matches_builtin_verdicts(self, auction_workload):
        """The file version reproduces the paper's auction analysis."""
        workload = load_workload(AUCTION_FILE)
        report = workload.analyze(ATTR_DEP_FK)
        assert report.robust and not report.type1_robust
        graph = workload.summary_graph(ATTR_DEP_FK)
        reference = auction_workload.summary_graph(ATTR_DEP_FK)
        assert graph.edge_count == reference.edge_count
        assert graph.counterflow_count == reference.counterflow_count

    def test_load_from_path(self, tmp_path):
        path = tmp_path / "auction.workload"
        path.write_text(AUCTION_FILE)
        workload = load_workload(path)
        assert workload.name == "FileAuction"

    def test_stem_used_without_workload_line(self, tmp_path):
        path = tmp_path / "mything.workload"
        path.write_text(AUCTION_FILE.replace("WORKLOAD FileAuction", ""))
        assert load_workload(path).name == "mything"

    def test_example_ticketing_file_loads(self):
        path = Path(__file__).resolve().parent.parent / "examples" / "ticketing.workload"
        workload = load_workload(path)
        assert set(workload.program_names) == {
            "BookSeats", "ListAvailability", "CancelBooking",
        }
        workload.analyze(ATTR_DEP_FK)  # must not raise

    @pytest.mark.parametrize(
        "mutation,message",
        [
            (lambda t: t.replace("TABLE Buyer (id*, calls)", ""), "unknown"),
            (lambda t: t.replace("PROGRAM FindBids", "PROGRAM FindBids\nPROGRAM FindBids"), None),
            (lambda t: t + "\nANNOTATE Nope: q1 = f1(q2)", "unknown program"),
            (lambda t: t.replace("END\n\nANNOTATE", "\nANNOTATE", 1), None),
            (lambda t: t + "\nGARBAGE LINE", "unrecognized"),
        ],
    )
    def test_malformed_files_rejected(self, mutation, message):
        from repro.errors import ReproError
        with pytest.raises(ReproError) as info:
            load_workload(mutation(AUCTION_FILE))
        if message:
            assert message in str(info.value)

    def test_empty_schema_rejected(self):
        with pytest.raises(SqlError, match="no tables"):
            load_workload("PROGRAM P\nCOMMIT;\nEND\n")

    def test_no_programs_rejected(self):
        with pytest.raises(SqlError, match="no programs"):
            load_workload("TABLE T (a*)\n")

    def test_cli_accepts_workload_file(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "auction.workload"
        path.write_text(AUCTION_FILE)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "FileAuction" in out and "True" in out


class TestPostgresPredicateUpdates:
    """Section 5.4: predicate updates as two atomic chunks."""

    def _scan_update_program(self, auction_workload):
        from repro.btp.program import BTP, seq
        from repro.btp.statement import Statement
        from repro.btp.unfold import unfold_program
        bids = auction_workload.schema.relation("Bids")
        program = BTP(
            "RaiseAll",
            seq(Statement.pred_update(
                "u", bids, predicate=["bid"], reads=[], writes=["bid"]
            )),
        )
        (ltp,) = unfold_program(program)
        return ltp

    def test_two_chunks_emitted(self, auction_workload):
        ltp = self._scan_update_program(auction_workload)
        universe = TupleUniverse(auction_workload.schema, {"Bids": 2, "Buyer": 2, "Log": 0})
        plain = Instantiator(universe).instantiate(ltp, [universe.existing("Bids")])
        postgres = Instantiator(universe, postgres_predicate_updates=True).instantiate(
            ltp, [universe.existing("Bids")]
        )
        assert len(plain.chunks) == 1
        assert len(postgres.chunks) == 2
        pred_reads = [op for op in postgres.operations if op.kind is OpKind.PRED_READ]
        assert len(pred_reads) == 2

    def test_postgres_schedules_still_valid_mvrc(self, auction_workload):
        ltp = self._scan_update_program(auction_workload)
        universe = TupleUniverse(auction_workload.schema, {"Bids": 2, "Buyer": 2, "Log": 0})
        instantiator = Instantiator(universe, postgres_predicate_updates=True)
        t1 = instantiator.instantiate(ltp, [universe.existing("Bids")])
        t2 = instantiator.instantiate(ltp, [universe.existing("Bids")])
        schedule = execute([t1, t2], serial_unit_order([t1, t2]), universe)
        assert schedule is not None
        schedule.validate()
        assert allowed_under_mvrc(schedule)

    def test_summary_graph_is_oblivious(self, auction_workload):
        """The paper's claim: the summary graph is unchanged — the variant
        only affects instantiation, which Algorithm 1 never sees."""
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        assert graph.edge_count == 17  # same construction path either way
