"""Tests for deterministic fault injection, deadlines and crash recovery.

Covers the :mod:`repro.faults` package (plans, the injector registry, the
cooperative deadline), the process-backend recovery ladder (pool rebuild →
serial degrade, verdicts bit-identical throughout, no leaked shared-memory
segments), the service's failure-mode gauntlet (deadline 504, shed 503 +
``Retry-After``, spill quarantine, the poisoned-session circuit breaker)
and the de-pragma'd HTTP catch-alls (typed 500 envelopes for injected
crashes on both the POST and GET paths).
"""

from __future__ import annotations

import glob
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.session import Analyzer
from repro.errors import DeadlineExceeded, FaultError, ProgramError
from repro.faults import (
    Deadline,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    check_deadline,
    current_deadline,
    current_injector,
    deadline_scope,
    fire,
    install_plan,
    maybe_crash,
    maybe_stall,
)
from repro.faults import inject as inject_module
from repro.service import AnalysisService, ServiceError, make_server
from repro.summary import planes
from repro.summary.settings import ATTR_DEP_FK


@pytest.fixture(autouse=True)
def _isolate_global_injector():
    """Every test starts and ends with no process-global plan installed.

    This also neutralizes any ``REPRO_FAULTS`` the surrounding environment
    set (the CI chaos smoke runs this very suite under a global plan —
    these tests install their own deterministic plans instead).
    """
    saved = inject_module._GLOBAL
    saved_pending = inject_module._ENV_PENDING
    install_plan(None)
    yield
    with inject_module._ENV_LOCK:
        inject_module._GLOBAL = saved
        inject_module._ENV_PENDING = saved_pending


def _kill_plan(times: int = 1) -> FaultPlan:
    return FaultPlan(
        seed=11, rules=(FaultRule(site="worker.kill", every=1, times=times),)
    )


def _force_process(session: Analyzer) -> Analyzer:
    """Pretend the host has enough cores for the process backend (the test
    container has one, which would silently degrade before any fault)."""
    session._degrade_guard._cpu_count = 8
    return session


def _shm_residue() -> list[str]:
    return glob.glob("/dev/shm/repro_*")


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_round_trips_through_json(self):
        plan = FaultPlan(
            seed=3,
            rules=(
                FaultRule(site="worker.kill", rate=0.25),
                FaultRule(site="handler.stall", every=5, delay_seconds=0.01),
                FaultRule(site="spill.corrupt", every=2, times=4),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_source_accepts_inline_json_and_files(self, tmp_path):
        plan = FaultPlan(seed=1, rules=(FaultRule(site="disk.full", every=3),))
        assert FaultPlan.from_source(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_source(str(path)) == plan

    def test_from_source_rejects_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(FaultError, match="not readable"):
            FaultPlan.from_source(str(tmp_path / "nope.json"))
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_source("{bad json")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"site": "warp.core"},
            {"site": "worker.kill", "rate": 1.5},
            {"site": "worker.kill", "rate": -0.1},
            {"site": "worker.kill", "every": -1},
            {"site": "worker.kill", "every": 1, "times": -2},
            {"site": "worker.kill"},  # neither rate nor every
        ],
    )
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(FaultError):
            FaultRule(**kwargs)

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultError, match="unknown field"):
            FaultPlan.from_dict({"seed": 0, "chaos": True})
        with pytest.raises(FaultError, match="unknown field"):
            FaultRule.from_dict({"site": "worker.kill", "every": 1, "oops": 2})

    def test_decide_is_deterministic_and_seeded(self):
        plan = FaultPlan(seed=5, rules=(FaultRule(site="worker.kill", rate=0.5),))
        first = [plan.decide("worker.kill", n) is not None for n in range(1, 60)]
        again = [plan.decide("worker.kill", n) is not None for n in range(1, 60)]
        assert first == again
        assert any(first) and not all(first)
        other = FaultPlan(seed=6, rules=(FaultRule(site="worker.kill", rate=0.5),))
        assert first != [
            other.decide("worker.kill", n) is not None for n in range(1, 60)
        ]

    def test_every_schedule(self):
        plan = FaultPlan(rules=(FaultRule(site="shm.attach", every=3),))
        fired = [plan.decide("shm.attach", n) is not None for n in range(1, 10)]
        assert fired == [False, False, True] * 3


# ---------------------------------------------------------------------------
# the injector registry
# ---------------------------------------------------------------------------

class TestInjector:
    def test_no_plan_means_no_fire(self):
        assert current_injector() is None
        assert fire("worker.kill") is None
        maybe_crash()  # must be a no-op, not a raise
        maybe_stall()

    def test_active_plan_scopes_and_counts(self):
        plan = FaultPlan(rules=(FaultRule(site="disk.full", every=2),))
        with active_plan(plan) as injector:
            assert fire("disk.full") is None
            assert fire("disk.full") is not None
            assert fire("worker.kill") is None  # unruled site: not counted
            snap = injector.snapshot()
        assert snap["consults"] == {"disk.full": 2}
        assert snap["fired"] == {"disk.full": 1}
        assert current_injector() is None

    def test_times_caps_total_firings(self):
        plan = FaultPlan(rules=(FaultRule(site="disk.full", every=1, times=2),))
        with active_plan(plan) as injector:
            fired = [fire("disk.full") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.snapshot()["fired"] == {"disk.full": 2}

    def test_install_plan_is_global_and_uninstallable(self):
        injector = install_plan(
            FaultPlan(rules=(FaultRule(site="handler.crash", every=1),))
        )
        assert current_injector() is injector
        with pytest.raises(InjectedFault):
            maybe_crash()
        install_plan(None)
        assert current_injector() is None

    def test_local_plan_shadows_global(self):
        install_plan(FaultPlan(rules=(FaultRule(site="handler.crash", every=1),)))
        benign = FaultPlan(rules=(FaultRule(site="disk.full", every=1),))
        with active_plan(benign):
            maybe_crash()  # the local (benign) plan decides: no raise

    def test_env_var_installs_a_plan(self, monkeypatch):
        plan = FaultPlan(seed=2, rules=(FaultRule(site="disk.full", every=1),))
        monkeypatch.setenv("REPRO_FAULTS", plan.to_json())
        with inject_module._ENV_LOCK:
            inject_module._GLOBAL = None
            inject_module._ENV_PENDING = True
        injector = current_injector()
        assert injector is not None and injector.plan == plan

    def test_malformed_env_var_warns_and_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "{not json")
        with inject_module._ENV_LOCK:
            inject_module._GLOBAL = None
            inject_module._ENV_PENDING = True
        with pytest.warns(RuntimeWarning, match="malformed REPRO_FAULTS"):
            assert current_injector() is None

    def test_stall_sleeps_the_rule_delay(self):
        plan = FaultPlan(
            rules=(FaultRule(site="handler.stall", every=1, delay_seconds=0.05),)
        )
        with active_plan(plan):
            started = time.monotonic()
            maybe_stall()
            assert time.monotonic() - started >= 0.04


# ---------------------------------------------------------------------------
# cooperative deadlines
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_check_is_noop_without_scope(self):
        assert current_deadline() is None
        check_deadline()  # no raise

    def test_expiry_raises_with_context(self):
        deadline = Deadline(0.01)
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="block sweep exceeded"):
            deadline.check("block sweep")

    def test_scope_sets_and_restores(self):
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
            assert deadline.remaining() > 4.0
            check_deadline()
        assert current_deadline() is None

    def test_none_scope_keeps_the_outer_deadline(self):
        with deadline_scope(5.0) as outer:
            with deadline_scope(None) as inner:
                assert inner is outer
                assert current_deadline() is outer

    def test_invalid_seconds_rejected(self):
        with pytest.raises(ProgramError):
            Deadline(0)
        with pytest.raises(ProgramError):
            Deadline(-1.0)


# ---------------------------------------------------------------------------
# process-backend crash recovery
# ---------------------------------------------------------------------------

class TestProcessRecovery:
    def _reference(self, source: str):
        return Analyzer(source).analyze(ATTR_DEP_FK).to_dict()

    def test_killed_worker_recovers_bit_identically(self):
        reference = self._reference("auction(3)")
        session = _force_process(Analyzer("auction(3)", backend="process"))
        with active_plan(_kill_plan(times=1)) as injector:
            report = session.analyze(ATTR_DEP_FK).to_dict()
        assert report == reference
        assert injector.snapshot()["fired"] == {"worker.kill": 1}
        info = session.fault_info()
        assert info["recoveries"] == 1
        assert info["degraded"] is False  # the rebuilt pool finished the job
        assert planes.live_segments() == ()
        assert _shm_residue() == []

    def test_permanent_kill_degrades_to_serial_with_one_warning(self):
        reference = self._reference("auction(3)")
        session = _force_process(Analyzer("auction(3)", backend="process"))
        with active_plan(_kill_plan(times=0)):  # unlimited: every batch dies
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                report = session.analyze(ATTR_DEP_FK).to_dict()
        assert report == reference
        info = session.fault_info()
        assert info["degraded"] is True
        assert info["recoveries"] >= 1
        assert planes.live_segments() == ()
        assert _shm_residue() == []
        # Degraded is sticky and silent: later analyses reroute to the
        # serial kernel without a second warning.
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            session.analyze(ATTR_DEP_FK)
        assert not [w for w in caught if "degraded" in str(w.message)]

    def test_shm_attach_failure_recovers_too(self):
        reference = self._reference("auction(3)")
        session = _force_process(Analyzer("auction(3)", backend="process"))
        plan = FaultPlan(rules=(FaultRule(site="shm.attach", every=1, times=1),))
        with active_plan(plan):
            report = session.analyze(ATTR_DEP_FK).to_dict()
        assert report == reference
        assert session.fault_info()["recoveries"] == 1
        assert planes.live_segments() == ()
        assert _shm_residue() == []

    def test_fault_info_stays_out_of_cache_info(self):
        session = Analyzer("smallbank")
        assert "recoveries" not in session.cache_info()
        assert session.fault_info() == {"recoveries": 0, "degraded": False}


# ---------------------------------------------------------------------------
# service hardening: quarantine, spill faults, deadline, shedding, breaker
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_corrupt_artifact_is_quarantined_on_rehydrate(self, tmp_path):
        service = AnalysisService(capacity=1, cache_dir=tmp_path)
        service.handle("analyze", {"workload": "smallbank"})
        service.handle("analyze", {"workload": "tpcc"})  # evicts + spills
        (artifact,) = [
            p for p in tmp_path.glob("*.json")
        ]
        artifact.write_text(artifact.read_text()[: len(artifact.read_text()) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            service.handle("analyze", {"workload": "smallbank"})  # re-misses
        stats = service.stats()
        assert stats["rehydrate_failures"] == 1
        assert not artifact.exists()
        assert artifact.with_name(artifact.name + ".corrupt").exists()

    def test_warm_from_cache_dir_quarantines_corrupt_files(self, tmp_path):
        bad = tmp_path / "broken.json"
        bad.write_text("{definitely not json")
        (tmp_path / "not_a_cache.json").write_text('{"hello": "world"}')
        service = AnalysisService(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            warmed = service.warm_from_cache_dir(tmp_path)
        assert warmed == []
        assert service.stats()["rehydrate_failures"] == 1
        assert (tmp_path / "broken.json.corrupt").exists()
        # Valid JSON that simply isn't a session cache is skipped, untouched.
        assert (tmp_path / "not_a_cache.json").exists()

    def test_injected_spill_corruption_round_trip(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(site="spill.corrupt", every=1),))
        service = AnalysisService(capacity=1, cache_dir=tmp_path)
        with active_plan(plan):
            service.handle("analyze", {"workload": "smallbank"})
            service.handle("analyze", {"workload": "tpcc"})  # corrupt spill
        reference = Analyzer("smallbank").analyze(ATTR_DEP_FK).to_dict()
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            payload = service.handle(
                "analyze", {"workload": "smallbank", "setting": ATTR_DEP_FK.label}
            )
        assert payload == reference  # recomputed from scratch, same verdict
        assert service.stats()["rehydrate_failures"] == 1

    def test_injected_disk_full_counts_spill_failures(self, tmp_path):
        plan = FaultPlan(rules=(FaultRule(site="disk.full", every=1),))
        service = AnalysisService(capacity=1, cache_dir=tmp_path)
        with active_plan(plan):
            service.handle("analyze", {"workload": "smallbank"})
            service.handle("analyze", {"workload": "tpcc"})
        stats = service.stats()
        assert stats["faults"]["spill_failures"] == 1
        assert stats["spills"] == 0
        assert list(tmp_path.glob("*.json")) == []


class TestDeadlineRequests:
    def test_deadline_expiry_maps_to_504(self):
        service = AnalysisService(deadline_seconds=0.01)
        plan = FaultPlan(
            rules=(FaultRule(site="handler.stall", every=1, delay_seconds=0.05),)
        )
        with active_plan(plan):
            with pytest.raises(ServiceError) as excinfo:
                service.handle("analyze", {"workload": "smallbank"})
        error = excinfo.value
        assert error.kind == "deadline_exceeded"
        assert error.status == 504
        assert "deadline" in str(error)
        assert service.stats()["faults"]["deadline_exceeded"] == 1

    def test_generous_deadline_changes_nothing(self):
        service = AnalysisService(deadline_seconds=120.0)
        reference = AnalysisService().handle("analyze", {"workload": "smallbank"})
        assert service.handle("analyze", {"workload": "smallbank"}) == reference

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ProgramError):
            AnalysisService(deadline_seconds=0)
        with pytest.raises(ProgramError):
            AnalysisService(max_inflight=0)
        with pytest.raises(ProgramError):
            AnalysisService(poison_threshold=0)


class TestLoadShedding:
    def test_excess_load_sheds_with_retry_after(self):
        service = AnalysisService(max_inflight=1)
        service.handle("analyze", {"workload": "smallbank"})  # warm first
        # Globally installed (not active_plan): the stalled request runs
        # on its own thread, which does not inherit this context's vars.
        install_plan(
            FaultPlan(
                rules=(
                    FaultRule(
                        site="handler.stall", every=1, times=1, delay_seconds=0.5
                    ),
                )
            )
        )
        shed: list[ServiceError] = []
        results: list[dict] = []

        def request():
            try:
                results.append(service.handle("analyze", {"workload": "smallbank"}))
            except ServiceError as error:
                shed.append(error)

        stalled = threading.Thread(target=request)
        stalled.start()
        time.sleep(0.1)  # let it acquire the gate and stall
        request()  # runs on this thread: must be shed immediately
        stalled.join()
        assert len(results) == 1 and len(shed) == 1
        error = shed[0]
        assert error.kind == "overloaded"
        assert error.status == 503
        assert error.retry_after == 1
        assert error.envelope["error"]["retry_after"] == 1
        assert service.stats()["faults"]["shed"] == 1

    def test_batch_items_do_not_deadlock_the_gate(self):
        # Nested dispatches share the outer request's in-flight slot; with
        # max_inflight=1 a batch would self-deadlock if items re-acquired.
        service = AnalysisService(max_inflight=1)
        payload = service.handle(
            "batch",
            {
                "requests": [
                    {"kind": "analyze", "workload": "smallbank"},
                    {"kind": "analyze", "workload": "smallbank"},
                ]
            },
        )
        assert len(payload["results"]) == 2
        assert all("error" not in result for result in payload["results"])


class TestCircuitBreaker:
    def test_poisoned_session_is_evicted_after_threshold(self):
        service = AnalysisService(poison_threshold=2)
        service.handle("analyze", {"workload": "smallbank"})
        assert len(service.sessions()) == 1
        plan = FaultPlan(rules=(FaultRule(site="handler.crash", every=1, times=2),))
        with active_plan(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    service.handle("analyze", {"workload": "smallbank"})
        assert service.sessions() == {}  # dropped, not spilled
        assert service.stats()["faults"]["poisoned_evictions"] == 1

    def test_success_resets_the_strike_count(self):
        service = AnalysisService(poison_threshold=2)
        plan = FaultPlan(rules=(FaultRule(site="handler.crash", every=2),))
        with active_plan(plan):
            service.handle("analyze", {"workload": "smallbank"})  # ok (1st)
            with pytest.raises(InjectedFault):  # strike 1 (2nd consult)
                service.handle("analyze", {"workload": "smallbank"})
            service.handle("analyze", {"workload": "smallbank"})  # resets
            with pytest.raises(InjectedFault):  # strike 1 again, no eviction
                service.handle("analyze", {"workload": "smallbank"})
        assert len(service.sessions()) == 1
        assert service.stats()["faults"]["poisoned_evictions"] == 0

    def test_stats_reports_the_installed_plan(self):
        install_plan(FaultPlan(seed=9, rules=(FaultRule(site="disk.full", every=7),)))
        service = AnalysisService()
        injected = service.stats()["faults"]["injected"]
        assert injected is not None and injected["seed"] == 9
        install_plan(None)
        assert AnalysisService().stats()["faults"]["injected"] is None


# ---------------------------------------------------------------------------
# the HTTP frontend under faults
# ---------------------------------------------------------------------------

def _http(server, method: str, path: str, body=None):
    port = server.server_address[1]
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture()
def fault_server():
    service = AnalysisService(capacity=4, max_inflight=2, deadline_seconds=30.0)
    server = make_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHTTPFaults:
    def test_injected_post_crash_answers_typed_500(self, fault_server):
        install_plan(
            FaultPlan(rules=(FaultRule(site="handler.crash", every=1, times=1),))
        )
        status, _, body = _http(
            fault_server, "POST", "/v1/analyze", {"workload": "smallbank"}
        )
        assert status == 500
        error = json.loads(body)["error"]
        assert error["type"] == "internal_error"
        assert "InjectedFault" in error["message"]
        # The very next request is clean: the server survived the crash.
        status, _, body = _http(
            fault_server, "POST", "/v1/analyze", {"workload": "smallbank"}
        )
        assert status == 200

    def test_injected_get_crash_answers_typed_500(self, fault_server):
        install_plan(
            FaultPlan(rules=(FaultRule(site="handler.crash", every=1, times=1),))
        )
        status, _, body = _http(fault_server, "GET", "/v1/stats")
        assert status == 500
        assert json.loads(body)["error"]["type"] == "internal_error"
        status, _, _ = _http(fault_server, "GET", "/v1/healthz")
        assert status == 200

    def test_shed_response_carries_retry_after_header(self, fault_server):
        # Two slots: stall two requests, the third must shed with 503.
        _http(fault_server, "POST", "/v1/analyze", {"workload": "smallbank"})
        install_plan(
            FaultPlan(
                rules=(
                    FaultRule(
                        site="handler.stall", every=1, times=2, delay_seconds=0.6
                    ),
                )
            )
        )
        background = [
            threading.Thread(
                target=_http,
                args=(fault_server, "POST", "/v1/analyze", {"workload": "smallbank"}),
            )
            for _ in range(2)
        ]
        for thread in background:
            thread.start()
        time.sleep(0.2)
        status, headers, body = _http(
            fault_server, "POST", "/v1/analyze", {"workload": "smallbank"}
        )
        for thread in background:
            thread.join()
        assert status == 503
        assert headers.get("Retry-After") == "1"
        error = json.loads(body)["error"]
        assert error["type"] == "overloaded"
        assert error["retry_after"] == 1

    def test_deadline_expiry_answers_504_over_http(self):
        service = AnalysisService(deadline_seconds=0.01)
        server = make_server(service, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            install_plan(
                FaultPlan(
                    rules=(
                        FaultRule(site="handler.stall", every=1, delay_seconds=0.05),
                    )
                )
            )
            status, _, body = _http(
                server, "POST", "/v1/analyze", {"workload": "smallbank"}
            )
            assert status == 504
            assert json.loads(body)["error"]["type"] == "deadline_exceeded"
        finally:
            install_plan(None)
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


# ---------------------------------------------------------------------------
# churn monitoring under faults
# ---------------------------------------------------------------------------

class TestChurnUnderFaults:
    def test_monitor_survives_worker_kills_and_records_them(self):
        from repro.churn import ChurnStep, Monitor

        # Fault-free reference trace.
        clean = Monitor("auction(2)", seed=4).run(steps=2)
        # Same churn with every process-backend sweep batch killed once:
        # warm the session first so the injected kills land inside the
        # monitored steps, not the warm-up analysis.
        session = _force_process(Analyzer("auction(2)", backend="process"))
        session.analyze(ATTR_DEP_FK)
        monitor = Monitor(session=session, seed=4, source_hint="auction(2)")
        with active_plan(_kill_plan(times=0)):
            with pytest.warns(RuntimeWarning, match="degraded to serial"):
                faulted = monitor.run(steps=2)
        # Verdict-for-verdict identical to the fault-free run ...
        assert faulted.canonical_json() == clean.canonical_json()
        # ... with the recoveries recorded on the steps that hit them.
        assert faulted.faults_recovered >= 1
        assert faulted.summary()["faults_recovered"] == faulted.faults_recovered
        recovered_step = next(
            step for step in faulted.steps if step.faults_recovered
        )
        data = recovered_step.to_dict()
        assert data["faults_recovered"] == recovered_step.faults_recovered
        assert ChurnStep.from_dict(data).faults_recovered == (
            recovered_step.faults_recovered
        )
        # Canonical serialization (the replay contract) omits the counter.
        assert "faults_recovered" not in recovered_step.to_dict(
            include_timings=False
        )
        assert planes.live_segments() == ()
        assert _shm_residue() == []

    def test_clean_traces_serialize_without_the_counter(self):
        from repro.churn import Monitor

        trace = Monitor("smallbank", seed=1).run(steps=1)
        assert trace.faults_recovered == 0
        (step,) = trace.steps
        assert "faults_recovered" not in step.to_dict()
        assert "faults_recovered" not in trace.summary()
