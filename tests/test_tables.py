"""Tests for repro.summary.tables: verbatim transcription of Table 1."""

import pytest

from repro.btp.statement import StatementType as T
from repro.summary.tables import C_DEP_TABLE, NC_DEP_TABLE, TYPE_ORDER

# Expected entries, written in the paper's row/column order:
# ins, key sel, pred sel, key upd, pred upd, key del, pred del.
_B = None  # ⊥

NC_EXPECTED = {
    T.INSERT: (False, _B, True, _B, True, _B, True),
    T.KEY_SELECT: (False, False, False, _B, _B, _B, _B),
    T.PRED_SELECT: (True, False, False, _B, _B, True, True),
    T.KEY_UPDATE: (False, _B, _B, _B, _B, _B, _B),
    T.PRED_UPDATE: (True, _B, _B, _B, _B, True, True),
    T.KEY_DELETE: (False, False, True, False, True, False, True),
    T.PRED_DELETE: (True, False, True, _B, True, True, True),
}

C_EXPECTED = {
    T.INSERT: (False, False, False, False, False, False, False),
    T.KEY_SELECT: (False, False, False, _B, _B, _B, _B),
    T.PRED_SELECT: (True, False, False, _B, _B, True, True),
    T.KEY_UPDATE: (False, False, False, False, False, False, False),
    T.PRED_UPDATE: (True, False, False, _B, _B, True, True),
    T.KEY_DELETE: (False, False, False, False, False, False, False),
    T.PRED_DELETE: (True, False, False, _B, _B, True, True),
}

ALL_PAIRS = [(row, col) for row in TYPE_ORDER for col in TYPE_ORDER]


@pytest.mark.parametrize("row,col", ALL_PAIRS, ids=lambda t: t.value if hasattr(t, "value") else str(t))
def test_nc_dep_table_entry(row, col):
    expected = NC_EXPECTED[row][TYPE_ORDER.index(col)]
    assert NC_DEP_TABLE[(row, col)] is expected


@pytest.mark.parametrize("row,col", ALL_PAIRS, ids=lambda t: t.value if hasattr(t, "value") else str(t))
def test_c_dep_table_entry(row, col):
    expected = C_EXPECTED[row][TYPE_ORDER.index(col)]
    assert C_DEP_TABLE[(row, col)] is expected


def test_tables_are_total():
    assert len(NC_DEP_TABLE) == 49
    assert len(C_DEP_TABLE) == 49


def test_counterflow_requires_reader_source():
    """Lemma 4.1: only statements with a (predicate) read can be counterflow sources."""
    for (row, _col), entry in C_DEP_TABLE.items():
        if entry is not False:
            assert row in (T.KEY_SELECT, T.PRED_SELECT, T.PRED_UPDATE, T.PRED_DELETE)


def test_counterflow_requires_writing_target():
    """Counterflow rw-antidependencies point at writes."""
    for (_row, col), entry in C_DEP_TABLE.items():
        if entry is not False:
            assert col.performs_write


def test_counterflow_possible_implies_nc_possible_for_writer_targets():
    """Wherever a counterflow edge can exist, a non-counterflow one can too."""
    for pair, entry in C_DEP_TABLE.items():
        if entry is True:
            assert NC_DEP_TABLE[pair] in (True, None)
