"""Tests for repro.schema: relations, foreign keys, schema validation."""

import pytest

from repro.errors import SchemaError
from repro.schema import ForeignKey, Relation, Schema


class TestRelation:
    def test_basic_construction(self):
        r = Relation("R", ["a", "b"], key=["a"])
        assert r.name == "R"
        assert r.attributes == ("a", "b")
        assert r.key == ("a",)

    def test_attribute_set_is_frozenset(self):
        r = Relation("R", ["a", "b"], key=["a"])
        assert r.attribute_set == frozenset({"a", "b"})
        assert isinstance(r.attribute_set, frozenset)

    def test_key_defaults_to_empty(self):
        r = Relation("R", ["a"])
        assert r.key == ()

    def test_composite_key(self):
        r = Relation("R", ["a", "b", "c"], key=["a", "b"])
        assert set(r.key) == {"a", "b"}

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", ["a"])

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a", "a"])

    def test_key_must_be_subset_of_attributes(self):
        with pytest.raises(SchemaError):
            Relation("R", ["a"], key=["b"])

    def test_str_marks_key_attributes(self):
        r = Relation("R", ["a", "b"], key=["a"])
        assert "a*" in str(r)
        assert "b*" not in str(r)


class TestForeignKey:
    def test_basic_construction(self):
        fk = ForeignKey("f", "Child", "Parent", {"parent_id": "id"})
        assert fk.source == "Child"
        assert fk.target == "Parent"
        assert fk.source_attributes == frozenset({"parent_id"})
        assert fk.target_attributes == frozenset({"id"})

    def test_multi_column(self):
        fk = ForeignKey("f", "C", "P", {"x1": "k1", "x2": "k2"})
        assert fk.source_attributes == frozenset({"x1", "x2"})
        assert fk.target_attributes == frozenset({"k1", "k2"})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("", "C", "P", {"x": "k"})

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("f", "C", "P", {})

    def test_str_rendering(self):
        fk = ForeignKey("f1", "Bids", "Buyer", {"buyerId": "id"})
        assert "f1" in str(fk) and "Bids" in str(fk) and "Buyer" in str(fk)


class TestSchema:
    def _schema(self):
        return Schema(
            [
                Relation("Parent", ["id", "v"], key=["id"]),
                Relation("Child", ["id", "pid"], key=["id"]),
            ],
            [ForeignKey("f", "Child", "Parent", {"pid": "id"})],
        )

    def test_lookup_by_name(self):
        schema = self._schema()
        assert schema.relation("Parent").name == "Parent"
        assert schema.foreign_key("f").name == "f"

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            self._schema().relation("Nope")

    def test_unknown_foreign_key_raises(self):
        with pytest.raises(SchemaError):
            self._schema().foreign_key("nope")

    def test_contains_and_iter(self):
        schema = self._schema()
        assert "Parent" in schema and "Nope" not in schema
        assert [r.name for r in schema] == ["Parent", "Child"]

    def test_attributes_helper(self):
        assert self._schema().attributes("Child") == frozenset({"id", "pid"})

    def test_foreign_keys_from(self):
        schema = self._schema()
        assert [fk.name for fk in schema.foreign_keys_from("Child")] == ["f"]
        assert schema.foreign_keys_from("Parent") == ()

    def test_foreign_keys_between(self):
        schema = self._schema()
        assert len(schema.foreign_keys_between("Child", "Parent")) == 1
        assert schema.foreign_keys_between("Parent", "Child") == ()

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Relation("R", ["a"]), Relation("R", ["b"])])

    def test_duplicate_fk_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("A", ["x"]), Relation("B", ["y"])],
                [
                    ForeignKey("f", "A", "B", {"x": "y"}),
                    ForeignKey("f", "B", "A", {"y": "x"}),
                ],
            )

    def test_fk_over_unknown_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Relation("A", ["x"])], [ForeignKey("f", "A", "B", {"x": "y"})])

    def test_fk_over_unknown_source_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("A", ["x"]), Relation("B", ["y"])],
                [ForeignKey("f", "A", "B", {"nope": "y"})],
            )

    def test_fk_over_unknown_target_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Relation("A", ["x"]), Relation("B", ["y"])],
                [ForeignKey("f", "A", "B", {"x": "nope"})],
            )

    def test_describe_mentions_everything(self):
        text = self._schema().describe()
        assert "Parent" in text and "Child" in text and "f:" in text


class TestBenchmarkSchemas:
    def test_smallbank_shape(self, smallbank_workload):
        schema = smallbank_workload.schema
        assert len(schema.relations) == 3
        assert all(len(r.attributes) == 2 for r in schema)
        assert len(schema.foreign_keys) == 2

    def test_tpcc_shape(self, tpcc_workload):
        schema = tpcc_workload.schema
        assert len(schema.relations) == 9
        sizes = sorted(len(r.attributes) for r in schema)
        assert sizes[0] == 3 and sizes[-1] == 21
        assert len(schema.foreign_keys) == 12

    def test_auction_shape(self, auction_workload):
        schema = auction_workload.schema
        assert len(schema.relations) == 3
        assert {fk.name for fk in schema.foreign_keys} == {"f1", "f2"}

    def test_tpcc_customer_has_21_attributes(self, tpcc_workload):
        assert len(tpcc_workload.schema.relation("Customer").attributes) == 21

    def test_tpcc_composite_keys(self, tpcc_workload):
        schema = tpcc_workload.schema
        assert len(schema.relation("Customer").key) == 3
        assert len(schema.relation("Order_Line").key) == 4
        assert schema.relation("History").key == ()
