"""Tests for repro.summary.conditions: ncDepConds / cDepConds."""

from repro.btp.program import BTP, FKConstraint, seq
from repro.btp.statement import Statement
from repro.btp.unfold import unfold_program
from repro.schema import Relation
from repro.summary.conditions import c_dep_conds, nc_dep_conds, protecting_fks

R = Relation("R", ["k", "a", "b"], key=["k"])
P = Relation("P", ["k", "x"], key=["k"])


def single_ltp(program: BTP):
    (ltp,) = unfold_program(program)
    return ltp


class TestNcDepConds:
    def test_write_write_overlap(self):
        qi = Statement.key_update("qi", R, reads=[], writes=["a"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        assert nc_dep_conds(qi, qj)

    def test_write_read_overlap(self):
        qi = Statement.key_update("qi", R, reads=[], writes=["a"])
        qj = Statement.key_select("qj", R, reads=["a"])
        assert nc_dep_conds(qi, qj)

    def test_write_pread_overlap(self):
        qi = Statement.key_update("qi", R, reads=[], writes=["a"])
        qj = Statement.pred_select("qj", R, predicate=["a"], reads=[])
        assert nc_dep_conds(qi, qj)

    def test_read_write_overlap(self):
        qi = Statement.key_select("qi", R, reads=["a"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        assert nc_dep_conds(qi, qj)

    def test_pread_write_overlap(self):
        qi = Statement.pred_select("qi", R, predicate=["a"], reads=[])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        assert nc_dep_conds(qi, qj)

    def test_disjoint_attributes_no_dependency(self):
        qi = Statement.key_update("qi", R, reads=["a"], writes=["a"])
        qj = Statement.key_update("qj", R, reads=["b"], writes=["b"])
        assert not nc_dep_conds(qi, qj)

    def test_two_reads_never_conflict(self):
        qi = Statement.key_select("qi", R, reads=["a"])
        qj = Statement.key_select("qj", R, reads=["a"])
        assert not nc_dep_conds(qi, qj)

    def test_bottom_sets_behave_as_empty(self):
        qi = Statement.insert("qi", R)  # ReadSet = PReadSet = ⊥
        qj = Statement.key_select("qj", R, reads=["a"])
        assert nc_dep_conds(qi, qj)  # via WriteSet(qi) ∩ ReadSet(qj)
        qj_empty = Statement.key_select("qj", R, reads=[])
        assert not nc_dep_conds(qi, qj_empty)


class TestCDepConds:
    def test_pread_branch_ignores_foreign_keys(self):
        """Predicate reads range over the whole relation — no FK rescue."""
        parent_w = Statement.key_update("p", P, reads=[], writes=["x"])
        qi = Statement.pred_select("qi", R, predicate=["a"], reads=[])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(BTP("Pi", seq(parent_w, qi)))
        prog_j = single_ltp(BTP("Pj", seq(parent_w, qj)))
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_read_branch_without_fk_gives_edge(self):
        qi = Statement.key_select("qi", R, reads=["a"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(BTP("Pi", seq(qi)))
        prog_j = single_ltp(BTP("Pj", seq(qj)))
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_no_overlap_no_edge(self):
        qi = Statement.key_select("qi", R, reads=["a"])
        qj = Statement.key_update("qj", R, reads=[], writes=["b"])
        prog_i = single_ltp(BTP("Pi", seq(qi)))
        prog_j = single_ltp(BTP("Pj", seq(qj)))
        assert not c_dep_conds(qi, qj, prog_i, prog_j)

    def _fk_protected_programs(self):
        parent_i = Statement.key_update("pi", P, reads=[], writes=["x"])
        qi = Statement.key_select("qi", R, reads=["a"])
        parent_j = Statement.key_update("pj", P, reads=[], writes=["x"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(
            BTP("Pi", seq(parent_i, qi), constraints=[FKConstraint("f", "qi", "pi")])
        )
        prog_j = single_ltp(
            BTP("Pj", seq(parent_j, qj), constraints=[FKConstraint("f", "qj", "pj")])
        )
        return qi, qj, prog_i, prog_j

    def test_fk_blocks_counterflow(self):
        qi, qj, prog_i, prog_j = self._fk_protected_programs()
        assert not c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_fk_ignored_when_disabled(self):
        qi, qj, prog_i, prog_j = self._fk_protected_programs()
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=False)

    def test_fk_needs_protection_on_both_sides(self):
        parent_i = Statement.key_update("pi", P, reads=[], writes=["x"])
        qi = Statement.key_select("qi", R, reads=["a"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(
            BTP("Pi", seq(parent_i, qi), constraints=[FKConstraint("f", "qi", "pi")])
        )
        prog_j = single_ltp(BTP("Pj", seq(qj)))  # unprotected
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_fk_target_must_precede_source(self):
        # The parent write comes *after* the read: no protection.
        qi = Statement.key_select("qi", R, reads=["a"])
        parent_i = Statement.key_update("pi", P, reads=[], writes=["x"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        parent_j = Statement.key_update("pj", P, reads=[], writes=["x"])
        prog_i = single_ltp(
            BTP("Pi", seq(qi, parent_i), constraints=[FKConstraint("f", "qi", "pi")])
        )
        prog_j = single_ltp(
            BTP("Pj", seq(qj, parent_j), constraints=[FKConstraint("f", "qj", "pj")])
        )
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_fk_target_must_be_a_write(self):
        # The FK target is a key select — reading the parent protects nothing.
        parent_i = Statement.key_select("pi", P, reads=["x"])
        qi = Statement.key_select("qi", R, reads=["a"])
        parent_j = Statement.key_select("pj", P, reads=["x"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(
            BTP("Pi", seq(parent_i, qi), constraints=[FKConstraint("f", "qi", "pi")])
        )
        prog_j = single_ltp(
            BTP("Pj", seq(parent_j, qj), constraints=[FKConstraint("f", "qj", "pj")])
        )
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)

    def test_different_foreign_keys_do_not_block(self):
        parent_i = Statement.key_update("pi", P, reads=[], writes=["x"])
        qi = Statement.key_select("qi", R, reads=["a"])
        parent_j = Statement.key_update("pj", P, reads=[], writes=["x"])
        qj = Statement.key_update("qj", R, reads=[], writes=["a"])
        prog_i = single_ltp(
            BTP("Pi", seq(parent_i, qi), constraints=[FKConstraint("f1", "qi", "pi")])
        )
        prog_j = single_ltp(
            BTP("Pj", seq(parent_j, qj), constraints=[FKConstraint("f2", "qj", "pj")])
        )
        assert c_dep_conds(qi, qj, prog_i, prog_j, use_foreign_keys=True)


class TestProtectingFks:
    def test_reports_protecting_keys(self, auction_workload):
        placebid = next(
            v for v in auction_workload.unfolded() if v.origin == "PlaceBid" and len(v) == 4
        )
        # q4 at position 1 is protected by f1 via q3 at position 0.
        assert protecting_fks(placebid, 1) == frozenset({"f1"})
        # q3 itself has no constraints with it as source.
        assert protecting_fks(placebid, 0) == frozenset()
