"""End-to-end reproduction of the paper's worked examples (Sections 2, 6, 7)."""

import pytest

from repro.btp.unfold import unfold
from repro.detection.typei import is_robust_type1
from repro.detection.typeii import is_robust_type2
from repro.engine import Instantiator, TupleUniverse, execute
from repro.experiments.false_negatives import run_false_negatives
from repro.mvsched import (
    allowed_under_mvrc,
    dependencies,
    is_conflict_serializable,
)
from repro.mvsched.dependencies import DependencyKind
from repro.summary.construct import construct_summary_graph
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK


@pytest.fixture(scope="module")
def figure3_schedule(auction_workload):
    """The schedule of Figure 3: two PlaceBids and one FindBids."""
    ltps = auction_workload.unfolded()
    find_bids = next(l for l in ltps if l.origin == "FindBids")
    pb_long = next(l for l in ltps if l.origin == "PlaceBid" and len(l) == 4)
    pb_short = next(l for l in ltps if l.origin == "PlaceBid" and len(l) == 3)
    universe = TupleUniverse(auction_workload.schema, {"Buyer": 2, "Bids": 3, "Log": 0})
    instantiator = Instantiator(universe)
    buyer = universe.existing("Buyer")
    bids = universe.existing("Bids")
    t1 = instantiator.instantiate(pb_short, [(buyer[0],), (bids[0],), ()], tx=1)
    t2 = instantiator.instantiate(pb_long, [(buyer[0],), (bids[0],), (bids[0],), ()], tx=2)
    t3 = instantiator.instantiate(find_bids, [(buyer[1],), tuple(bids)], tx=3)
    schedule = execute([t1, t2, t3], [1, 1, 1, 1, 2, 2, 3, 3, 2, 2, 2, 3], universe)
    assert schedule is not None
    return schedule


class TestFigure3:
    def test_schedule_is_valid_and_mvrc(self, figure3_schedule):
        figure3_schedule.validate()
        assert allowed_under_mvrc(figure3_schedule)

    def test_transaction_shapes_match_figure(self, figure3_schedule):
        shapes = {
            t.tx: " ".join(op.kind.value for op in t.operations)
            for t in figure3_schedule.transactions
        }
        assert shapes[1] == "R W R I C"          # q3 q4 q6
        assert shapes[2] == "R W R W I C"        # q3 q4 q5 q6
        assert shapes[3] == "R W PR R R R C"     # q1 q2

    def test_wr_dependency_from_t1_to_t2(self, figure3_schedule):
        deps = dependencies(figure3_schedule)
        assert any(
            d.kind is DependencyKind.WR and d.source.tx == 1 and d.target.tx == 2
            for d in deps
        )

    def test_counterflow_rw_from_t3_to_t2(self, figure3_schedule):
        """R3[u1] →s W2[u1] is counterflow: T3 commits after T2."""
        deps = dependencies(figure3_schedule)
        counterflow = [d for d in deps if d.counterflow]
        assert counterflow
        assert all(d.source.tx == 3 and d.target.tx == 2 for d in counterflow)
        kinds = {d.kind for d in counterflow}
        assert kinds == {DependencyKind.RW, DependencyKind.PRED_RW}

    def test_only_rw_kinds_are_counterflow(self, figure3_schedule):
        """Lemma 4.1."""
        for dep in dependencies(figure3_schedule):
            if dep.counterflow:
                assert dep.kind.is_antidependency

    def test_schedule_is_serializable(self, figure3_schedule):
        assert is_conflict_serializable(figure3_schedule)


class TestFigure4AndSection6:
    def test_auction_robust_via_type2_but_not_type1(self, auction_workload):
        """The paper's headline example: a type-I cycle exists, yet the set
        {FindBids, PlaceBid} is robust because no type-II cycle does."""
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        assert not is_robust_type1(graph)
        assert is_robust_type2(graph)

    def test_counterflow_edge_is_findbids_to_placebid(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        (edge,) = graph.counterflow_edges
        assert edge.source == "FindBids" and edge.source_stmt == "q2"
        assert edge.target == "PlaceBid#1" and edge.target_stmt == "q5"


class TestSection7Claims:
    def test_unfold_depth_three_gives_same_verdicts(self, tpcc_workload):
        """Proposition 6.1 in practice: deeper unfolding changes nothing."""
        for settings in ALL_SETTINGS:
            graph2 = construct_summary_graph(
                unfold(tpcc_workload.programs, 2), tpcc_workload.schema, settings
            )
            graph3 = construct_summary_graph(
                unfold(tpcc_workload.programs, 3), tpcc_workload.schema, settings
            )
            assert is_robust_type2(graph2) == is_robust_type2(graph3)
            assert is_robust_type1(graph2) == is_robust_type1(graph3)

    def test_full_benchmarks_not_robust(
        self, smallbank_workload, tpcc_workload
    ):
        for workload in (smallbank_workload, tpcc_workload):
            assert not workload.analyze(ATTR_DEP_FK).robust

    @pytest.mark.slow
    def test_smallbank_has_no_false_negatives(self):
        """Section 7.2: every rejected SmallBank subset has a counterexample."""
        result = run_false_negatives()
        assert result.false_negative_free
        assert result.delivery_rejected
