"""Tests pinning the experiment harness to the paper's reported results."""

import pytest

from repro.experiments import expected
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import measure_point
from repro.experiments.reporting import render_table
from repro.experiments.table2 import characterize, run_table2
from repro.workloads import auction_n


class TestTable2:
    def test_all_rows_match_paper(self):
        result = run_table2(auction_scale=None)
        for row in result.rows:
            assert row.matches_paper(), row

    def test_exact_numbers(self):
        result = run_table2(auction_scale=None)
        by_name = {row.benchmark: row for row in result.rows}
        assert (by_name["SmallBank"].edges, by_name["SmallBank"].counterflow) == (56, 12)
        assert (by_name["TPC-C"].edges, by_name["TPC-C"].counterflow) == (396, 83)
        assert (by_name["Auction"].edges, by_name["Auction"].counterflow) == (17, 1)
        assert by_name["TPC-C"].nodes == 13

    def test_attribute_ranges(self):
        result = run_table2(auction_scale=None)
        by_name = {row.benchmark: row for row in result.rows}
        assert by_name["TPC-C"].attributes_per_relation == "3-21"
        assert by_name["SmallBank"].attributes_per_relation == "2"

    def test_auction_n_row(self):
        row = characterize(auction_n(4))
        assert row.nodes == 12
        assert row.edges == expected.auction_n_edges(4)
        assert row.counterflow == 4

    def test_text_rendering(self):
        text = run_table2(auction_scale=2).to_text()
        assert "SmallBank" in text and "ok" in text and "MISMATCH" not in text


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6()

    def test_every_cell_matches_paper(self, result):
        for cell in result.cells:
            assert cell.matches_paper, (
                f"{cell.benchmark} / {cell.settings_label}: "
                f"{cell.rendered_subsets()} vs paper {cell.paper_subsets}"
            )

    def test_grid_is_complete(self, result):
        assert len(result.cells) == 12  # 3 benchmarks x 4 settings

    def test_rendering(self, result):
        text = result.to_text()
        assert "Figure 6" in text and "MISMATCH" not in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7()

    def test_every_cell_matches_paper(self, result):
        for cell in result.cells:
            assert cell.matches_paper, (
                f"{cell.benchmark} / {cell.settings_label}: "
                f"{cell.rendered_subsets()} vs paper {cell.paper_subsets}"
            )

    def test_type1_never_beats_type2(self, result):
        """Algorithm 2 detects supersets of what the type-I condition does."""
        figure6 = {(c.benchmark, c.settings_label): c.subsets for c in run_figure6().cells}
        for cell in result.cells:
            type2_subsets = figure6[(cell.benchmark, cell.settings_label)]
            for type1_subset in cell.subsets:
                assert any(
                    type1_subset <= type2_subset for type2_subset in type2_subsets
                )


class TestFigure8:
    def test_measure_point(self):
        point = measure_point(2, repetitions=3)
        assert point.robust
        assert point.nodes == 6
        assert point.edges_match_closed_form
        assert point.mean_seconds > 0

    def test_closed_form_helpers(self):
        assert expected.auction_n_edges(1) == 17
        assert expected.auction_n_edges(10) == 980
        assert expected.auction_n_counterflow(7) == 7


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
