"""Tests for repro.detection: type-I and type-II (Algorithm 2) robustness."""

import pytest

from repro.btp.program import BTP, seq
from repro.btp.statement import Statement
from repro.detection.reachability import ReachabilityIndex
from repro.detection.typei import find_type1_violation, is_robust_type1
from repro.detection.typeii import (
    find_type2_violation,
    is_robust_type2,
    is_robust_type2_naive,
)
from repro.detection.subsets import is_robust, maximal_robust_subsets, robust_subsets
from repro.schema import Relation, Schema
from repro.summary.construct import build_summary_graph
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP, ATTR_DEP_FK

R = Relation("R", ["k", "v"], key=["k"])
SCHEMA = Schema([R])


def reader(name="Reader"):
    return BTP(name, seq(Statement.key_select("r", R, reads=["v"])))


def writer(name="Writer"):
    return BTP(name, seq(Statement.key_update("w", R, reads=[], writes=["v"])))


def reader_writer(name="RW"):
    return BTP(
        name,
        seq(
            Statement.key_select("r", R, reads=["v"]),
            Statement.key_update("w", R, reads=[], writes=["v"]),
        ),
    )


def writer_reader(name="WR"):
    return BTP(
        name,
        seq(
            Statement.key_update("w", R, reads=[], writes=["v"]),
            Statement.key_select("r", R, reads=["v"]),
        ),
    )


class TestReachability:
    def test_reflexive(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        reach = ReachabilityIndex(graph)
        for name in graph.program_names:
            assert reach.reaches(name, name)

    def test_auction_strongly_connected(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        reach = ReachabilityIndex(graph)
        names = graph.program_names
        assert all(reach.reaches(a, b) for a in names for b in names)

    def test_directed_reachability(self, tpcc_workload):
        graph = tpcc_workload.summary_graph(ATTR_DEP_FK)
        reach = ReachabilityIndex(graph)
        empty = next(p.name for p in graph.programs if p.is_empty)
        other = next(p.name for p in graph.programs if not p.is_empty)
        assert not reach.reaches(empty, other)
        assert not reach.reaches(other, empty)


class TestTypeI:
    def test_read_only_workload_is_robust(self):
        graph = build_summary_graph([reader("A"), reader("B")], SCHEMA)
        assert is_robust_type1(graph)
        assert find_type1_violation(graph) is None

    def test_writers_only_is_robust(self):
        # ww edges both ways but no counterflow edge at all.
        graph = build_summary_graph([writer("A"), writer("B")], SCHEMA)
        assert is_robust_type1(graph)

    def test_reader_plus_writer_not_robust(self):
        graph = build_summary_graph([reader("A"), writer("B")], SCHEMA)
        assert not is_robust_type1(graph)
        witness = find_type1_violation(graph)
        assert witness is not None and witness.reason == "type-I"
        assert any(edge.counterflow for edge in witness.edges)

    def test_witness_is_closed_walk(self):
        graph = build_summary_graph([reader_writer("A"), writer_reader("B")], SCHEMA)
        witness = find_type1_violation(graph)
        assert witness is not None
        for current, following in zip(witness.edges, witness.edges[1:] + witness.edges[:1]):
            assert current.target == following.source


class TestTypeII:
    def test_rw_program_alone_not_robust(self):
        """Read-then-write on the same tuple: classic lost update."""
        graph = build_summary_graph([reader_writer()], SCHEMA)
        assert not is_robust_type2(graph)
        witness = find_type2_violation(graph)
        assert witness is not None
        assert witness.reason in ("ordered-counterflow", "adjacent-counterflow")

    def test_separate_reader_and_writer_type2_robust(self):
        """One program reads, another writes: counterflow edge, but no
        dangerous pair — Algorithm 2 accepts where type-I rejects."""
        graph = build_summary_graph([reader("A"), writer("B")], SCHEMA)
        assert is_robust_type2(graph)
        assert not is_robust_type1(graph)

    def test_write_then_read_program_rejected_conservatively(self):
        """w;r on the same relation is actually robust (writes serialize the
        transactions), but the read-trigger condition of Algorithm 2 fires —
        a deliberate conservative over-approximation."""
        graph = build_summary_graph([writer_reader()], SCHEMA)
        assert not is_robust_type2(graph)

    def test_type2_accepts_at_least_type1(self):
        for programs in ([reader("A")], [writer("A")], [reader("A"), writer("B")]):
            graph = build_summary_graph(programs, SCHEMA)
            if is_robust_type1(graph):
                assert is_robust_type2(graph)

    def test_naive_and_optimized_agree_on_benchmarks(
        self, smallbank_workload, auction_workload
    ):
        for workload in (smallbank_workload, auction_workload):
            for settings in ALL_SETTINGS:
                graph = workload.summary_graph(settings)
                assert is_robust_type2(graph) == is_robust_type2_naive(graph)

    def test_naive_and_optimized_agree_on_tpcc_subsets(self, tpcc_workload):
        import itertools
        for names in itertools.combinations(tpcc_workload.program_names, 2):
            subset = tpcc_workload.subset(list(names))
            graph = subset.summary_graph(ATTR_DEP_FK)
            assert is_robust_type2(graph) == is_robust_type2_naive(graph), names

    def test_witness_edges_exist_in_graph(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP)
        witness = find_type2_violation(graph)
        assert witness is not None
        for edge in witness.edges:
            assert edge in graph.edges

    def test_witness_contains_nc_and_cf(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP)
        witness = find_type2_violation(graph)
        kinds = {edge.counterflow for edge in witness.edges}
        assert kinds == {True, False}


class TestHandWorkedSmallBankExamples:
    """The subsets analyzed in the paper's Sections 1 and 7."""

    @pytest.mark.parametrize(
        "names,expected_robust",
        [
            (["Balance", "DepositChecking"], True),
            (["Balance", "TransactSavings"], True),
            (["Amalgamate", "DepositChecking", "TransactSavings"], True),
            (["Balance", "Amalgamate"], False),
            (["Balance", "WriteCheck"], False),
            (["WriteCheck"], False),
            (["Balance", "DepositChecking", "TransactSavings"], False),
        ],
    )
    def test_subset_verdicts(self, smallbank_workload, names, expected_robust):
        subset = smallbank_workload.subset(names)
        assert (
            is_robust(subset.programs, subset.schema, ATTR_DEP_FK, "type-II")
            is expected_robust
        )

    def test_bal_dc_rejected_by_type1(self, smallbank_workload):
        subset = smallbank_workload.subset(["Balance", "DepositChecking"])
        assert not is_robust(subset.programs, subset.schema, ATTR_DEP_FK, "type-I")


class TestSubsetEnumeration:
    def test_subset_count(self, auction_workload):
        grid = robust_subsets(auction_workload.programs, auction_workload.schema)
        assert len(grid) == 3  # 2^2 - 1

    def test_prop_5_2_antimonotonicity(self, smallbank_workload):
        """Every subset of a robust set is robust (Proposition 5.2)."""
        grid = robust_subsets(smallbank_workload.programs, smallbank_workload.schema)
        for subset, robust in grid.items():
            if robust:
                for other, other_robust in grid.items():
                    if other < subset:
                        assert other_robust, f"{other} ⊆ {subset}"

    def test_maximal_subsets_are_maximal(self, smallbank_workload):
        grid = robust_subsets(smallbank_workload.programs, smallbank_workload.schema)
        maximal = maximal_robust_subsets(
            smallbank_workload.programs, smallbank_workload.schema
        )
        robust = {s for s, ok in grid.items() if ok}
        for subset in maximal:
            assert subset in robust
            assert not any(subset < other for other in robust)

    def test_unknown_method_rejected(self, auction_workload):
        with pytest.raises(ValueError):
            robust_subsets(
                auction_workload.programs, auction_workload.schema, method="nope"
            )

    def test_method_accepts_callable(self, auction_workload):
        grid = robust_subsets(
            auction_workload.programs,
            auction_workload.schema,
            method=lambda graph: True,
        )
        assert all(grid.values())


class TestAnalyzeApi:
    def test_auction_report(self, auction_workload):
        report = auction_workload.analyze(ATTR_DEP_FK)
        assert report.robust and not report.type1_robust
        assert report.witness is None and report.type1_witness is not None
        text = report.describe()
        assert "True" in text and "type-I" in text

    def test_non_robust_report_has_witness(self, auction_workload):
        report = auction_workload.analyze(ATTR_DEP)
        assert not report.robust
        assert report.witness is not None
        assert "dangerous cycle" in report.describe()

    def test_program_count(self, tpcc_workload):
        assert tpcc_workload.analyze(ATTR_DEP_FK).program_count == 13
