"""Tests for repro.btp.unfold: Unfold≤2 semantics and FK-instance binding."""

import pytest

from repro.btp.program import BTP, FKConstraint, choice, loop, optional, seq
from repro.btp.statement import Statement
from repro.btp.unfold import unfold, unfold_program
from repro.schema import ForeignKey, Relation, Schema

R = Relation("R", ["k", "v"], key=["k"])
P = Relation("P", ["k", "v"], key=["k"])
SCHEMA = Schema([R, P], [ForeignKey("f", "R", "P", {"v": "k"})])


def sel(name: str, relation=R) -> Statement:
    return Statement.key_select(name, relation, reads=["v"])


def upd(name: str, relation=R) -> Statement:
    return Statement.key_update(name, relation, reads=["v"], writes=["v"])


def names(ltp) -> list[str]:
    return [occ.name for occ in ltp.occurrences]


class TestBasicUnfolding:
    def test_linear_program_unfolds_to_itself(self):
        program = BTP("P", seq(sel("a"), sel("b")))
        (ltp,) = unfold_program(program)
        assert ltp.name == "P"
        assert names(ltp) == ["a", "b"]

    def test_optional_two_variants(self):
        program = BTP("P", seq(sel("a"), optional(sel("b"))))
        variants = unfold_program(program)
        assert [names(v) for v in variants] == [["a", "b"], ["a"]]
        assert [v.name for v in variants] == ["P#1", "P#2"]

    def test_choice_two_variants(self):
        program = BTP("P", choice(sel("a"), sel("b")))
        variants = unfold_program(program)
        assert [names(v) for v in variants] == [["a"], ["b"]]

    def test_loop_three_variants(self):
        program = BTP("P", loop(sel("a")))
        variants = unfold_program(program)
        assert sorted(names(v) for v in variants) == [[], ["a"], ["a", "a"]]

    def test_loop_zero_iterations_yields_empty_ltp(self):
        program = BTP("P", loop(sel("a")))
        empties = [v for v in unfold_program(program) if v.is_empty]
        assert len(empties) == 1

    def test_choice_inside_loop_iterations_choose_independently(self):
        program = BTP("P", loop(choice(sel("a"), sel("b"))))
        variants = {tuple(names(v)) for v in unfold_program(program)}
        assert variants == {
            (), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b"),
        }

    def test_nested_loop(self):
        program = BTP("P", loop(loop(sel("a"))))
        variants = {tuple(names(v)) for v in unfold_program(program)}
        # Outer 0..2 iterations, each inner 0..2 repetitions: 0..4 'a's.
        assert variants == {(), ("a",), ("a",) * 2, ("a",) * 3, ("a",) * 4}

    def test_duplicates_are_removed(self):
        # Both branches are the same statement: only one variant survives.
        program = BTP("P", optional(optional(sel("a"))))
        variants = unfold_program(program)
        assert sorted(tuple(names(v)) for v in variants) == [(), ("a",)]

    def test_unfold_k_parameter(self):
        program = BTP("P", loop(sel("a")))
        variants = unfold_program(program, max_loop_iterations=3)
        assert max(len(v) for v in variants) == 3
        variants = unfold_program(program, max_loop_iterations=0)
        assert [names(v) for v in variants] == [[]]

    def test_negative_k_rejected(self):
        from repro.errors import ProgramError
        with pytest.raises(ProgramError):
            unfold_program(BTP("P", sel("a")), max_loop_iterations=-1)

    def test_unfold_set_rejects_duplicate_program_names(self):
        from repro.errors import ProgramError
        with pytest.raises(ProgramError):
            unfold([BTP("P", sel("a")), BTP("P", sel("b"))])

    def test_positions_are_sequential(self):
        program = BTP("P", loop(seq(sel("a"), sel("b"))))
        for variant in unfold_program(program):
            assert [occ.position for occ in variant.occurrences] == list(range(len(variant)))


class TestConstraintBinding:
    def test_linear_constraint_binding(self):
        program = BTP(
            "P",
            seq(sel("p", P), upd("r", R)),
            constraints=[FKConstraint("f", source="r", target="p")],
        )
        (ltp,) = unfold_program(program)
        (inst,) = ltp.constraints
        assert inst.source_pos == 1 and inst.target_pos == 0 and inst.fk == "f"

    def test_constraint_dropped_when_branch_not_taken(self):
        program = BTP(
            "P",
            seq(sel("p", P), optional(upd("r", R))),
            constraints=[FKConstraint("f", source="r", target="p")],
        )
        with_r, without_r = unfold_program(program)
        assert len(with_r.constraints) == 1
        assert without_r.constraints == ()

    def test_same_loop_binds_per_iteration(self):
        program = BTP(
            "P",
            loop(seq(sel("p", P), upd("r", R))),
            constraints=[FKConstraint("f", source="r", target="p")],
        )
        two = next(v for v in unfold_program(program) if len(v) == 4)
        pairs = {(inst.source_pos, inst.target_pos) for inst in two.constraints}
        # iteration 1: p@0, r@1; iteration 2: p@2, r@3 — no cross binding.
        assert pairs == {(1, 0), (3, 2)}

    def test_target_outside_loop_binds_to_every_iteration(self):
        program = BTP(
            "P",
            seq(sel("p", P), loop(upd("r", R))),
            constraints=[FKConstraint("f", source="r", target="p")],
        )
        two = next(v for v in unfold_program(program) if len(v) == 3)
        pairs = {(inst.source_pos, inst.target_pos) for inst in two.constraints}
        assert pairs == {(1, 0), (2, 0)}

    def test_loop_paths_recorded(self):
        program = BTP("P", loop(sel("a")))
        two = next(v for v in unfold_program(program) if len(v) == 2)
        paths = [occ.loop_path for occ in two.occurrences]
        assert paths[0] != paths[1]
        assert paths[0][0][0] == paths[1][0][0]  # same loop id
        assert {p[0][1] for p in paths} == {0, 1}  # different iterations


class TestBenchmarkUnfoldings:
    def test_smallbank_unfolds_to_five(self, smallbank_workload):
        assert len(smallbank_workload.unfolded()) == 5

    def test_tpcc_unfolds_to_thirteen(self, tpcc_workload):
        ltps = tpcc_workload.unfolded()
        assert len(ltps) == 13  # Table 2: 'nodes / unfolded tr pr'

    def test_tpcc_unfolding_breakdown(self, tpcc_workload):
        by_origin = {}
        for ltp in tpcc_workload.unfolded():
            by_origin.setdefault(ltp.origin, []).append(ltp)
        assert len(by_origin["Delivery"]) == 3
        assert len(by_origin["NewOrder"]) == 3
        assert len(by_origin["OrderStatus"]) == 2
        assert len(by_origin["Payment"]) == 4
        assert len(by_origin["StockLevel"]) == 1

    def test_auction_unfolds_to_three(self, auction_workload):
        ltps = auction_workload.unfolded()
        assert len(ltps) == 3
        placebids = [l for l in ltps if l.origin == "PlaceBid"]
        assert [tuple(o.name for o in v.occurrences) for v in placebids] == [
            ("q3", "q4", "q5", "q6"),
            ("q3", "q4", "q6"),
        ]

    def test_placebid_without_q5_loses_its_constraint(self, auction_workload):
        short = next(
            v for v in auction_workload.unfolded()
            if v.origin == "PlaceBid" and len(v) == 3
        )
        fks = {(inst.fk, inst.source_pos) for inst in short.constraints}
        assert fks == {("f1", 1), ("f2", 2)}

    def test_delivery_two_iterations_constraints_do_not_cross(self, tpcc_workload):
        two = next(
            v for v in tpcc_workload.unfolded()
            if v.origin == "Delivery" and len(v) == 14
        )
        for inst in two.constraints:
            # Source and target always lie in the same iteration (0-6 / 7-13).
            assert (inst.source_pos < 7) == (inst.target_pos < 7)

    def test_neworder_orderline_constraints_bind_across_loop(self, tpcc_workload):
        two = next(
            v for v in tpcc_workload.unfolded()
            if v.origin == "NewOrder" and len(v) == 11
        )
        f8_instances = [inst for inst in two.constraints if inst.fk == "f8"]
        # Both q15 occurrences (positions 7 and 10) reference the single q11
        # insert at position 3.
        assert {(i.source_pos, i.target_pos) for i in f8_instances} == {(7, 3), (10, 3)}


class TestLTPQueries:
    def test_occurs_before(self):
        program = BTP("P", seq(sel("a"), sel("b")))
        (ltp,) = unfold_program(program)
        assert ltp.occurs_before("a", "b")
        assert not ltp.occurs_before("b", "a")
        assert not ltp.occurs_before("a", "a")
        assert not ltp.occurs_before("a", "nope")

    def test_occurs_before_with_duplicates(self):
        program = BTP("P", loop(seq(sel("a"), sel("b"))))
        two = next(v for v in unfold_program(program) if len(v) == 4)
        # b@1 precedes a@2, so exists-semantics says b occurs before a.
        assert two.occurs_before("b", "a")

    def test_statement_at(self):
        program = BTP("P", seq(sel("a"), upd("b")))
        (ltp,) = unfold_program(program)
        assert ltp.statement_at(1).name == "b"

    def test_signature_distinguishes_constraints(self):
        p1 = Statement.key_select("p", P, reads=["v"])
        r1 = Statement.key_update("r", R, reads=[], writes=["v"])
        base = BTP("A", seq(p1, r1))
        with_fk = BTP(
            "A", seq(p1, r1), constraints=[FKConstraint("f", source="r", target="p")]
        )
        (l1,) = unfold_program(base)
        (l2,) = unfold_program(with_fk)
        assert l1.signature != l2.signature
