"""Tests for SQL → BTP translation (Appendix A) and workload round-trips."""

import pytest

from repro.btp.statement import StatementType
from repro.errors import SqlError
from repro.schema import Relation, Schema
from repro.sqlfront import parse_program
from repro.workloads import auction, smallbank, tpcc

SCHEMA = Schema(
    [
        Relation("R", ["k", "a", "b"], key=["k"]),
        Relation("Pair", ["k1", "k2", "v"], key=["k1", "k2"]),
        Relation("NoKey", ["x", "y"], key=[]),
    ]
)


def only_statement(sql, schema=SCHEMA):
    program = parse_program(sql, schema, "P")
    (stmt,) = program.statements()
    return stmt


class TestKeyVsPredicate:
    def test_full_key_equality_is_key_based(self):
        stmt = only_statement("SELECT a FROM R WHERE k = :x;")
        assert stmt.stype is StatementType.KEY_SELECT
        assert stmt.pread_set is None

    def test_composite_key_requires_all_columns(self):
        key_based = only_statement("SELECT v FROM Pair WHERE k1 = :a AND k2 = :b;")
        assert key_based.stype is StatementType.KEY_SELECT
        partial = only_statement("SELECT v FROM Pair WHERE k1 = :a;")
        assert partial.stype is StatementType.PRED_SELECT
        assert partial.pread_set == frozenset({"k1"})

    def test_non_key_equality_is_predicate(self):
        stmt = only_statement("SELECT a FROM R WHERE a = :x;")
        assert stmt.stype is StatementType.PRED_SELECT

    def test_inequality_on_key_is_predicate(self):
        stmt = only_statement("SELECT a FROM R WHERE k >= :x;")
        assert stmt.stype is StatementType.PRED_SELECT

    def test_key_plus_extra_condition_is_predicate(self):
        stmt = only_statement("SELECT a FROM R WHERE k = :x AND a > 0;")
        assert stmt.stype is StatementType.PRED_SELECT
        assert stmt.pread_set == frozenset({"a", "k"})

    def test_disjunction_is_predicate(self):
        stmt = only_statement("SELECT a FROM R WHERE k = :x OR k = :y;")
        assert stmt.stype is StatementType.PRED_SELECT

    def test_keyless_relation_always_predicate(self):
        stmt = only_statement("SELECT y FROM NoKey WHERE x = :x;")
        assert stmt.stype is StatementType.PRED_SELECT


class TestAttributeSets:
    def test_select_reads_select_list(self):
        stmt = only_statement("SELECT a, b FROM R WHERE k = :x;")
        assert stmt.read_set == frozenset({"a", "b"})

    def test_update_reads_exprs_and_returning(self):
        stmt = only_statement(
            "UPDATE R SET a = b + 1 WHERE k = :x RETURNING a INTO :a;"
        )
        assert stmt.stype is StatementType.KEY_UPDATE
        assert stmt.write_set == frozenset({"a"})
        assert stmt.read_set == frozenset({"a", "b"})

    def test_update_from_params_reads_nothing(self):
        stmt = only_statement("UPDATE R SET a = :v WHERE k = :x;")
        assert stmt.read_set == frozenset()

    def test_pred_update(self):
        stmt = only_statement("UPDATE R SET a = :v WHERE b > 0;")
        assert stmt.stype is StatementType.PRED_UPDATE
        assert stmt.pread_set == frozenset({"b"})

    def test_insert_with_columns(self):
        stmt = only_statement("INSERT INTO R (k, a) VALUES (:x, 1);")
        assert stmt.stype is StatementType.INSERT
        assert stmt.write_set == frozenset({"k", "a"})

    def test_insert_without_columns_writes_all(self):
        stmt = only_statement("INSERT INTO R VALUES (:x, 1, 2);")
        assert stmt.write_set == frozenset({"k", "a", "b"})

    def test_key_delete(self):
        stmt = only_statement("DELETE FROM R WHERE k = :x;")
        assert stmt.stype is StatementType.KEY_DELETE
        assert stmt.write_set == frozenset({"k", "a", "b"})

    def test_pred_delete(self):
        stmt = only_statement("DELETE FROM R WHERE a < 0;")
        assert stmt.stype is StatementType.PRED_DELETE
        assert stmt.pread_set == frozenset({"a"})


class TestNameResolution:
    def test_case_insensitive_relation(self):
        stmt = only_statement("SELECT a FROM r WHERE k = :x;")
        assert stmt.relation == "R"

    def test_case_insensitive_attributes(self):
        stmt = only_statement("SELECT A FROM R WHERE K = :x;")
        assert stmt.read_set == frozenset({"a"})
        assert stmt.stype is StatementType.KEY_SELECT

    def test_unknown_relation_rejected(self):
        with pytest.raises(SqlError):
            only_statement("SELECT a FROM Nope WHERE k = :x;")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SqlError):
            only_statement("SELECT nope FROM R WHERE k = :x;")

    def test_insert_arity_mismatch_rejected(self):
        with pytest.raises(SqlError):
            only_statement("INSERT INTO R VALUES (1, 2);")
        with pytest.raises(SqlError):
            only_statement("INSERT INTO R (k, a) VALUES (1);")


class TestControlFlowTranslation:
    def test_if_becomes_optional(self):
        program = parse_program(
            "IF :c THEN UPDATE R SET a = 1 WHERE k = :x; END IF;", SCHEMA, "P"
        )
        assert str(program.root) == "(q1 | ε)"

    def test_if_else_becomes_choice(self):
        program = parse_program(
            """
            IF :c THEN SELECT a FROM R WHERE k = :x;
            ELSE SELECT b FROM R WHERE k = :x;
            END IF;
            """,
            SCHEMA,
            "P",
        )
        assert str(program.root) == "(q1 | q2)"

    def test_repeat_becomes_loop(self):
        program = parse_program(
            "REPEAT UPDATE R SET a = 1 WHERE k = :x; END REPEAT;", SCHEMA, "P"
        )
        assert str(program.root) == "loop(q1)"

    def test_if_with_only_assignments_disappears(self):
        program = parse_program(
            """
            SELECT a FROM R WHERE k = :x;
            IF :c THEN :v = :v + 1; END IF;
            UPDATE R SET a = :v WHERE k = :x;
            """,
            SCHEMA,
            "P",
        )
        assert program.is_linear
        assert [s.name for s in program.statements()] == ["q1", "q2"]

    def test_empty_program_rejected(self):
        with pytest.raises(SqlError):
            parse_program("COMMIT;", SCHEMA, "P")

    def test_statement_numbering_offset(self):
        program = parse_program(
            "SELECT a FROM R WHERE k = :x;", SCHEMA, "P", first_statement=7
        )
        assert [s.name for s in program.statements()] == ["q7"]


WORKLOAD_STARTS = {
    "SmallBank": {"Amalgamate": 1, "Balance": 6, "DepositChecking": 9,
                  "TransactSavings": 11, "WriteCheck": 13},
    "Auction": {"FindBids": 1, "PlaceBid": 3},
    "TPC-C": {"Delivery": 1, "NewOrder": 8, "OrderStatus": 16,
              "Payment": 20, "StockLevel": 27},
}


def _workload_cases():
    for factory in (smallbank, auction, tpcc):
        workload = factory()
        for program in workload.programs:
            yield pytest.param(workload, program, id=f"{workload.name}-{program.name}")


@pytest.mark.parametrize("workload,program", list(_workload_cases()))
class TestWorkloadRoundTrip:
    """The bundled SQL translates to exactly the hand-transcribed BTPs."""

    def test_sql_matches_figures(self, workload, program):
        sql = workload.sql[program.name]
        parsed = parse_program(
            sql,
            workload.schema,
            program.name,
            first_statement=WORKLOAD_STARTS[workload.name][program.name],
        )
        assert str(parsed.root) == str(program.root)
        assert parsed.statements_by_name() == program.statements_by_name()
