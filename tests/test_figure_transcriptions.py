"""Verbatim pins of the paper's statement tables (Figures 2, 10 and 17).

Every statement's type, relation and attribute sets, exactly as printed.
These are the inputs everything else derives from; any drift here would
silently change the reproduced numbers.
"""

import pytest

from repro.workloads import auction, smallbank, tpcc

S_DISTS = {f"s_dist_{i:02d}" for i in range(1, 11)}

# (program, name): (type, relation, PReadSet, ReadSet, WriteSet); None = ⊥.
FIGURE2 = {
    ("FindBids", "q1"): ("key upd", "Buyer", None, {"calls"}, {"calls"}),
    ("FindBids", "q2"): ("pred sel", "Bids", {"bid"}, {"bid"}, None),
    ("PlaceBid", "q3"): ("key upd", "Buyer", None, {"calls"}, {"calls"}),
    ("PlaceBid", "q4"): ("key sel", "Bids", None, {"bid"}, None),
    ("PlaceBid", "q5"): ("key upd", "Bids", None, set(), {"bid"}),
    ("PlaceBid", "q6"): ("ins", "Log", None, None, {"id", "buyerId", "bid"}),
}

FIGURE10 = {
    ("Amalgamate", "q1"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("Amalgamate", "q2"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("Amalgamate", "q3"): ("key upd", "Savings", None, {"Balance"}, {"Balance"}),
    ("Amalgamate", "q4"): ("key upd", "Checking", None, {"Balance"}, {"Balance"}),
    ("Amalgamate", "q5"): ("key upd", "Checking", None, {"Balance"}, {"Balance"}),
    ("Balance", "q6"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("Balance", "q7"): ("key sel", "Savings", None, {"Balance"}, None),
    ("Balance", "q8"): ("key sel", "Checking", None, {"Balance"}, None),
    ("DepositChecking", "q9"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("DepositChecking", "q10"): ("key upd", "Checking", None, {"Balance"}, {"Balance"}),
    ("TransactSavings", "q11"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("TransactSavings", "q12"): ("key upd", "Savings", None, {"Balance"}, {"Balance"}),
    ("WriteCheck", "q13"): ("key sel", "Account", None, {"CustomerId"}, None),
    ("WriteCheck", "q14"): ("key sel", "Savings", None, {"Balance"}, None),
    ("WriteCheck", "q15"): ("key sel", "Checking", None, {"Balance"}, None),
    ("WriteCheck", "q16"): ("key upd", "Checking", None, {"Balance"}, {"Balance"}),
}

FIGURE17 = {
    ("Delivery", "q1"): (
        "pred sel", "New_Order", {"no_d_id", "no_w_id"}, {"no_o_id"}, None),
    ("Delivery", "q2"): (
        "key del", "New_Order", None, None, {"no_d_id", "no_o_id", "no_w_id"}),
    ("Delivery", "q3"): ("key sel", "Orders", None, {"o_c_id"}, None),
    ("Delivery", "q4"): ("key upd", "Orders", None, set(), {"o_carrier_id"}),
    ("Delivery", "q5"): (
        "pred upd", "Order_Line", {"ol_d_id", "ol_o_id", "ol_w_id"}, set(),
        {"ol_delivery_d"}),
    ("Delivery", "q6"): (
        "pred sel", "Order_Line", {"ol_d_id", "ol_o_id", "ol_w_id"},
        {"ol_amount"}, None),
    ("Delivery", "q7"): (
        "key upd", "Customer", None, {"c_balance", "c_delivery_cnt"},
        {"c_balance", "c_delivery_cnt"}),
    ("NewOrder", "q8"): (
        "key sel", "Customer", None, {"c_credit", "c_discount", "c_last"}, None),
    ("NewOrder", "q9"): ("key sel", "Warehouse", None, {"w_tax"}, None),
    ("NewOrder", "q10"): (
        "key upd", "District", None, {"d_next_o_id", "d_tax"}, {"d_next_o_id"}),
    ("NewOrder", "q11"): (
        "ins", "Orders", None, None,
        {"o_all_local", "o_c_id", "o_d_id", "o_entry_id", "o_id", "o_ol_cnt",
         "o_w_id"}),
    ("NewOrder", "q12"): (
        "ins", "New_Order", None, None, {"no_d_id", "no_o_id", "no_w_id"}),
    ("NewOrder", "q13"): (
        "key sel", "Item", None, {"i_data", "i_name", "i_price"}, None),
    ("NewOrder", "q14"): (
        "key upd", "Stock", None,
        {"s_data", "s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"} | S_DISTS,
        {"s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"}),
    ("NewOrder", "q15"): (
        "ins", "Order_Line", None, None,
        {"ol_amount", "ol_d_id", "ol_dist_info", "ol_i_id", "ol_number",
         "ol_o_id", "ol_quantity", "ol_supply_w_id", "ol_w_id"}),
    ("OrderStatus", "q16"): (
        "pred sel", "Customer", {"c_d_id", "c_last", "c_w_id"},
        {"c_balance", "c_first", "c_id", "c_middle"}, None),
    ("OrderStatus", "q17"): (
        "key sel", "Customer", None,
        {"c_balance", "c_first", "c_last", "c_middle"}, None),
    ("OrderStatus", "q18"): (
        "pred sel", "Orders", {"o_c_id", "o_d_id", "o_w_id"},
        {"o_carrier_id", "o_entry_id", "o_id"}, None),
    ("OrderStatus", "q19"): (
        "pred sel", "Order_Line", {"ol_d_id", "ol_o_id", "ol_w_id"},
        {"ol_amount", "ol_delivery_d", "ol_i_id", "ol_quantity",
         "ol_supply_w_id"}, None),
    ("Payment", "q20"): (
        "key upd", "Warehouse", None,
        {"w_city", "w_name", "w_state", "w_street_1", "w_street_2", "w_ytd",
         "w_zip"}, {"w_ytd"}),
    ("Payment", "q21"): (
        "key upd", "District", None,
        {"d_city", "d_name", "d_state", "d_street_1", "d_street_2", "d_ytd",
         "d_zip"}, {"d_ytd"}),
    ("Payment", "q22"): (
        "pred sel", "Customer", {"c_d_id", "c_last", "c_w_id"}, {"c_id"}, None),
    ("Payment", "q23"): (
        "key upd", "Customer", None,
        {"c_balance", "c_city", "c_credit", "c_credit_lim", "c_discount",
         "c_first", "c_last", "c_middle", "c_phone", "c_since", "c_state",
         "c_street_1", "c_street_2", "c_ytd_payment", "c_zip"},
        {"c_balance", "c_payment_cnt", "c_ytd_payment"}),
    ("Payment", "q24"): ("key sel", "Customer", None, {"c_data"}, None),
    ("Payment", "q25"): ("key upd", "Customer", None, set(), {"c_data"}),
    ("Payment", "q26"): (
        "ins", "History", None, None,
        {"h_amount", "h_c_d_id", "h_c_id", "h_c_w_id", "h_d_id", "h_data",
         "h_date", "h_w_id"}),
    ("StockLevel", "q27"): ("key sel", "District", None, {"d_next_o_id"}, None),
    ("StockLevel", "q28"): (
        "pred sel", "Order_Line", {"ol_d_id", "ol_o_id", "ol_w_id"},
        {"ol_i_id"}, None),
    ("StockLevel", "q29"): (
        "pred sel", "Stock", {"s_quantity", "s_w_id"}, {"s_i_id"}, None),
}


def _cases(workload_factory, table):
    workload = workload_factory()
    statements = {}
    for program in workload.programs:
        for stmt in program.statements():
            statements[(program.name, stmt.name)] = stmt
    assert set(statements) == set(table)
    for key in sorted(table, key=lambda item: (item[0], int(item[1][1:]))):
        yield pytest.param(statements[key], table[key], id=f"{key[0]}.{key[1]}")


def _norm(value):
    return None if value is None else frozenset(value)


@pytest.mark.parametrize("stmt,expected", list(_cases(auction, FIGURE2)))
def test_figure2_auction(stmt, expected):
    stype, relation, preads, reads, writes = expected
    assert stmt.stype.value == stype
    assert stmt.relation == relation
    assert stmt.pread_set == _norm(preads)
    assert stmt.read_set == _norm(reads)
    assert stmt.write_set == _norm(writes)


@pytest.mark.parametrize("stmt,expected", list(_cases(smallbank, FIGURE10)))
def test_figure10_smallbank(stmt, expected):
    stype, relation, preads, reads, writes = expected
    assert (stmt.stype.value, stmt.relation) == (stype, relation)
    assert stmt.pread_set == _norm(preads)
    assert stmt.read_set == _norm(reads)
    assert stmt.write_set == _norm(writes)


@pytest.mark.parametrize("stmt,expected", list(_cases(tpcc, FIGURE17)))
def test_figure17_tpcc(stmt, expected):
    stype, relation, preads, reads, writes = expected
    assert (stmt.stype.value, stmt.relation) == (stype, relation)
    assert stmt.pread_set == _norm(preads)
    assert stmt.read_set == _norm(reads)
    assert stmt.write_set == _norm(writes)
