"""Property tests for the compiled interference kernel.

The kernel replaces frozenset intersections with bitwise ANDs over interned
masks, precomputes ``protecting_fks`` per occurrence position, and ships
picklable statement profiles to process pools.  Every layer is tested for
*equivalence* with the original formulation:

* bitmask ``ncDepConds``/``cDepConds`` agree with the frozenset originals
  on arbitrary Figure-5-valid statements (including ⊥ sets and foreign-key
  constraint instances) — Hypothesis-generated;
* compiled ``pair_edges`` blocks equal ``pair_edges_reference`` blocks
  edge-for-edge on arbitrary generated LTP pairs and on every built-in
  workload under all four Section 7.2 settings;
* ``backend="process"`` graphs are edge-for-edge identical to serial ones;
* the :class:`~repro.detection.subsets.PairMatrix` fast path yields verdict
  grids identical to the plain block-store enumeration;
* the size-bucketed ``maximal_subsets`` equals the naive quadratic scan on
  arbitrary verdict grids.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.btp.ltp import LTP, FKInstance
from repro.btp.statement import Statement, StatementType
from repro.btp.unfold import unfold
from repro.detection.subsets import (
    PairMatrix,
    _resolve_method,
    enumerate_robust_subsets,
    maximal_subsets,
    robust_subsets,
)
from repro.errors import ProgramError
from repro.schema import ForeignKey, Relation, Schema
from repro.summary.conditions import (
    c_dep_conds,
    c_dep_conds_masks,
    nc_dep_conds,
    nc_dep_conds_masks,
    protecting_fks,
)
from repro.summary.pairwise import (
    EdgeBlockStore,
    compile_profile,
    pair_edges,
    pair_edges_reference,
)
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import auction_n, smallbank, tpcc

# A small two-relation schema with two foreign keys for the generators.
_PARENT = Relation("Parent", ["pk", "a", "b"], key=["pk"])
_CHILD = Relation("Child", ["ck", "parent", "x", "y"], key=["ck"])
_SCHEMA = Schema(
    [_PARENT, _CHILD],
    [
        ForeignKey("f1", "Child", "Parent", {"parent": "pk"}),
        ForeignKey("f2", "Child", "Parent", {"x": "pk"}),
    ],
)
_RELATIONS = {rel.name: rel for rel in _SCHEMA.relations}


@st.composite
def statements(draw, name: str = "q", relation_name: str | None = None) -> Statement:
    """An arbitrary Figure-5-valid statement (⊥ patterns per type)."""
    if relation_name is None:
        relation_name = draw(st.sampled_from(sorted(_RELATIONS)))
    relation = _RELATIONS[relation_name]
    attrs = sorted(relation.attributes)

    def subset(min_size: int = 0) -> frozenset[str]:
        return frozenset(
            draw(st.lists(st.sampled_from(attrs), min_size=min_size, unique=True))
        )

    stype = draw(st.sampled_from(sorted(StatementType, key=lambda t: t.value)))
    if stype is StatementType.INSERT:
        return Statement(name, stype, relation.name, None, None, subset(1))
    if stype is StatementType.KEY_DELETE:
        return Statement(name, stype, relation.name, None, None, relation.attribute_set)
    if stype is StatementType.PRED_DELETE:
        return Statement(
            name, stype, relation.name, subset(), None, relation.attribute_set
        )
    if stype is StatementType.KEY_SELECT:
        return Statement(name, stype, relation.name, None, subset(), None)
    if stype is StatementType.PRED_SELECT:
        return Statement(name, stype, relation.name, subset(), subset(), None)
    if stype is StatementType.KEY_UPDATE:
        return Statement(name, stype, relation.name, None, subset(), subset(1))
    return Statement(name, stype, relation.name, subset(), subset(), subset(1))


@st.composite
def ltps(draw, name: str) -> LTP:
    """A small LTP with arbitrary statements and FK constraint instances."""
    size = draw(st.integers(min_value=1, max_value=4))
    stmts = [draw(statements(name=f"q{index}")) for index in range(size)]
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        constraints.append(
            FKInstance(
                fk=draw(st.sampled_from(["f1", "f2"])),
                source_pos=draw(st.integers(0, size - 1)),
                target_pos=draw(st.integers(0, size - 1)),
            )
        )
    return LTP(name, stmts, constraints)


class TestMaskConditions:
    @hyp_settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_nc_dep_conds_masks_agree(self, data):
        relation = data.draw(st.sampled_from(sorted(_RELATIONS)))
        qi = data.draw(statements(name="qi", relation_name=relation))
        qj = data.draw(statements(name="qj", relation_name=relation))
        interner = _SCHEMA.interner
        assert nc_dep_conds(qi, qj) == nc_dep_conds_masks(
            qi.masks(interner), qj.masks(interner)
        )

    @hyp_settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_c_dep_conds_masks_agree(self, data):
        program_i = data.draw(ltps("Pi"))
        program_j = data.draw(ltps("Pj"))
        use_fk = data.draw(st.booleans())
        interner = _SCHEMA.interner
        for occ_i in program_i:
            for occ_j in program_j:
                qi, qj = occ_i.statement, occ_j.statement
                if qi.relation != qj.relation:
                    continue
                expected = c_dep_conds(
                    qi, qj, program_i, program_j, use_fk,
                    source_pos=occ_i.position, target_pos=occ_j.position,
                )
                got = c_dep_conds_masks(
                    qi.masks(interner),
                    qj.masks(interner),
                    interner.fk_mask(protecting_fks(program_i, occ_i.position)),
                    interner.fk_mask(protecting_fks(program_j, occ_j.position)),
                    use_fk,
                )
                assert got == expected

    def test_masks_keep_bottom_distinguishable(self):
        interner = _SCHEMA.interner
        key_select = Statement.key_select("q", _PARENT, reads=[])
        masks = key_select.masks(interner)
        assert masks.preads_mask is None      # ⊥ stays None ...
        assert masks.reads_mask == 0          # ... empty-but-defined stays 0
        assert masks.writes_mask is None
        assert (masks.preads, masks.reads, masks.writes) == (0, 0, 0)


class TestKernelParity:
    @hyp_settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_pair_edges_matches_reference_on_random_ltps(self, data):
        program_i = data.draw(ltps("Pi"))
        program_j = data.draw(ltps("Pj"))
        settings = data.draw(st.sampled_from(ALL_SETTINGS))
        assert pair_edges(program_i, program_j, _SCHEMA, settings) == (
            pair_edges_reference(program_i, program_j, _SCHEMA, settings)
        )
        # self-pairs exercise the shared-profile path
        assert pair_edges(program_i, program_i, _SCHEMA, settings) == (
            pair_edges_reference(program_i, program_i, _SCHEMA, settings)
        )

    @pytest.mark.parametrize(
        "workload_factory", [smallbank, tpcc, lambda: auction_n(5)],
        ids=["smallbank", "tpcc", "auction5"],
    )
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_store_blocks_match_reference_on_builtins(
        self, workload_factory, settings
    ):
        workload = workload_factory()
        ltps_ = unfold(workload.programs, 2)
        store = EdgeBlockStore(workload.schema, settings)
        store.register(ltps_)
        store.ensure_blocks()
        for a in ltps_:
            for b in ltps_:
                assert store.block(a.name, b.name) == pair_edges_reference(
                    a, b, workload.schema, settings
                )

    def test_profiles_are_picklable(self):
        import pickle

        workload = smallbank()
        (ltp, *_) = unfold(workload.programs, 2)
        profile = compile_profile(ltp, workload.schema, ATTR_DEP_FK)
        assert pickle.loads(pickle.dumps(profile)) == profile


class TestProcessBackend:
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_process_graph_identical_to_serial(self, settings):
        workload = smallbank()
        ltps_ = unfold(workload.programs, 2)
        serial = EdgeBlockStore(workload.schema, settings)
        serial.register(ltps_)
        process = EdgeBlockStore(
            workload.schema, settings, jobs=2, backend="process"
        )
        process.register(ltps_)
        assert process.graph().edges == serial.graph().edges
        assert process.cache_info()["computed"] == len(ltps_) ** 2

    def test_process_backend_without_jobs_defaults_to_core_count(self):
        # backend="process" must not silently fall through to the serial
        # path when jobs is omitted: it defaults to the machine's cores
        # (which may be 1, in which case serial *is* the fan-out).
        workload = smallbank()
        ltps_ = unfold(workload.programs, 2)
        serial = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        serial.register(ltps_)
        process = EdgeBlockStore(workload.schema, ATTR_DEP_FK, backend="process")
        process.register(ltps_)
        assert process.graph().edges == serial.graph().edges

    def test_unknown_backend_rejected(self):
        workload = smallbank()
        with pytest.raises(ProgramError, match="backend"):
            EdgeBlockStore(workload.schema, ATTR_DEP_FK, backend="gpu")
        store = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        store.register(unfold(workload.programs, 2))
        with pytest.raises(ProgramError, match="backend"):
            store.ensure_blocks(backend="gpu")

    def test_analyzer_process_backend_report_matches(self):
        from repro.analysis import Analyzer

        serial = Analyzer("smallbank").analyze()
        process = Analyzer("smallbank", jobs=2, backend="process").analyze()
        assert process.to_dict() == serial.to_dict()


def _plain_robust_subsets(programs, schema, settings, method):
    """The pre-matrix enumeration: graph assembly + check per candidate."""
    check = _resolve_method(method)
    ltps_ = unfold(programs, 2)
    store = EdgeBlockStore(schema, settings)
    store.register(ltps_)
    by_origin = {program.name: [] for program in programs}
    for ltp in ltps_:
        by_origin[ltp.origin].append(ltp.name)

    def check_combo(combo):
        keep = [name for origin in combo for name in by_origin[origin]]
        return check(store.graph(keep))

    return enumerate_robust_subsets(by_origin, check_combo)


class TestPairMatrix:
    @pytest.mark.parametrize(
        "workload_factory", [smallbank, lambda: auction_n(4)],
        ids=["smallbank", "auction4"],
    )
    @pytest.mark.parametrize("method", ["type-II", "type-I"])
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_verdicts_identical_to_plain_enumeration(
        self, workload_factory, method, settings
    ):
        workload = workload_factory()
        plain = _plain_robust_subsets(
            workload.programs, workload.schema, settings, method
        )
        matrix = robust_subsets(
            workload.programs, workload.schema, settings, method=method
        )
        assert matrix == plain

    def test_arbitrary_method_bypasses_matrix(self):
        workload = smallbank()
        calls = []

        def check(graph):
            calls.append(graph.program_names)
            return True

        store = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        assert PairMatrix.for_method(store, {}, check) is None
        verdicts = robust_subsets(
            workload.programs, workload.schema, ATTR_DEP_FK, method=check
        )
        assert all(verdicts.values())
        assert calls  # the custom callable was actually consulted

    def test_session_matrix_matches_one_shot(self):
        from repro.analysis import Analyzer

        workload = auction_n(3)
        session = Analyzer(workload)
        for settings in ALL_SETTINGS:
            assert session.robust_subsets(settings) == robust_subsets(
                workload.programs, workload.schema, settings
            )


class TestMaximalSubsets:
    @staticmethod
    def _naive(verdicts):
        robust = [subset for subset, ok in verdicts.items() if ok]
        maximal = [
            subset
            for subset in robust
            if not any(subset < other for other in robust)
        ]
        return tuple(sorted(maximal, key=lambda s: (-len(s), sorted(s))))

    @hyp_settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_bucketed_equals_naive_on_arbitrary_grids(self, data):
        universe = sorted(data.draw(st.sets(st.sampled_from("abcdef"), min_size=1)))
        verdicts = {}
        for size in range(1, len(universe) + 1):
            for combo in itertools.combinations(universe, size):
                verdicts[frozenset(combo)] = data.draw(st.booleans())
        assert maximal_subsets(verdicts) == self._naive(verdicts)

    def test_non_antimonotone_family(self):
        # maximal_subsets must not assume downward closure
        verdicts = {
            frozenset("ab"): True,
            frozenset("a"): False,
            frozenset("b"): True,
            frozenset("c"): True,
        }
        assert maximal_subsets(verdicts) == (frozenset("ab"), frozenset("c"))


class TestDiscardIndex:
    def test_discard_multiple_programs_drops_exactly_their_blocks(self):
        workload = auction_n(3)
        ltps_ = unfold(workload.programs, 2)
        store = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        store.register(ltps_)
        store.graph()
        victims = [ltps_[0].name, ltps_[1].name]
        store.discard(victims)
        survivors = [ltp for ltp in ltps_ if ltp.name not in victims]
        info = store.cache_info()
        assert info["blocks"] == len(survivors) ** 2
        remaining_pairs = set(store.blocks())
        expected = {(a.name, b.name) for a in survivors for b in survivors}
        assert remaining_pairs == expected
        # re-registering recomputes only the dropped programs' blocks
        before = store.cache_info()["computed"]
        store.register([ltps_[0], ltps_[1]])
        store.graph([ltp.name for ltp in ltps_])
        recomputed = store.cache_info()["computed"] - before
        assert recomputed == len(ltps_) ** 2 - len(survivors) ** 2

    def test_discard_after_load_block(self):
        workload = smallbank()
        ltps_ = unfold(workload.programs, 2)
        warm = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        warm.register(ltps_)
        warm.graph()
        cold = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        cold.register(ltps_)
        for (source, target), edges in warm.blocks().items():
            cold.load_block(source, target, edges)
        cold.discard([ltps_[0].name])
        assert cold.cache_info()["blocks"] == (len(ltps_) - 1) ** 2


class TestProcessBackendDegrade:
    """backend='process' degrades to serial on hosts with <= 2 cores, with
    exactly one RuntimeWarning per guard owner (store or Analyzer) and a
    single cached cpu_count probe."""

    def _store_with_cores(self, monkeypatch, cores: int) -> EdgeBlockStore:
        import repro.summary.pairwise as pairwise

        monkeypatch.setattr(pairwise.os, "cpu_count", lambda: cores)
        workload = smallbank()
        store = EdgeBlockStore(
            workload.schema, ATTR_DEP_FK, jobs=2, backend="process"
        )
        return store, unfold(workload.programs, 2)

    @pytest.mark.parametrize("cores", [1, 2])
    def test_few_cores_degrade_with_one_warning(self, monkeypatch, cores):
        import warnings as warnings_module

        store, ltps_ = self._store_with_cores(monkeypatch, cores)
        store.register(ltps_)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            store.ensure_blocks()  # blocks build lazily; trigger them here
        degrade = [
            w for w in caught if "degraded to serial" in str(w.message)
        ]
        assert len(degrade) == 1
        assert issubclass(degrade[0].category, RuntimeWarning)
        # Degraded blocks are the serial blocks.
        workload = smallbank()
        serial = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        serial.register(unfold(workload.programs, 2))
        assert store.graph().edges == serial.graph().edges

    def test_warning_fires_once_per_store(self, monkeypatch):
        import warnings as warnings_module

        store, ltps_ = self._store_with_cores(monkeypatch, 1)
        store.register(ltps_)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            store.ensure_blocks()
            store.discard([ltps_[0].name])
            store.register(unfold(smallbank().programs, 2)[:1])
            store.ensure_blocks()  # second build, no repeat warning
        degrade = [
            w for w in caught if "degraded to serial" in str(w.message)
        ]
        assert len(degrade) == 1

    def test_cpu_probe_cached_per_guard(self, monkeypatch):
        import repro.summary.pairwise as pairwise

        calls = []

        def probe():
            calls.append(1)
            return 1

        monkeypatch.setattr(pairwise.os, "cpu_count", probe)
        guard = pairwise.ProcessDegradeGuard()
        assert guard.cpu_count() == 1
        assert guard.cpu_count() == 1
        assert len(calls) == 1

    def test_analyzer_shares_one_guard_across_settings(self, monkeypatch):
        import warnings as warnings_module

        import repro.summary.pairwise as pairwise
        from repro.analysis import Analyzer

        monkeypatch.setattr(pairwise.os, "cpu_count", lambda: 1)
        session = Analyzer("smallbank", jobs=2, backend="process")
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            session.analyze_matrix()  # four settings -> four stores
        degrade = [
            w for w in caught if "degraded to serial" in str(w.message)
        ]
        assert len(degrade) == 1

    def test_enough_cores_do_not_degrade(self, monkeypatch):
        import warnings as warnings_module

        store, ltps_ = self._store_with_cores(monkeypatch, 4)
        store.register(ltps_)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            store.ensure_blocks()
        assert not [
            w for w in caught if "degraded to serial" in str(w.message)
        ]
        workload = smallbank()
        serial = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        serial.register(unfold(workload.programs, 2))
        assert store.graph().edges == serial.graph().edges
