"""A tiny stdlib parser for the Prometheus text exposition format.

Shared by the observability tests and the CI load-smoke scrape: parses
``name{label="value",...} number`` sample lines (ignoring ``# HELP`` /
``# TYPE`` comments) into ``{(name, ((label, value), ...)): float}``.
Raises ``ValueError`` on any line that is not a comment, blank, or a
well-formed sample — which is the "exposition parses" assertion.
"""

from __future__ import annotations

import re

_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (?P<value>[-+0-9.eEinfNa]+)$'
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(
            (name, value.replace('\\"', '"').replace("\\\\", "\\"))
            for name, value in _LABEL.findall(match.group("labels") or "")
        )
        value = match.group("value")
        samples[(match.group("name"), labels)] = (
            float("inf") if value == "+Inf" else float(value)
        )
    return samples
