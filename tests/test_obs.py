"""Tests for :mod:`repro.obs` — metrics, tracing, logging, profiling.

Covers the metrics registry and its Prometheus text exposition (parsed
with the same stdlib parser the CI scrape uses), the ``/v1/metrics``
route, trace-id propagation from an ``X-Repro-Trace-Id`` header through
the access log, a process-backend sweep and a seeded ``worker.kill``
recovery, the ``profile`` span tree (and the byte-identity of payloads
without it), worker tagging, and the monotonic clock helper.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.request

import pytest

import prom_parser
from repro import obs
from repro.analysis.session import Analyzer
from repro.faults import FaultPlan, FaultRule, install_plan
from repro.faults import inject as inject_module
from repro.obs import metrics as obs_metrics
from repro.obs.log import worker_index
from repro.service import AnalysisService, AnalyzeRequest, make_server
from repro.summary.settings import ATTR_DEP_FK


@pytest.fixture(autouse=True)
def _isolate_global_injector():
    """No process-global fault plan leaks into or out of these tests."""
    saved = inject_module._GLOBAL
    saved_pending = inject_module._ENV_PENDING
    install_plan(None)
    yield
    with inject_module._ENV_LOCK:
        inject_module._GLOBAL = saved
        inject_module._ENV_PENDING = saved_pending


@pytest.fixture()
def http_server():
    service = AnalysisService(capacity=8)
    server = make_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _request(server, path, body=None, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode() if body is not None else None,
        method="POST" if body is not None else "GET",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _records(caplog, event):
    """Parsed JSON payloads of every ``repro.obs`` record for ``event``."""
    out = []
    for record in caplog.records:
        if record.name != "repro.obs":
            continue
        payload = json.loads(record.getMessage())
        if payload.get("event") == event:
            out.append(payload)
    return out


# ---------------------------------------------------------------------------
# the metrics registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_render_and_parse(self):
        registry = obs_metrics.Registry()
        requests = registry.counter("t_requests_total", "requests", ("kind",))
        requests.inc(1, "analyze")
        requests.inc(2, "subsets")
        depth = registry.gauge("t_depth", "queue depth")
        depth.set(7)
        lat = registry.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        lat.observe(0.05)
        lat.observe(0.5)
        lat.observe(5.0)
        samples = prom_parser.parse(registry.render())
        assert samples[("t_requests_total", (("kind", "analyze"),))] == 1
        assert samples[("t_requests_total", (("kind", "subsets"),))] == 2
        assert samples[("t_depth", ())] == 7
        assert samples[("t_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("t_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("t_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("t_seconds_count", ())] == 3
        assert samples[("t_seconds_sum", ())] == pytest.approx(5.55)

    def test_extra_labels_reach_every_line(self):
        registry = obs_metrics.Registry()
        registry.counter("t_total", "t").inc()
        samples = prom_parser.parse(registry.render({"worker": "2"}))
        assert samples[("t_total", (("worker", "2"),))] == 1

    def test_label_values_are_escaped(self):
        registry = obs_metrics.Registry()
        registry.counter("t_total", "t", ("path",)).inc(1, 'a"b\\c')
        samples = prom_parser.parse(registry.render())
        ((_, labels),) = samples
        assert labels == (("path", 'a"b\\c'),)

    def test_reregistration_must_match(self):
        registry = obs_metrics.Registry()
        first = registry.counter("t_total", "t")
        assert registry.counter("t_total", "t") is first
        with pytest.raises(ValueError):
            registry.gauge("t_total", "t")
        with pytest.raises(ValueError):
            registry.counter("t_total", "t", ("kind",))

    def test_dead_collector_is_pruned(self):
        registry = obs_metrics.Registry()

        def collector():
            raise ReferenceError

        registry.register_collector(collector)
        registry.render()
        assert registry._collectors == []


# ---------------------------------------------------------------------------
# GET /v1/metrics
# ---------------------------------------------------------------------------

class TestMetricsEndpoint:
    def test_scrape_covers_request_pool_store_and_stage_metrics(
        self, http_server
    ):
        status, _, _ = _request(
            http_server, "/v1/analyze", {"workload": "auction"}
        )
        assert status == 200
        status, body, headers = _request(http_server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = prom_parser.parse(body.decode())
        names = {name for name, _ in samples}
        assert {
            "repro_service_requests_total",
            "repro_service_shed_total",
            "repro_service_deadline_exceeded_total",
            "repro_service_pool_events_total",
            "repro_service_fault_events_total",
            "repro_store_events_total",
            "repro_store_bytes",
            "repro_http_request_seconds_bucket",
            "repro_http_responses_total",
            "repro_stage_seconds_bucket",
            "repro_sweep_seconds_bucket",
        } <= names
        assert (
            samples[
                (
                    "repro_service_requests_total",
                    (("kind", "analyze"), ("worker", "0")),
                )
            ]
            >= 1
        )
        # The analyze above unfolded and swept blocks: stage histograms
        # recorded real observations.
        stage_counts = {
            labels: value
            for (name, labels), value in samples.items()
            if name == "repro_stage_seconds_count"
        }
        stages = {dict(labels)["stage"] for labels in stage_counts}
        assert {"unfold", "assemble", "detect", "sweep"} <= stages

    def test_scrape_pulls_live_service_counters(self, http_server):
        for _ in range(2):
            status, _, _ = _request(
                http_server, "/v1/analyze", {"workload": "auction"}
            )
            assert status == 200
        _, body, _ = _request(http_server, "/v1/metrics")
        samples = prom_parser.parse(body.decode())
        hits = samples[
            (
                "repro_service_pool_events_total",
                (("event", "hit"), ("worker", "0")),
            )
        ]
        assert hits == http_server.service.stats()["pool_hits"]
        assert (
            samples[("repro_service_sessions_warm", (("worker", "0"),))] >= 1
        )


# ---------------------------------------------------------------------------
# trace-id propagation
# ---------------------------------------------------------------------------

class TestTracePropagation:
    def test_header_id_reaches_access_log_and_response(
        self, http_server, caplog
    ):
        caplog.set_level(logging.INFO, logger="repro.obs")
        status, _, headers = _request(
            http_server,
            "/v1/analyze",
            {"workload": "auction"},
            headers={"X-Repro-Trace-Id": "trace-test-42"},
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == "trace-test-42"
        access = [
            r
            for r in _records(caplog, "http.request")
            if r.get("trace_id") == "trace-test-42"
        ]
        assert access and access[0]["route"] == "analyze"
        assert access[0]["status"] == 200
        assert access[0]["shed"] is False and access[0]["deadline"] is False
        assert access[0]["duration_ms"] >= 0

    def test_minted_id_when_no_header(self, http_server, caplog):
        caplog.set_level(logging.INFO, logger="repro.obs")
        status, _, headers = _request(http_server, "/v1/healthz")
        assert status == 200
        minted = headers["X-Repro-Trace-Id"]
        assert minted
        assert any(
            r.get("trace_id") == minted
            for r in _records(caplog, "http.request")
        )

    def test_trace_flows_through_process_sweep_and_kill_recovery(
        self, caplog
    ):
        caplog.set_level(logging.DEBUG, logger="repro.obs")
        service = AnalysisService(capacity=4, jobs=4, backend="process")
        # Pre-resolve the pooled session so the degrade guard can be told
        # the host has real cores (the test container has one, which
        # would degrade to serial before any sweep or fault).
        session = service.session("auction(3)")
        session._degrade_guard._cpu_count = 8
        install_plan(
            FaultPlan(
                seed=11,
                rules=(FaultRule(site="worker.kill", every=1, times=1),),
            )
        )
        server = make_server(service, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, _ = _request(
                server,
                "/v1/analyze",
                {"workload": "auction(3)"},
                headers={"X-Repro-Trace-Id": "trace-kill-7"},
            )
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        # One id stitches the whole causal chain: the access log, the
        # sweep the request triggered, and the pool crash it survived.
        assert any(
            r.get("trace_id") == "trace-kill-7"
            for r in _records(caplog, "http.request")
        )
        sweeps = [
            r
            for r in _records(caplog, "sweep.batch")
            if r.get("trace_id") == "trace-kill-7"
        ]
        assert sweeps and sweeps[0]["backend"] == "process"
        recoveries = [
            r
            for r in _records(caplog, "sweep.pool_fault")
            if r.get("trace_id") == "trace-kill-7"
        ]
        assert recoveries and "BrokenProcessPool" in recoveries[0]["error"]
        assert session.fault_info()["recoveries"] == 1

    def test_no_scope_means_no_trace(self):
        assert obs.current_trace_id() is None
        with obs.trace_scope("abc"):
            assert obs.current_trace_id() == "abc"
        assert obs.current_trace_id() is None


# ---------------------------------------------------------------------------
# per-stage profiling
# ---------------------------------------------------------------------------

class TestProfile:
    def test_profile_adds_span_tree_and_nothing_else(self):
        plain = AnalysisService().handle("analyze", {"workload": "auction"})
        profiled = AnalysisService().handle(
            "analyze", {"workload": "auction", "profile": True}
        )
        tree = profiled.pop("profile")
        assert json.dumps(plain, indent=2) == json.dumps(profiled, indent=2)
        stages = set()

        def walk(nodes):
            for node in nodes:
                stages.add(node["stage"])
                assert node["duration_ms"] >= 0
                walk(node.get("children", []))

        walk(tree)
        assert {"unfold", "assemble", "detect"} <= stages

    def test_warm_profile_shows_cached_stages(self):
        service = AnalysisService()
        service.handle("analyze", {"workload": "auction"})
        profiled = service.handle(
            "analyze", {"workload": "auction", "profile": True}
        )
        # Warm request: the report is memoized, so no stage re-runs.
        assert profiled["profile"] == []

    def test_profile_rejected_on_other_kinds(self):
        service = AnalysisService()
        from repro.service.requests import ServiceError

        with pytest.raises(ServiceError, match="unknown field"):
            service.handle("subsets", {"workload": "auction", "profile": True})

    def test_cli_profile_flag(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["analyze", "auction", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "detect" in out
        payload = None
        assert cli_main(["analyze", "auction", "--profile", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "profile" in payload

    def test_spans_are_noops_when_disabled(self):
        was_enabled = obs_metrics.enabled()
        obs_metrics.disable()
        try:
            before = obs.span("unfold")
            after = obs.span("detect")
            # One shared no-op instance: nothing allocates when the layer
            # is off and no profile collector is installed.
            assert before is after
        finally:
            if was_enabled:
                obs_metrics.enable()


# ---------------------------------------------------------------------------
# worker tagging and structured logs
# ---------------------------------------------------------------------------

class TestWorkerTagging:
    def test_stats_has_no_worker_key_single_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_INDEX", raising=False)
        assert "worker" not in AnalysisService().stats()

    def test_stats_and_logs_carry_worker_index(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_WORKER_INDEX", "3")
        assert worker_index() == 3
        stats = AnalysisService().stats()
        assert stats["worker"] == 3
        caplog.set_level(logging.INFO, logger="repro.obs")
        obs.log.info("test.event", detail=1)
        (record,) = _records(caplog, "test.event")
        assert record["worker"] == 3

    def test_log_level_switch(self, caplog):
        caplog.set_level(logging.INFO, logger="repro.obs")
        obs.log.debug("hidden.event")
        obs.log.info("visible.event")
        assert _records(caplog, "hidden.event") == []
        assert len(_records(caplog, "visible.event")) == 1

    def test_resolve_level(self):
        from repro.obs.log import resolve_level

        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("WARNING") == logging.WARNING
        with pytest.raises(ValueError, match="unknown log level"):
            resolve_level("loud")


# ---------------------------------------------------------------------------
# the clock helper
# ---------------------------------------------------------------------------

class TestClock:
    def test_monotonic_never_goes_backwards(self):
        a = obs.monotonic()
        b = obs.monotonic()
        assert isinstance(a, float) and b >= a

    def test_grid_and_monitor_use_it(self):
        # The wall-clock satellite: both modules import the one helper
        # (no time.time / time.perf_counter mix at their call sites).
        import repro.churn.monitor as monitor
        import repro.service.grid as grid

        assert grid.monotonic is obs.monotonic
        assert monitor.monotonic is obs.monotonic
        assert not hasattr(grid, "time")
        assert not hasattr(monitor, "time")


# ---------------------------------------------------------------------------
# canonical payloads stay canonical
# ---------------------------------------------------------------------------

class TestByteIdentity:
    def test_cache_info_shape_unchanged(self):
        session = Analyzer("auction")
        session.analyze(ATTR_DEP_FK)
        assert set(session.cache_info()) == {
            "unfolded_programs",
            "summary_graphs",
            "reports",
            "edge_blocks",
            "block_computations",
            "blocks_loaded",
        }

    def test_stats_shape_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKER_INDEX", raising=False)
        service = AnalysisService()
        service.handle("analyze", {"workload": "auction"})
        assert list(service.stats())[:2] == ["version", "capacity"]
        assert "profile" not in service.handle(
            "analyze", {"workload": "auction"}
        )
