"""Tests for the plane-packed batch kernel (``repro.summary.planes``).

The load-bearing property: the batch sweep — stdlib SWAR and numpy alike —
must reproduce ``pair_edges_reference`` edge for edge for every ordered
program pair, across all four Section 7.2 settings.  On top of that the
two kernels must agree *bit for bit* on the dense bitset planes the
process backend ships over shared memory.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.btp.unfold import unfold
from repro.errors import ProgramError
from repro.summary import planes
from repro.summary.pairwise import (
    EdgeBlockStore,
    compile_profile,
    pair_edges_reference,
)
from repro.summary.planes import (
    PlaneArena,
    arena_view,
    coords_from_dense,
    dense_rows,
    plan_sweeps,
    resolve_kernel,
    sweep_blocks,
    words_for_bits,
)
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import auction_n, smallbank

KERNELS = ["stdlib"] + (["numpy"] if planes.numpy_available() else [])

WORKLOADS = {
    "smallbank": smallbank,
    "auction8": lambda: auction_n(8),
}


def _ltps(workload):
    return unfold(workload.programs, 2)


def _reference_blocks(ltps, schema, settings):
    return {
        (ltp_i.name, ltp_j.name): tuple(
            pair_edges_reference(ltp_i, ltp_j, schema, settings)
        )
        for ltp_i in ltps
        for ltp_j in ltps
    }


def _packed_arena(ltps, schema, settings):
    """An arena holding every LTP's compiled profile (post-intern width)."""
    profiles = [compile_profile(ltp, schema, settings) for ltp in ltps]
    interner = schema.interner
    words = words_for_bits(
        max(interner.attr_bit_count, interner.fk_bit_count, 1)
    )
    arena = PlaneArena(words)
    for profile in profiles:
        arena.add(profile)
    return arena


class TestBatchKernelParity:
    """Batch kernel == executable-spec reference, block for block."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_store_blocks_match_reference(self, kernel, workload_name, settings):
        workload = WORKLOADS[workload_name]()
        ltps = _ltps(workload)
        store = EdgeBlockStore(workload.schema, settings, plane_kernel=kernel)
        store.register(ltps)
        store.ensure_blocks()
        reference = _reference_blocks(ltps, workload.schema, settings)
        for pair, expected in reference.items():
            assert store.block(*pair) == expected

    @hyp_settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_workload_subsets_match_reference(self, data):
        """Property: random SmallBank/Auction(<=8) slices x all four
        Section 7.2 settings agree with ``pair_edges_reference``."""
        source = data.draw(st.sampled_from(sorted(WORKLOADS)))
        workload = WORKLOADS[source]()
        subset = data.draw(
            st.lists(
                st.sampled_from(list(workload.programs)),
                min_size=1,
                max_size=4,
                unique_by=lambda p: p.name,
            )
        )
        settings = data.draw(st.sampled_from(ALL_SETTINGS))
        kernel = data.draw(st.sampled_from(KERNELS))
        ltps = unfold(subset, 2)
        store = EdgeBlockStore(workload.schema, settings, plane_kernel=kernel)
        store.register(ltps)
        store.ensure_blocks()
        for pair, expected in _reference_blocks(
            ltps, workload.schema, settings
        ).items():
            assert store.block(*pair) == expected


@pytest.mark.skipif(
    not planes.numpy_available(), reason="numpy fast path not importable"
)
class TestKernelAgreement:
    """stdlib SWAR and numpy sweeps are interchangeable, bit for bit."""

    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_dense_planes_bit_for_bit(self, settings):
        workload = auction_n(5)
        ltps = _ltps(workload)
        arena = _packed_arena(ltps, workload.schema, settings)
        rows = list(range(arena.capacity))
        view = arena_view(arena)
        use_fk = settings.use_foreign_keys
        np_nc, np_cf = dense_rows(view, rows, rows, use_fk, kernel="numpy")
        sw_nc, sw_cf = dense_rows(view, rows, rows, use_fk, kernel="stdlib")
        assert np_nc == sw_nc
        assert np_cf == sw_cf

    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_sweep_blocks_identical(self, settings):
        workload = smallbank()
        ltps = _ltps(workload)
        arena = _packed_arena(ltps, workload.schema, settings)
        names = [ltp.name for ltp in ltps]
        use_fk = settings.use_foreign_keys
        assert sweep_blocks(
            arena, names, names, use_fk, kernel="numpy"
        ) == sweep_blocks(arena, names, names, use_fk, kernel="stdlib")


class TestDenseRoundTrip:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_coords_survive_dense_encoding(self, kernel):
        workload = smallbank()
        ltps = _ltps(workload)
        arena = _packed_arena(ltps, workload.schema, ATTR_DEP_FK)
        rows = list(range(arena.capacity))
        view = arena_view(arena)
        nc_plane, cf_plane = dense_rows(view, rows, rows, True, kernel=kernel)
        decoded = coords_from_dense(nc_plane, cf_plane, len(rows), len(rows))
        if kernel == "numpy":
            direct = planes._np_coords(view, rows, rows, True)
        else:
            direct = planes._swar_coords(view, rows, rows, True)
        assert decoded == sorted(direct)


class TestPlaneArena:
    def test_words_always_leave_top_slot_bit_free(self):
        # The SWAR carry trick adds 2**(k-1) - 1 per slot; the top bit of
        # every slot must start free or the carry corrupts the neighbour.
        for bits in range(0, 200):
            assert words_for_bits(bits) * 64 > bits

    def test_remove_reuses_hole(self, smallbank_workload):
        schema = smallbank_workload.schema
        ltps = _ltps(smallbank_workload)
        profiles = [
            compile_profile(ltp, schema, ATTR_DEP_FK) for ltp in ltps[:3]
        ]
        arena = PlaneArena(words_for_bits(schema.interner.attr_bit_count))
        for profile in profiles:
            arena.add(profile)
        capacity = arena.capacity
        first = profiles[0]
        start, count = arena.rows_of(first.name)
        arena.remove(first.name)
        assert first.name not in arena
        arena.add(first)  # same row count: must land back in the hole
        assert arena.rows_of(first.name) == (start, count)
        assert arena.capacity == capacity

    def test_add_is_idempotent(self, smallbank_workload):
        schema = smallbank_workload.schema
        ltp = _ltps(smallbank_workload)[0]
        profile = compile_profile(ltp, schema, ATTR_DEP_FK)
        arena = PlaneArena(words_for_bits(schema.interner.attr_bit_count))
        arena.add(profile)
        packed = arena.rows_packed
        arena.add(profile)
        assert arena.rows_packed == packed

    def test_mask_wider_than_slot_raises(self):
        arena = PlaneArena(1)
        arena._grow(1)
        with pytest.raises(ProgramError):
            arena._put_mask(arena._writes, 0, 1 << 64)


class TestSweepPlanning:
    def test_full_build_is_one_sweep(self):
        names = ["a", "b", "c"]
        missing = [(i, j) for i in names for j in names]
        plans = plan_sweeps(missing)
        assert len(plans) == 1
        assert sorted(plans[0].sources) == names
        assert sorted(plans[0].targets) == names

    def test_incremental_replace_is_two_sweeps(self):
        # Replacing "b" in {a, b, c} invalidates b's row and b's column.
        names = ["a", "b", "c"]
        missing = [("b", j) for j in names]
        missing += [(i, "b") for i in names if i != "b"]
        plans = plan_sweeps(missing)
        assert len(plans) == 2
        covered = {
            (s, t) for plan in plans for s in plan.sources for t in plan.targets
        }
        assert covered == set(missing)


class TestKernelSelection:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ProgramError):
            resolve_kernel("simd")

    def test_auto_prefers_numpy_when_available(self):
        resolved = resolve_kernel("auto")
        if planes.numpy_available():
            assert resolved == "numpy"
        else:
            assert resolved == "stdlib"

    def test_store_reports_plane_occupancy(self, smallbank_workload):
        store = EdgeBlockStore(smallbank_workload.schema, ATTR_DEP_FK)
        ltps = _ltps(smallbank_workload)
        store.register(ltps)
        assert store.plane_info()["rows"] == 0  # planes pack lazily
        store.ensure_blocks()
        info = store.plane_info()
        assert info["programs"] == len(ltps)
        assert info["rows"] == sum(len(ltp.occurrences) for ltp in ltps)
        assert info["rows"] == info["rows_packed"]
        assert info["words"] >= 1
