"""Tests for repro.mvsched: tuples, versions, operations, transactions."""

import pytest

from repro.errors import ScheduleError
from repro.mvsched.operations import OpKind, Operation
from repro.mvsched.transaction import Transaction, make_transaction
from repro.mvsched.tuples import TupleId, Version, VersionKind

T1 = TupleId("R", 0)
T2 = TupleId("R", 1)
S1 = TupleId("S", 0)


class TestVersions:
    def test_canonical_order(self):
        unborn = Version.unborn(T1)
        v0 = Version.visible(T1, 0)
        v1 = Version.visible(T1, 1)
        dead = Version.dead(T1)
        assert unborn.precedes(v0)
        assert v0.precedes(v1)
        assert v1.precedes(dead)
        assert unborn.precedes(dead)

    def test_order_is_strict(self):
        v0 = Version.visible(T1, 0)
        assert not v0.precedes(v0)

    def test_cross_tuple_comparison_rejected(self):
        with pytest.raises(ValueError):
            Version.unborn(T1).precedes(Version.unborn(T2))

    def test_visibility(self):
        assert Version.visible(T1, 0).is_visible
        assert not Version.unborn(T1).is_visible
        assert not Version.dead(T1).is_visible

    def test_str(self):
        assert str(Version.visible(T1, 2)) == "R:0.v2"
        assert "unborn" in str(Version.unborn(T1))


class TestOperations:
    def test_read_constructor(self):
        op = Operation.read(1, 0, T1, {"v"})
        assert op.is_read and not op.is_write
        assert op.relation == "R" and op.attrs == frozenset({"v"})

    def test_write_family(self):
        for factory in (Operation.write, Operation.insert, Operation.delete):
            op = factory(1, 0, T1, {"v"})
            assert op.is_write and not op.is_read

    def test_pred_read(self):
        op = Operation.pred_read(1, 0, "R", {"v"})
        assert op.is_pred_read and op.tuple is None and op.relation == "R"

    def test_commit(self):
        op = Operation.commit(1, 5)
        assert op.is_commit and not op.is_write and not op.is_read

    def test_commit_with_tuple_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.COMMIT, 1, 0, T1)

    def test_pred_read_with_tuple_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.PRED_READ, 1, 0, T1, "R")

    def test_data_op_requires_tuple(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 1, 0, None)

    def test_relation_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, 1, 0, T1, "S")

    def test_str(self):
        assert str(Operation.read(3, 0, T1)) == "R3[R:0]"
        assert str(Operation.pred_read(3, 0, "R")) == "PR3[R]"
        assert str(Operation.commit(3, 1)) == "C3"


class TestTransactions:
    def test_make_transaction(self):
        t = make_transaction(1, [("R", T1, {"v"}), ("W", T1, {"v"})], chunks=[(0, 1)])
        assert len(t) == 3  # + commit
        assert t.commit.is_commit
        assert t.chunks == ((0, 1),)

    def test_commit_required(self):
        with pytest.raises(ScheduleError):
            Transaction(1, [Operation.read(1, 0, T1)])

    def test_single_commit_only(self):
        ops = [Operation.commit(1, 0), Operation.commit(1, 1)]
        with pytest.raises(ScheduleError):
            Transaction(1, ops)

    def test_foreign_operation_rejected(self):
        ops = [Operation.read(2, 0, T1), Operation.commit(1, 1)]
        with pytest.raises(ScheduleError):
            Transaction(1, ops)

    def test_index_mismatch_rejected(self):
        ops = [Operation.read(1, 5, T1), Operation.commit(1, 1)]
        with pytest.raises(ScheduleError):
            Transaction(1, ops)

    def test_double_read_of_tuple_rejected(self):
        with pytest.raises(ScheduleError):
            make_transaction(1, [("R", T1, set()), ("R", T1, set())])

    def test_double_write_of_tuple_rejected(self):
        with pytest.raises(ScheduleError):
            make_transaction(1, [("W", T1, {"v"}), ("W", T1, {"v"})])

    def test_read_and_write_same_tuple_allowed(self):
        t = make_transaction(1, [("R", T1, {"v"}), ("W", T1, {"v"})])
        assert len(t.data_operations) == 2

    def test_chunk_out_of_range_rejected(self):
        with pytest.raises(ScheduleError):
            make_transaction(1, [("R", T1, set())], chunks=[(0, 1)])

    def test_chunk_units_partitioning(self):
        t = make_transaction(
            1,
            [("R", T1, set()), ("W", T1, set()), ("R", T2, set())],
            chunks=[(0, 1)],
        )
        units = t.chunk_units()
        assert [len(unit) for unit in units] == [2, 1, 1]  # chunk, read, commit

    def test_precedes(self):
        t = make_transaction(1, [("R", T1, set()), ("R", T2, set())])
        first, second = t.operations[0], t.operations[1]
        assert t.precedes(first, second)
        assert not t.precedes(second, first)

    def test_position_of_foreign_op_rejected(self):
        t = make_transaction(1, [("R", T1, set())])
        with pytest.raises(ScheduleError):
            t.position(Operation.read(9, 0, T1))
