"""Tests for the Section 3.3 schedule validity rules and Definition 3.3.

Schedules are built by hand so that every validity bullet can be violated
in isolation.
"""

import pytest

from repro.errors import ScheduleError
from repro.mvsched.mvrc import (
    allowed_under_mvrc,
    find_dirty_write,
    is_read_last_committed,
)
from repro.mvsched.operations import Operation
from repro.mvsched.schedule import Schedule
from repro.mvsched.transaction import Transaction
from repro.mvsched.tuples import TupleId, Version

T = TupleId("R", 0)
UNBORN = Version.unborn(T)
V0 = Version.visible(T, 0)
V1 = Version.visible(T, 1)
DEAD = Version.dead(T)


def writer_tx(tx: int) -> Transaction:
    return Transaction(tx, [Operation.write(tx, 0, T, {"v"}), Operation.commit(tx, 1)])


def reader_tx(tx: int) -> Transaction:
    return Transaction(tx, [Operation.read(tx, 0, T, {"v"}), Operation.commit(tx, 1)])


def simple_schedule(order=None, read_version=V1, version_order=(UNBORN, V0, V1, DEAD)):
    """T1 writes v1, T2 reads; defaults give a valid RLC schedule W1 C1 R2 C2."""
    t1, t2 = writer_tx(1), reader_tx(2)
    w, c1 = t1.operations
    r, c2 = t2.operations
    return Schedule(
        transactions=(t1, t2),
        order=tuple(order or (w, c1, r, c2)),
        init_version={T: V0},
        write_version={w: V1},
        read_version={r: read_version},
        vset={},
        version_order={T: tuple(version_order)},
        universe={"R": (T,)},
    )


class TestValidSchedule:
    def test_default_schedule_is_valid(self):
        simple_schedule().validate()

    def test_default_schedule_is_mvrc(self):
        schedule = simple_schedule()
        assert find_dirty_write(schedule) is None
        assert is_read_last_committed(schedule)
        assert allowed_under_mvrc(schedule)

    def test_position_and_before(self):
        schedule = simple_schedule()
        w, c1 = schedule.transactions[0].operations
        r, _ = schedule.transactions[1].operations
        assert schedule.before(w, r) and not schedule.before(r, w)
        assert schedule.commit_position[1] == 1

    def test_version_order_queries(self):
        schedule = simple_schedule()
        assert schedule.version_before(V0, V1)
        assert not schedule.version_before(V1, V0)
        with pytest.raises(ScheduleError):
            schedule.version_position(Version.visible(T, 9))


class TestValidityViolations:
    def test_transaction_order_violated(self):
        t1, t2 = writer_tx(1), reader_tx(2)
        w, c1 = t1.operations
        r, c2 = t2.operations
        schedule = simple_schedule(order=(c1, w, r, c2))
        with pytest.raises(ScheduleError, match="out of order"):
            schedule.validate()

    def test_chunk_interleaving_detected(self):
        t1 = Transaction(
            1,
            [Operation.read(1, 0, T, {"v"}), Operation.write(1, 1, T, {"v"}),
             Operation.commit(1, 2)],
            chunks=[(0, 1)],
        )
        t2 = reader_tx(2)
        r1, w1, c1 = t1.operations
        r2, c2 = t2.operations
        schedule = Schedule(
            transactions=(t1, t2),
            order=(r1, r2, w1, c1, c2),
            init_version={T: V0},
            write_version={w1: V1},
            read_version={r1: V0, r2: V0},
            vset={},
            version_order={T: (UNBORN, V0, V1, DEAD)},
        )
        with pytest.raises(ScheduleError, match="chunk"):
            schedule.validate()

    def test_version_order_must_start_unborn(self):
        schedule = simple_schedule(version_order=(V0, UNBORN, V1, DEAD))
        with pytest.raises(ScheduleError, match="unborn"):
            schedule.validate()

    def test_version_order_must_end_dead(self):
        schedule = simple_schedule(version_order=(UNBORN, V0, V1))
        with pytest.raises(ScheduleError, match="dead"):
            schedule.validate()

    def test_write_version_must_follow_init(self):
        # The created version V1 is placed before the initial version V0.
        schedule = simple_schedule(version_order=(UNBORN, V1, V0, DEAD), read_version=V0)
        with pytest.raises(ScheduleError, match="initial"):
            schedule.validate()

    def test_non_delete_may_not_create_dead_version(self):
        t1, t2 = writer_tx(1), reader_tx(2)
        w, c1 = t1.operations
        r, c2 = t2.operations
        schedule = Schedule(
            transactions=(t1, t2),
            order=(w, c1, r, c2),
            init_version={T: V0},
            write_version={w: DEAD},
            read_version={r: V0},
            vset={},
            version_order={T: (UNBORN, V0, DEAD)},
        )
        with pytest.raises(ScheduleError, match="dead"):
            schedule.validate()

    def test_read_of_unwritten_version_rejected(self):
        schedule = simple_schedule(
            read_version=Version.visible(T, 2),
            version_order=(UNBORN, V0, V1, Version.visible(T, 2), DEAD),
        )
        with pytest.raises(ScheduleError, match="nobody wrote"):
            schedule.validate()

    def test_read_of_future_version_rejected(self):
        t1, t2 = writer_tx(1), reader_tx(2)
        w, c1 = t1.operations
        r, c2 = t2.operations
        schedule = simple_schedule(order=(r, c2, w, c1), read_version=V1)
        with pytest.raises(ScheduleError, match="later"):
            schedule.validate()

    def test_plain_read_of_unborn_version_rejected(self):
        schedule = simple_schedule(read_version=UNBORN)
        with pytest.raises(ScheduleError, match="non-visible"):
            schedule.validate()

    def test_insert_must_create_first_visible_version(self):
        # A plain write creating the first visible version of an unborn tuple.
        fresh = TupleId("R", 7)
        t1 = Transaction(1, [Operation.write(1, 0, fresh, {"v"}), Operation.commit(1, 1)])
        w, c1 = t1.operations
        schedule = Schedule(
            transactions=(t1,),
            order=(w, c1),
            init_version={fresh: Version.unborn(fresh)},
            write_version={w: Version.visible(fresh, 0)},
            read_version={},
            vset={},
            version_order={
                fresh: (Version.unborn(fresh), Version.visible(fresh, 0), Version.dead(fresh))
            },
        )
        with pytest.raises(ScheduleError, match="insert"):
            schedule.validate()

    def test_insert_on_existing_tuple_rejected(self):
        t1 = Transaction(1, [Operation.insert(1, 0, T, {"v"}), Operation.commit(1, 1)])
        i, c1 = t1.operations
        schedule = Schedule(
            transactions=(t1,),
            order=(i, c1),
            init_version={T: V0},
            write_version={i: V1},
            read_version={},
            vset={},
            version_order={T: (UNBORN, V0, V1, DEAD)},
        )
        with pytest.raises(ScheduleError, match="insert"):
            schedule.validate()


class TestMvrcConditions:
    def test_dirty_write_detected(self):
        t1 = writer_tx(1)
        t2 = Transaction(2, [Operation.write(2, 0, T, {"v"}), Operation.commit(2, 1)])
        w1, c1 = t1.operations
        w2, c2 = t2.operations
        schedule = Schedule(
            transactions=(t1, t2),
            order=(w1, w2, c1, c2),  # w2 between w1 and C1: dirty
            init_version={T: V0},
            write_version={w1: V1, w2: Version.visible(T, 2)},
            read_version={},
            vset={},
            version_order={T: (UNBORN, V0, V1, Version.visible(T, 2), DEAD)},
        )
        pair = find_dirty_write(schedule)
        assert pair is not None and pair[0] is w1 and pair[1] is w2

    def test_read_of_stale_version_violates_rlc(self):
        # T2 reads V0 although T1 committed V1 before the read.
        schedule = simple_schedule(read_version=V0)
        schedule.validate()  # still a valid multiversion schedule ...
        assert not is_read_last_committed(schedule)  # ... but not RLC
        assert not allowed_under_mvrc(schedule)

    def test_version_order_against_commit_order_violates_rlc(self):
        t1, t2 = writer_tx(1), writer_tx(2)
        w1, c1 = t1.operations
        w2, c2 = t2.operations
        # T1 commits first but its version is ordered *after* T2's.
        schedule = Schedule(
            transactions=(t1, t2),
            order=(w1, c1, w2, c2),
            init_version={T: V0},
            write_version={w1: Version.visible(T, 2), w2: V1},
            read_version={},
            vset={},
            version_order={T: (UNBORN, V0, V1, Version.visible(T, 2), DEAD)},
        )
        assert not is_read_last_committed(schedule)

    def test_pred_read_rlc(self):
        t1 = writer_tx(1)
        t2 = Transaction(2, [Operation.pred_read(2, 0, "R", {"v"}), Operation.commit(2, 1)])
        w, c1 = t1.operations
        pr, c2 = t2.operations
        def make(vset_version):
            return Schedule(
                transactions=(t1, t2),
                order=(w, c1, pr, c2),
                init_version={T: V0},
                write_version={w: V1},
                read_version={},
                vset={pr: {T: vset_version}},
                version_order={T: (UNBORN, V0, V1, DEAD)},
                universe={"R": (T,)},
            )
        assert is_read_last_committed(make(V1))
        assert not is_read_last_committed(make(V0))  # stale snapshot
