"""Tests for the warm-session analysis service (PR 4).

Covers the workload fingerprint, the LRU session pool, the typed request
layer and its :class:`ServiceError` envelopes, the Grid API, cache-directory
warm start, thread safety of one hammered session, and — through a live
:class:`ThreadingHTTPServer` — byte-identical parity between the CLI's
``--json`` output and the ``/v1/*`` HTTP responses.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.session import Analyzer
from repro.cli import main as cli_main
from repro.detection.subsets import SubsetsReport
from repro.errors import ProgramError, ReproError
from repro.service import (
    AnalysisService,
    AnalyzeRequest,
    GridSpec,
    ServiceError,
    SubsetsRequest,
    make_server,
    parse_request,
)
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import auction, smallbank, tpcc

BUILTINS = ("smallbank", "tpcc", "auction")


# ---------------------------------------------------------------------------
# workload fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_same_workload_same_fingerprint(self):
        assert Analyzer("smallbank").fingerprint() == Analyzer(smallbank()).fingerprint()

    def test_different_workloads_differ(self):
        prints = {Analyzer(name).fingerprint() for name in BUILTINS}
        prints.add(Analyzer("auction(2)").fingerprint())
        assert len(prints) == 4

    def test_editing_a_program_changes_it(self):
        session = Analyzer("auction(2)")
        before = session.fingerprint()
        session.remove_program(session.program_names[-1])
        assert session.fingerprint() != before

    def test_max_loop_iterations_matters(self):
        assert (
            Analyzer("auction", max_loop_iterations=2).fingerprint()
            != Analyzer("auction", max_loop_iterations=3).fingerprint()
        )


# ---------------------------------------------------------------------------
# the session pool
# ---------------------------------------------------------------------------

class TestSessionPool:
    def test_same_source_shares_one_session(self):
        service = AnalysisService()
        first = service.session("smallbank")
        assert service.session("smallbank") is first
        # ... whatever spelling the workload arrives as:
        assert service.session(smallbank()) is first

    def test_lru_eviction(self):
        service = AnalysisService(capacity=2)
        first = service.session("smallbank")
        service.session("tpcc")
        service.session("auction")  # evicts smallbank (least recently used)
        pooled = {s.workload.name for s in service.sessions().values()}
        assert pooled == {"TPC-C", "Auction"}
        assert service.session("smallbank") is not first

    def test_fetch_refreshes_recency(self):
        service = AnalysisService(capacity=2)
        service.session("smallbank")
        service.session("tpcc")
        service.session("smallbank")  # most recently used again
        service.session("auction")  # evicts tpcc, not smallbank
        pooled = {s.workload.name for s in service.sessions().values()}
        assert pooled == {"SmallBank", "Auction"}

    def test_fresh_session_is_unpooled(self):
        service = AnalysisService(jobs=2, backend="thread")
        session = service.fresh_session("auction")
        assert session.jobs == 2
        assert service.sessions() == {}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ProgramError):
            AnalysisService(capacity=0)
        with pytest.raises(ProgramError):
            AnalysisService(backend="quantum")

    def test_stats_surface_cache_info(self):
        service = AnalysisService()
        service.handle("analyze", {"workload": "auction"})
        stats = service.stats()
        assert stats["requests"] == 1
        (entry,) = stats["sessions"]
        assert entry["workload"] == "Auction"
        assert entry["cache_info"]["block_computations"] > 0
        json.dumps(stats)  # must be JSON-serializable as-is


# ---------------------------------------------------------------------------
# the typed request layer
# ---------------------------------------------------------------------------

class TestRequestValidation:
    def test_unknown_kind_is_404(self):
        with pytest.raises(ServiceError) as excinfo:
            parse_request("frobnicate", {})
        assert excinfo.value.status == 404
        assert excinfo.value.envelope["error"]["exit_code"] == 2

    @pytest.mark.parametrize(
        "kind, body",
        [
            ("analyze", {}),  # missing workload
            ("analyze", {"workload": 7}),
            ("analyze", {"workload": "auction", "junk": True}),
            ("analyze", {"workload": "auction", "subset": "Bal"}),
            ("analyze", {"workload": "auction", "all_settings": "yes"}),
            ("subsets", {"workload": "auction", "method": "type-III"}),
            ("subsets", {"workload": "auction", "setting": "bogus setting"}),
            ("graph", {"workload": "auction", "format": "dot"}),
            ("grid", {}),  # missing workloads
            ("grid", {"workloads": ["auction"], "task": "dance"}),
            ("grid", {"workloads": ["auction"], "repetitions": 0}),
            ("batch", {"requests": []}),
            ("batch", {"requests": ["not a mapping"]}),
        ],
    )
    def test_malformed_requests_get_the_envelope(self, kind, body):
        service = AnalysisService()
        with pytest.raises(ServiceError) as excinfo:
            service.handle(kind, body)
        envelope = excinfo.value.envelope["error"]
        assert envelope["exit_code"] == 2
        assert envelope["type"] == "invalid_request"

    def test_analysis_failures_are_enveloped_too(self):
        service = AnalysisService()
        with pytest.raises(ServiceError) as excinfo:
            service.handle("analyze", {"workload": "not-a-workload"})
        assert excinfo.value.envelope["error"]["type"] == "analysis_error"

    def test_service_error_is_a_repro_error(self):
        # The CLI's exit-code-2 path catches ReproError; the envelope rides it.
        assert issubclass(ServiceError, ReproError)

    def test_handle_matches_library_results(self):
        service = AnalysisService()
        payload = service.handle(
            "analyze", {"workload": "smallbank", "setting": "attr dep"}
        )
        expected = Analyzer("smallbank").analyze(
            ALL_SETTINGS[1]  # 'attr dep'
        ).to_dict()
        assert payload == expected

    def test_subsets_report_round_trips(self):
        service = AnalysisService()
        report = service.subsets(SubsetsRequest(workload="smallbank"))
        again = SubsetsReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()
        assert "maximal robust subsets:" in report.describe()

    def test_batch_mixes_results_and_errors(self):
        service = AnalysisService()
        payload = service.handle(
            "batch",
            {
                "requests": [
                    {"kind": "analyze", "workload": "auction"},
                    {"kind": "analyze", "workload": "missing-workload"},
                    {"kind": "subsets", "workload": "auction"},
                ]
            },
        )
        first, second, third = payload["results"]
        assert first["workload"] == "Auction"
        assert second["error"]["exit_code"] == 2
        assert third["maximal_robust_subsets"] == [["FindBids", "PlaceBid"]]

    def test_batch_items_fail_independently(self):
        """One bad item must not reject its siblings (per-item envelopes)."""
        service = AnalysisService()
        payload = service.handle(
            "batch",
            {
                "requests": [
                    {"kind": "batch", "requests": []},  # nesting refused
                    {"kind": "frobnicate"},  # unknown kind
                    {"kind": "analyze", "workload": "auction", "junk": 1},
                    {"kind": "analyze", "workload": "auction"},
                ]
            },
        )
        nested, unknown, malformed, good = payload["results"]
        assert "nested" in nested["error"]["message"]
        assert unknown["error"]["type"] == "not_found"
        assert malformed["error"]["type"] == "invalid_request"
        assert good["workload"] == "Auction"

    def test_all_settings_matrix(self):
        service = AnalysisService()
        payload = service.handle(
            "analyze", {"workload": "auction", "all_settings": True}
        )
        assert [r["settings"] for r in payload["reports"]] == [
            s.label for s in ALL_SETTINGS
        ]


# ---------------------------------------------------------------------------
# the Grid API
# ---------------------------------------------------------------------------

class TestGrid:
    def test_cells_cover_the_cross_product(self):
        service = AnalysisService()
        result = service.grid(GridSpec(workloads=("smallbank", "auction")))
        assert len(result.cells) == 2 * len(ALL_SETTINGS)
        assert result.cell("Auction", ATTR_DEP_FK).value["robust"] is True
        json.dumps(result.to_dict())

    def test_warm_cells_share_the_pool(self):
        service = AnalysisService()
        service.grid(GridSpec(workloads=("auction",), settings=(ATTR_DEP_FK,)))
        (session,) = service.sessions().values()
        before = session.cache_info()["block_computations"]
        service.grid(GridSpec(workloads=("auction",), settings=(ATTR_DEP_FK,)))
        assert session.cache_info()["block_computations"] == before

    def test_cold_cells_do_not_touch_the_pool(self):
        service = AnalysisService()
        result = service.grid(
            GridSpec(
                workloads=("auction",),
                settings=(ATTR_DEP_FK,),
                warm=False,
                repetitions=3,
            )
        )
        assert service.sessions() == {}
        assert len(result.cells[0].seconds) == 3

    def test_verdict_grid_matches_the_session_api(self):
        service = AnalysisService()
        cell = service.grid(
            GridSpec(
                workloads=("smallbank",),
                settings=(ATTR_DEP_FK,),
                task="subsets",
                include_verdicts=True,
            )
        ).cells[0]
        grid = {
            frozenset(names): robust
            for names, robust in cell.value["robust_subsets"]
        }
        assert grid == Analyzer("smallbank").robust_subsets(ATTR_DEP_FK)

    def test_detect_task_matches_one_method(self):
        service = AnalysisService()
        cell = service.grid(
            GridSpec(
                workloads=("auction",),
                settings=(ATTR_DEP_FK,),
                task="detect",
                method="type-I",
            )
        ).cells[0]
        report = Analyzer("auction").analyze(ATTR_DEP_FK)
        assert cell.value["robust"] is report.type1_robust
        assert cell.value["graph"] == report.stats.to_dict()

    def test_subsets_cells_share_the_subsets_payload_shape(self):
        service = AnalysisService()
        cell = service.grid(
            GridSpec(
                workloads=("auction",), settings=(ATTR_DEP_FK,), task="subsets"
            )
        ).cells[0]
        assert cell.value == service.handle(
            "subsets", {"workload": "auction", "setting": ATTR_DEP_FK.label}
        )

    def test_bad_specs_rejected(self):
        with pytest.raises(ProgramError):
            GridSpec(workloads=())
        with pytest.raises(ProgramError):
            GridSpec(workloads=("auction",), task="unknown")
        with pytest.raises(ProgramError):
            GridSpec(workloads=("auction",), repetitions=0)


# ---------------------------------------------------------------------------
# cache-directory warm start
# ---------------------------------------------------------------------------

class TestWarmStart:
    def test_artifacts_are_fingerprint_named(self, tmp_path):
        service = AnalysisService()
        session = service.session("smallbank")
        session.analyze()
        (path,) = service.save_to_cache_dir(tmp_path)
        assert path.stem == session.fingerprint()

    def test_warm_start_recomputes_nothing(self, tmp_path):
        warm = AnalysisService()
        warm.session("smallbank").analyze()
        warm.session("auction").analyze()
        warm.save_to_cache_dir(tmp_path)

        restored = AnalysisService()
        warmed = restored.warm_from_cache_dir(tmp_path)
        assert sorted(warmed) == ["Auction", "SmallBank"]
        for name in ("smallbank", "auction"):
            payload = restored.handle("analyze", {"workload": name})
            assert payload == warm.handle("analyze", {"workload": name})
        for session in restored.sessions().values():
            info = session.cache_info()
            assert info["block_computations"] == 0
            assert info["blocks_loaded"] > 0

    def test_subset_cache_still_loads_after_workload_grows(self, tmp_path):
        """A v2 cache covering a strict subset of the workload's programs is
        valid (the whole-set fingerprint differs, but every cached block
        still is exact) — the per-program fallback must accept it."""
        full = smallbank()
        partial = Analyzer(
            [p for p in full.programs if p.name != "WriteCheck"],
            schema=full.schema,
        )
        partial.analyze()
        path = tmp_path / "partial.json"
        partial.save_cache(path)

        grown = Analyzer(full.programs, schema=full.schema, name="SmallBank")
        grown.load_cache(path)
        info = grown.cache_info()
        assert info["blocks_loaded"] > 0
        assert info["block_computations"] == 0
        # Analysis over the full set computes only the WriteCheck blocks.
        assert grown.analyze().to_dict() == Analyzer(full).analyze().to_dict()

    def test_duplicate_artifacts_warm_once(self, tmp_path):
        service = AnalysisService()
        service.session("auction").analyze()
        (path,) = service.save_to_cache_dir(tmp_path)
        (tmp_path / "copy.json").write_text(path.read_text())
        restored = AnalysisService()
        assert restored.warm_from_cache_dir(tmp_path) == ["Auction"]
        assert len(restored.sessions()) == 1

    def test_junk_files_are_skipped(self, tmp_path):
        (tmp_path / "junk.json").write_text("not json at all")
        (tmp_path / "other.json").write_text('{"format": "something-else"}')
        service = AnalysisService()
        assert service.warm_from_cache_dir(tmp_path) == []

    def test_missing_directory_errors(self, tmp_path):
        with pytest.raises(ProgramError):
            AnalysisService().warm_from_cache_dir(tmp_path / "nope")


# ---------------------------------------------------------------------------
# thread safety of one warm session
# ---------------------------------------------------------------------------

class TestConcurrency:
    def test_hammered_session_never_double_computes(self):
        service = AnalysisService()
        session = service.session("smallbank")

        def attack(index: int):
            settings = ALL_SETTINGS[index % len(ALL_SETTINGS)]
            report = session.analyze(settings)
            session.maximal_robust_subsets(settings)
            return settings.label, report.to_dict()

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(attack, range(24)))

        by_label: dict[str, dict] = {}
        for label, payload in results:
            assert by_label.setdefault(label, payload) == payload
        info = session.cache_info()
        # Every pairwise block was computed exactly once: the computation
        # counter equals the number of cached blocks (double computation
        # would make it larger).
        assert info["block_computations"] == info["edge_blocks"]
        assert info["reports"] == len(ALL_SETTINGS)

    def test_concurrent_service_requests(self):
        service = AnalysisService()

        def request(index: int):
            name = BUILTINS[index % len(BUILTINS)]
            return name, service.handle("analyze", {"workload": name})

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(request, range(12)))
        by_name: dict[str, dict] = {}
        for name, payload in results:
            assert by_name.setdefault(name, payload) == payload
        assert len(service.sessions()) == len(BUILTINS)


# ---------------------------------------------------------------------------
# the HTTP frontend: CLI parity, errors, stats
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def http_server():
    service = AnalysisService(capacity=8)
    server = make_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(server, path: str, body) -> tuple[int, bytes]:
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode() if not isinstance(body, bytes) else body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _get(server, path: str) -> tuple[int, bytes]:
    port = server.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestHTTP:
    @pytest.mark.parametrize("workload", BUILTINS)
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_analyze_is_byte_identical_to_the_cli(
        self, http_server, capsys, workload, settings
    ):
        assert (
            cli_main(["analyze", workload, "--setting", settings.label, "--json"])
            == 0
        )
        cli_bytes = capsys.readouterr().out.encode()
        status, body = _post(
            http_server,
            "/v1/analyze",
            {"workload": workload, "setting": settings.label},
        )
        assert status == 200
        assert body == cli_bytes

    @pytest.mark.parametrize("workload", BUILTINS)
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_subsets_is_byte_identical_to_the_cli(
        self, http_server, capsys, workload, settings
    ):
        assert (
            cli_main(["subsets", workload, "--setting", settings.label, "--json"])
            == 0
        )
        cli_bytes = capsys.readouterr().out.encode()
        status, body = _post(
            http_server,
            "/v1/subsets",
            {"workload": workload, "setting": settings.label},
        )
        assert status == 200
        assert body == cli_bytes

    def test_graph_is_byte_identical_to_the_cli(self, http_server, capsys):
        assert cli_main(["graph", "auction", "--json"]) == 0
        cli_bytes = capsys.readouterr().out.encode()
        status, body = _post(http_server, "/v1/graph", {"workload": "auction"})
        assert status == 200
        assert body == cli_bytes

    def test_matrix_round_trip(self, http_server, capsys):
        assert cli_main(["analyze", "auction", "--all-settings", "--json"]) == 0
        cli_bytes = capsys.readouterr().out.encode()
        status, body = _post(
            http_server, "/v1/analyze", {"workload": "auction", "all_settings": True}
        )
        assert status == 200
        assert body == cli_bytes

    def test_malformed_body_gets_the_envelope(self, http_server):
        status, body = _post(http_server, "/v1/analyze", b"this is not json")
        assert status == 400
        envelope = json.loads(body)["error"]
        assert envelope["type"] == "invalid_request"
        assert envelope["exit_code"] == 2

    def test_malformed_request_gets_the_envelope(self, http_server):
        status, body = _post(
            http_server, "/v1/analyze", {"workload": "auction", "junk": 1}
        )
        assert status == 400
        assert json.loads(body)["error"]["type"] == "invalid_request"

    def test_unknown_route_is_404(self, http_server):
        status, body = _post(http_server, "/v1/frobnicate", {})
        assert status == 404
        assert json.loads(body)["error"]["type"] == "not_found"
        status, body = _get(http_server, "/v1/nope")
        assert status == 404

    def test_grid_endpoint(self, http_server):
        status, body = _post(
            http_server,
            "/v1/grid",
            {
                "workloads": ["smallbank", "auction"],
                "settings": ["attr dep + FK"],
                "task": "subsets",
            },
        )
        assert status == 200
        payload = json.loads(body)
        assert [cell["workload"] for cell in payload["cells"]] == [
            "SmallBank",
            "Auction",
        ]
        for cell in payload["cells"]:
            assert cell["seconds"] and cell["mean_seconds"] >= 0

    def test_stats_endpoint(self, http_server):
        status, body = _get(http_server, "/v1/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["capacity"] == 8
        assert stats["requests"] > 0
        for entry in stats["sessions"]:
            assert set(entry) == {"fingerprint", "workload", "programs", "cache_info"}


# ---------------------------------------------------------------------------
# PR 5: the advise endpoint, batch caps, eviction spill, cell fan-out
# ---------------------------------------------------------------------------

class TestAdviseRequests:
    def test_advise_payload_matches_session_advise(self):
        service = AnalysisService()
        payload = service.handle("advise", {"workload": "smallbank"})
        direct = Analyzer("smallbank").advise(ATTR_DEP_FK).to_dict()
        assert payload == direct
        assert payload["repaired"] is True

    def test_advise_already_robust(self):
        service = AnalysisService()
        payload = service.handle(
            "advise", {"workload": "auction", "setting": "attr dep + FK"}
        )
        assert payload["already_robust"] is True and payload["repairs"] == []

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({}, "missing required field 'workload'"),
            ({"workload": 7}, "must be a string"),
            ({"workload": "smallbank", "max_edits": "three"}, "must be an integer"),
            ({"workload": "smallbank", "max_edits": 0}, "must be >= 1"),
            ({"workload": "smallbank", "method": "nope"}, "unknown method"),
            ({"workload": "smallbank", "junk": 1}, "unknown field"),
            ({"workload": "smallbank", "setting": "bogus"}, "unknown settings label"),
        ],
    )
    def test_advise_validation_envelopes(self, body, fragment):
        service = AnalysisService()
        with pytest.raises(ServiceError, match=fragment) as excinfo:
            service.handle("advise", body)
        envelope = excinfo.value.envelope["error"]
        assert envelope["exit_code"] == 2

    def test_advise_over_http_is_byte_identical_to_the_cli(
        self, http_server, capsys
    ):
        assert cli_main(["advise", "smallbank", "--json"]) == 0
        cli_bytes = capsys.readouterr().out.encode()
        status, body = _post(http_server, "/v1/advise", {"workload": "smallbank"})
        assert status == 200
        assert body == cli_bytes


class TestServiceErrorEnvelopes:
    """Satellite: ServiceError envelopes on malformed /v1/* bodies."""

    @pytest.mark.parametrize(
        "kind, body, fragment",
        [
            ("analyze", {"workload": ["a", "b"]}, "must be a string"),
            ("analyze", {"workload": "auction", "subset": "Bal"}, "list of strings"),
            ("analyze", {"workload": "auction", "subset": [1]}, "only strings"),
            ("analyze", {"workload": "auction", "all_settings": "yes"}, "boolean"),
            ("subsets", {"workload": "auction", "extra": True}, "unknown field"),
            ("graph", [], "must be a JSON object"),
            ("grid", {"workloads": []}, "non-empty"),
            ("grid", {"workloads": ["auction"], "repetitions": 1.5}, "integer"),
            ("grid", {"workloads": ["auction"], "cell_jobs": "x"}, "integer"),
            ("batch", {"requests": "nope"}, "non-empty list"),
        ],
    )
    def test_wrong_types_and_unknown_keys(self, kind, body, fragment):
        service = AnalysisService()
        with pytest.raises(ServiceError, match=fragment) as excinfo:
            service.handle(kind, body)
        assert excinfo.value.envelope["error"]["exit_code"] == 2

    def test_oversized_batch_rejected(self):
        from repro.service import MAX_BATCH_ITEMS

        service = AnalysisService()
        items = [{"kind": "analyze", "workload": "auction"}] * (MAX_BATCH_ITEMS + 1)
        with pytest.raises(ServiceError, match="exceed the batch limit"):
            service.handle("batch", {"requests": items})
        # exactly at the cap is fine (items still validate individually)
        payload = service.handle("batch", {"requests": items[:MAX_BATCH_ITEMS]})
        assert len(payload["results"]) == MAX_BATCH_ITEMS


class TestEvictionSpill:
    """Satellite: LRU-evicted sessions spill to --cache-dir and rehydrate."""

    def test_evicted_session_spills_and_rehydrates(self, tmp_path):
        service = AnalysisService(capacity=1, cache_dir=tmp_path)
        service.session("auction").analyze(ATTR_DEP_FK)
        auction_fingerprint = next(iter(service.sessions()))
        service.session("smallbank").analyze(ATTR_DEP_FK)  # evicts auction
        spilled = tmp_path / f"{auction_fingerprint}.json"
        assert spilled.is_file()
        restored = service.session("auction")
        info = restored.cache_info()
        assert info["block_computations"] == 0
        assert info["blocks_loaded"] > 0
        stats = service.stats()
        assert stats["spills"] >= 1
        assert stats["rehydrations"] == 1
        assert stats["cache_dir"] == str(tmp_path)

    def test_no_cache_dir_means_no_spill(self):
        service = AnalysisService(capacity=1)
        service.session("auction").analyze(ATTR_DEP_FK)
        service.session("smallbank").analyze(ATTR_DEP_FK)
        rebuilt = service.session("auction")
        assert rebuilt.cache_info()["blocks_loaded"] == 0
        stats = service.stats()
        assert stats["spills"] == 0 and stats["rehydrations"] == 0
        assert stats["cache_dir"] is None

    def test_stale_spill_artifact_is_ignored(self, tmp_path):
        service = AnalysisService(capacity=1, cache_dir=tmp_path)
        service.session("auction")
        fingerprint = next(iter(service.sessions()))
        service.session("smallbank")  # evict + spill
        (tmp_path / f"{fingerprint}.json").write_text("{not json")
        again = service.session("auction")
        assert again.cache_info()["blocks_loaded"] == 0
        assert service.stats()["rehydrations"] == 0


class TestCellJobs:
    """Satellite: GridSpec cell-level fan-out."""

    def test_parallel_grid_payload_identical_to_serial(self):
        def stripped(result):
            return [
                {
                    key: value
                    for key, value in cell.to_dict().items()
                    if key not in ("seconds", "mean_seconds")
                }
                for cell in result.cells
            ]

        serial_service = AnalysisService()
        parallel_service = AnalysisService()
        spec = dict(
            workloads=("smallbank", "auction", "auction(2)"),
            task="subsets",
            include_verdicts=True,
        )
        serial = serial_service.grid(GridSpec(**spec))
        parallel = parallel_service.grid(GridSpec(**spec, cell_jobs=4))
        assert stripped(serial) == stripped(parallel)
        assert [c.workload for c in parallel.cells] == [c.workload for c in serial.cells]

    def test_cell_jobs_validation(self):
        with pytest.raises(ProgramError, match="cell_jobs"):
            GridSpec(workloads=("auction",), cell_jobs=0)

    def test_cell_jobs_through_the_request_layer(self):
        service = AnalysisService()
        payload = service.handle(
            "grid",
            {
                "workloads": ["auction"],
                "settings": ["attr dep"],
                "cell_jobs": 2,
            },
        )
        assert payload["cells"][0]["workload"] == "Auction"

    def test_experiment_runners_accept_cell_jobs(self):
        from repro.experiments.figure6 import run_figure6
        from repro.experiments.table2 import run_table2

        service = AnalysisService()
        table = run_table2(service=service, cell_jobs=4)
        assert run_table2(service=service).rows == table.rows
        figure = run_figure6(service, cell_jobs=4)
        assert all(cell.matches_paper for cell in figure.cells)


# ---------------------------------------------------------------------------
# PR 6: the watch endpoint, healthz, SIGTERM shutdown
# ---------------------------------------------------------------------------

class TestWatchRequests:
    def test_watch_payload_matches_monitor_canonically(self):
        from repro.churn import Monitor
        from repro.churn.monitor import ChurnTrace

        service = AnalysisService()
        payload = service.handle(
            "watch", {"workload": "smallbank", "steps": 6, "seed": 3,
                      "oracle_every": 3}
        )
        direct = Monitor("smallbank", seed=3).run(6, oracle_every=3)
        # Wall-clock fields differ between runs; everything else is equal.
        assert (
            ChurnTrace.from_dict(payload).canonical_json()
            == direct.canonical_json()
        )

    def test_watch_records_counters(self):
        service = AnalysisService()
        service.handle(
            "watch", {"workload": "smallbank", "steps": 4, "oracle_every": 2}
        )
        service.handle("watch", {"workload": "smallbank", "steps": 3})
        stats = service.stats()
        assert stats["watch"] == {
            "runs": 2,
            "steps": 7,
            "oracle_checks": 2,
            "oracle_mismatches": 0,
        }

    def test_watch_does_not_mutate_the_pooled_session(self):
        service = AnalysisService()
        before = service.session("smallbank").program_names
        service.handle("watch", {"workload": "smallbank", "steps": 10, "seed": 1})
        pooled = service.session("smallbank")
        assert pooled.program_names == before
        # The pool still holds exactly the un-churned fingerprint.
        assert len(service.sessions()) == 1

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({}, "missing required field"),
            ({"workload": "smallbank", "steps": 0}, "steps"),
            ({"workload": "smallbank", "steps": 10_001}, "steps"),
            ({"workload": "smallbank", "oracle_every": -1}, "oracle_every"),
            ({"workload": "smallbank", "seed": "x"}, "integer"),
            ({"workload": "smallbank", "junk": 1}, "unknown field"),
        ],
    )
    def test_watch_validation(self, body, fragment):
        service = AnalysisService()
        with pytest.raises(ServiceError, match=fragment):
            service.handle("watch", body)

    def test_http_watch_matches_cli_watch(self, http_server, capsys):
        from repro.churn.monitor import ChurnTrace

        args = ["watch", "smallbank", "--steps", "5", "--seed", "11",
                "--oracle-every", "5", "--json"]
        assert cli_main(args) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        status, body = _post(
            http_server,
            "/v1/watch",
            {"workload": "smallbank", "steps": 5, "seed": 11, "oracle_every": 5},
        )
        assert status == 200
        http_payload = json.loads(body)
        # Same dispatch, same shape; wall-clock timings differ run to run,
        # so parity is at the canonical (timing-stripped) level.
        assert (
            ChurnTrace.from_dict(http_payload).canonical_json()
            == ChurnTrace.from_dict(cli_payload).canonical_json()
        )

    def test_cli_watch_human_output(self, capsys):
        assert cli_main(["watch", "smallbank", "--steps", "3", "--seed", "2",
                         "--oracle-every", "3"]) == 0
        out = capsys.readouterr().out
        assert "watched 3 steps" in out
        assert "oracle: ok" in out


class TestHealthz:
    def test_healthz_shape(self):
        from repro import __version__

        service = AnalysisService(capacity=3)
        probe = service.healthz()
        assert probe["status"] == "ok"
        assert probe["version"] == __version__
        assert probe["uptime_seconds"] >= 0
        assert probe["capacity"] == 3
        assert probe["sessions_warm"] == 0
        assert probe["watch_runs"] == 0
        service.session("smallbank")
        assert service.healthz()["sessions_warm"] == 1

    def test_healthz_endpoint(self, http_server):
        status, body = _get(http_server, "/v1/healthz")
        assert status == 200
        probe = json.loads(body)
        assert probe["status"] == "ok"
        assert probe["capacity"] == 8

    def test_get_unknown_route_lists_both_probes(self, http_server):
        status, body = _get(http_server, "/v1/bogus")
        assert status == 404
        message = json.loads(body)["error"]["message"]
        assert "stats" in message and "healthz" in message


class TestServeShutdown:
    def test_sigterm_shuts_the_server_down_cleanly(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        cache_dir = tmp_path / "spill"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(cache_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening" in line
            # Warm one session through the live server, so shutdown has
            # something to spill.
            port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/analyze",
                data=json.dumps({"workload": "smallbank"}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
            process.send_signal(signal.SIGTERM)
            deadline = time.time() + 10
            while process.poll() is None and time.time() < deadline:
                time.sleep(0.05)
            assert process.poll() == 0, "serve did not exit cleanly on SIGTERM"
            remaining = process.stdout.read()
            assert "spilled 1 warm session(s)" in remaining
            assert list(cache_dir.glob("*.json"))
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigterm_under_load_drains_inflight_and_sheds_excess(self, tmp_path):
        """SIGTERM with a request in flight: the in-flight request drains to
        a clean 200, excess load got a clean 503, the pool spills, exit 0."""
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        env.pop("REPRO_FAULTS", None)  # this test installs its own plan
        cache_dir = tmp_path / "spill"
        stall_plan = json.dumps(
            {
                "seed": 0,
                "rules": [
                    {"site": "handler.stall", "every": 1, "times": 1,
                     "delay_seconds": 2.0}
                ],
            }
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(cache_dir), "--max-inflight", "1",
             "--fault-plan", stall_plan],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening" in line
            port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])

            def post():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/analyze",
                    data=json.dumps({"workload": "smallbank"}).encode(),
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(request, timeout=15) as response:
                        return response.status, json.loads(response.read())
                except urllib.error.HTTPError as error:
                    return error.code, json.loads(error.read())

            results: dict[str, tuple] = {}
            stalled = threading.Thread(
                target=lambda: results.__setitem__("inflight", post())
            )
            stalled.start()  # stalls 2s inside the handler, holding the slot
            time.sleep(0.5)
            results["shed"] = post()  # gate full: must shed immediately
            process.send_signal(signal.SIGTERM)  # in-flight request pending
            stalled.join(timeout=15)
            deadline = time.time() + 15
            while process.poll() is None and time.time() < deadline:
                time.sleep(0.05)
            assert process.poll() == 0, "serve did not exit cleanly on SIGTERM"
            status, payload = results["inflight"]
            assert status == 200 and "robust" in payload
            status, payload = results["shed"]
            assert status == 503
            assert payload["error"]["type"] == "overloaded"
            remaining = process.stdout.read()
            assert "spilled 1 warm session(s)" in remaining
            assert list(cache_dir.glob("*.json"))
        finally:
            if process.poll() is None:
                process.kill()


# ---------------------------------------------------------------------------
# the cross-session block store in the service
# ---------------------------------------------------------------------------

class TestServiceBlockStore:
    def test_stats_surface_store_counters(self):
        service = AnalysisService()
        service.handle("analyze", {"workload": "smallbank"})
        store = service.stats()["store"]
        assert store is not None
        for key in ("shared_hits", "evictions", "bytes", "unique_blocks",
                    "publishes", "budget_bytes"):
            assert key in store
        assert store["publishes"] > 0
        json.dumps(service.stats())  # still JSON-serializable as-is

    def test_zero_budget_disables_the_store(self):
        service = AnalysisService(block_budget=0)
        service.handle("analyze", {"workload": "smallbank"})
        assert service.block_store is None
        assert service.stats()["store"] is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ProgramError):
            AnalysisService(block_budget=-1)

    def test_pooled_sessions_share_blocks_across_workloads(self):
        """Two pool entries over the same schema adopt each other's blocks
        (the cross-tenant case the bench gates on), with payloads identical
        to a store-disabled service."""
        template = """\
WORKLOAD Tenant
TABLE Account (account_id*, balance)
PROGRAM Deposit
UPDATE Account SET balance = balance + :n WHERE account_id = :a;
COMMIT;
END
PROGRAM Audit
{audit}
COMMIT;
END
"""
        tenant_a = template.format(
            audit="SELECT account_id, balance FROM Account WHERE balance < 0;"
        )
        tenant_b = template.format(
            audit="SELECT account_id FROM Account WHERE balance < 0;"
        )
        shared = AnalysisService()
        unshared = AnalysisService(block_budget=0)
        payloads = [
            service.handle("analyze", {"workload": source})
            for service in (shared, unshared)
            for source in (tenant_a, tenant_b)
        ]
        assert payloads[:2] == payloads[2:]
        assert shared.block_store.info()["shared_hits"] > 0
        assert unshared.stats()["store"] is None


# ---------------------------------------------------------------------------
# the multi-process frontend: repro serve --workers N
# ---------------------------------------------------------------------------

class TestServeWorkers:
    def test_workers_flag_validation(self, capsys):
        assert cli_main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert cli_main(["serve", "--block-budget", "-1"]) == 2
        assert "--block-budget" in capsys.readouterr().err

    def test_sigterm_under_load_drains_every_worker_to_exit_zero(self, tmp_path):
        """SIGTERM to the parent while a request stalls in a worker: the
        in-flight request drains to 200, every worker spills and exits 0,
        and the parent's exit code is 0."""
        import os
        import signal
        import subprocess
        import sys
        import time

        pytest.importorskip("socket")
        import socket as socket_module

        if not hasattr(socket_module, "SO_REUSEPORT"):
            pytest.skip("platform lacks SO_REUSEPORT")

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        env.pop("REPRO_FAULTS", None)
        cache_dir = tmp_path / "spill"
        stall_plan = json.dumps(
            {
                "seed": 0,
                "rules": [
                    {"site": "handler.stall", "every": 1, "times": 1,
                     "delay_seconds": 2.0}
                ],
            }
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(cache_dir),
             "--fault-plan", stall_plan],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening" in line
            assert "2/2 worker(s)" in line
            port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])

            def post():
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/analyze",
                    data=json.dumps({"workload": "smallbank"}).encode(),
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(request, timeout=20) as response:
                        return response.status, json.loads(response.read())
                except urllib.error.HTTPError as error:
                    return error.code, json.loads(error.read())

            results: dict[str, tuple] = {}
            stalled = threading.Thread(
                target=lambda: results.__setitem__("inflight", post())
            )
            stalled.start()  # stalls 2s inside whichever worker accepted it
            time.sleep(0.5)
            process.send_signal(signal.SIGTERM)  # request still in flight
            stalled.join(timeout=20)
            deadline = time.time() + 20
            while process.poll() is None and time.time() < deadline:
                time.sleep(0.05)
            assert process.poll() == 0, "workers did not drain to exit 0"
            status, payload = results["inflight"]
            assert status == 200 and "robust" in payload
            remaining = process.stdout.read()
            assert "spilled 1 warm session(s)" in remaining
            assert list(cache_dir.glob("*.json"))
            assert not list(cache_dir.glob("*.tmp")), "atomic spill left a tmp"
        finally:
            if process.poll() is None:
                process.kill()

    def test_serve_workers_requires_at_least_two(self):
        from repro.service.workers import serve_workers

        with pytest.raises(ValueError, match=">= 2"):
            serve_workers(1, "127.0.0.1", 0, AnalysisService)
