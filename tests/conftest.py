"""Shared fixtures: small schemas and programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.btp.program import BTP, FKConstraint, seq
from repro.btp.statement import Statement
from repro.schema import ForeignKey, Relation, Schema
from repro.workloads import auction, smallbank, tpcc


@pytest.fixture(scope="session")
def pair_schema() -> Schema:
    """Two relations linked by one foreign key, three attributes each."""
    parent = Relation("Parent", ["pk", "a", "b"], key=["pk"])
    child = Relation("Child", ["ck", "parent", "x"], key=["ck"])
    fk = ForeignKey("fp", "Child", "Parent", {"parent": "pk"})
    return Schema([parent, child], [fk])


@pytest.fixture(scope="session")
def single_schema() -> Schema:
    """One relation R(k, v, w) with key k."""
    return Schema([Relation("R", ["k", "v", "w"], key=["k"])])


@pytest.fixture(scope="session")
def smallbank_workload():
    return smallbank()


@pytest.fixture(scope="session")
def tpcc_workload():
    return tpcc()


@pytest.fixture(scope="session")
def auction_workload():
    return auction()


def make_reader(schema: Schema, name: str = "Reader") -> BTP:
    """A program reading R.v by key."""
    r = schema.relation("R")
    return BTP(name, seq(Statement.key_select("r1", r, reads=["v"])))


def make_writer(schema: Schema, name: str = "Writer") -> BTP:
    """A program updating R.v by key."""
    r = schema.relation("R")
    return BTP(name, seq(Statement.key_update("w1", r, reads=["v"], writes=["v"])))


def make_read_then_write(schema: Schema, name: str = "ReadWrite") -> BTP:
    """A program that key-reads R.v and later key-updates R.w."""
    r = schema.relation("R")
    return BTP(
        name,
        seq(
            Statement.key_select("q1", r, reads=["v"]),
            Statement.key_update("q2", r, reads=[], writes=["w"]),
        ),
    )


@pytest.fixture(scope="session")
def child_program(pair_schema: Schema) -> BTP:
    """Writes the parent, then reads the child — FK-protected read."""
    parent = pair_schema.relation("Parent")
    child = pair_schema.relation("Child")
    return BTP(
        "ChildReader",
        seq(
            Statement.key_update("p1", parent, reads=["a"], writes=["a"]),
            Statement.key_select("c1", child, reads=["x"]),
        ),
        constraints=[FKConstraint("fp", source="c1", target="p1")],
    )


@pytest.fixture(scope="session")
def child_writer(pair_schema: Schema) -> BTP:
    """Writes the parent, then writes the child — FK-protected write."""
    parent = pair_schema.relation("Parent")
    child = pair_schema.relation("Child")
    return BTP(
        "ChildWriter",
        seq(
            Statement.key_update("p2", parent, reads=["a"], writes=["a"]),
            Statement.key_update("c2", child, reads=[], writes=["x"]),
        ),
        constraints=[FKConstraint("fp", source="c2", target="p2")],
    )
