"""Tests for repro.btp.program: the BTP AST and FK annotations."""

import pytest

from repro.btp.program import (
    BTP,
    Choice,
    FKConstraint,
    Loop,
    Opt,
    Seq,
    Stmt,
    choice,
    loop,
    optional,
    seq,
)
from repro.btp.statement import Statement
from repro.errors import ProgramError
from repro.schema import ForeignKey, Relation, Schema

R = Relation("R", ["k", "v"], key=["k"])
S = Relation("S", ["k", "r_ref"], key=["k"])
SCHEMA = Schema([R, S], [ForeignKey("f", "S", "R", {"r_ref": "k"})])


def stmt(name: str, relation=R) -> Statement:
    return Statement.key_select(name, relation, reads=["v" if relation is R else "r_ref"])


class TestBuilders:
    def test_seq_wraps_statements(self):
        node = seq(stmt("a"), stmt("b"))
        assert isinstance(node, Seq)
        assert [s.name for s in node.statements()] == ["a", "b"]

    def test_seq_single_part_unwrapped(self):
        node = seq(stmt("a"))
        assert isinstance(node, Stmt)

    def test_seq_empty_rejected(self):
        with pytest.raises(ProgramError):
            seq()

    def test_choice(self):
        node = choice(stmt("a"), stmt("b"))
        assert isinstance(node, Choice)
        assert [s.name for s in node.statements()] == ["a", "b"]

    def test_optional(self):
        node = optional(stmt("a"))
        assert isinstance(node, Opt)

    def test_loop(self):
        node = loop(seq(stmt("a"), stmt("b")))
        assert isinstance(node, Loop)
        assert [s.name for s in node.statements()] == ["a", "b"]

    def test_nested_structure_statement_order(self):
        node = seq(stmt("a"), choice(stmt("b"), stmt("c")), loop(stmt("d")))
        assert [s.name for s in node.statements()] == ["a", "b", "c", "d"]

    def test_non_node_rejected(self):
        with pytest.raises(ProgramError):
            seq("not a statement")

    def test_str_rendering(self):
        node = seq(stmt("a"), optional(stmt("b")), loop(stmt("c")))
        text = str(node)
        assert "a" in text and "(b | ε)" in text and "loop(c)" in text


class TestBTP:
    def test_statement_names_must_be_unique(self):
        with pytest.raises(ProgramError):
            BTP("P", seq(stmt("a"), stmt("a")))

    def test_statements_accessors(self):
        program = BTP("P", seq(stmt("a"), stmt("b")))
        assert [s.name for s in program.statements()] == ["a", "b"]
        assert set(program.statements_by_name()) == {"a", "b"}

    def test_is_linear(self):
        assert BTP("P", seq(stmt("a"), stmt("b"))).is_linear
        assert not BTP("P", optional(stmt("a"))).is_linear
        assert not BTP("P", loop(stmt("a"))).is_linear
        assert not BTP("P", choice(stmt("a"), stmt("b"))).is_linear

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            BTP("", stmt("a"))

    def test_constraint_referencing_unknown_statement_rejected(self):
        with pytest.raises(ProgramError):
            BTP("P", stmt("a"), constraints=[FKConstraint("f", "nope", "a")])

    def test_constraint_target_must_be_key_based(self):
        pred = Statement.pred_select("p", R, predicate=["v"], reads=["v"])
        src = stmt("s", S)
        with pytest.raises(ProgramError):
            BTP("P", seq(src, pred), constraints=[FKConstraint("f", "s", "p")])

    def test_constraint_on_insert_target_allowed(self):
        target = Statement.insert("ins", R)
        source = stmt("s", S)
        program = BTP("P", seq(target, source), constraints=[FKConstraint("f", "s", "ins")])
        assert program.constraints[0].target == "ins"

    def test_validate_against_checks_fk_endpoints(self):
        # Source must be over dom(f) = S; here it is over R.
        bad = BTP(
            "P",
            seq(stmt("a"), stmt("b")),
            constraints=[FKConstraint("f", source="a", target="b")],
        )
        with pytest.raises(ProgramError):
            bad.validate_against(SCHEMA)

    def test_validate_against_accepts_good_program(self):
        program = BTP(
            "P",
            seq(stmt("r1"), stmt("s1", S)),
            constraints=[FKConstraint("f", source="s1", target="r1")],
        )
        program.validate_against(SCHEMA)

    def test_widened_program(self):
        program = BTP("P", seq(stmt("a"), stmt("b")))
        wide = program.widened(SCHEMA)
        for statement in wide.statements():
            assert statement.read_set == R.attribute_set
        assert wide.name == "P"

    def test_widened_preserves_structure(self):
        program = BTP("P", seq(stmt("a"), optional(loop(choice(stmt("b"), stmt("c"))))))
        wide = program.widened(SCHEMA)
        assert str(wide.root) == str(program.root)

    def test_str(self):
        program = BTP("P", seq(stmt("a"), stmt("b")))
        assert str(program) == "P := a; b"


class TestEnclosingLoops:
    def test_statement_outside_loop_has_no_loops(self):
        node = seq(stmt("a"), loop(stmt("b")))
        loops = node.enclosing_loops()
        assert loops["a"] == ()
        assert len(loops["b"]) == 1

    def test_nested_loops(self):
        node = loop(seq(stmt("a"), loop(stmt("b"))))
        loops = node.enclosing_loops()
        assert len(loops["a"]) == 1
        assert len(loops["b"]) == 2
