"""Tests for the SQL parser (AST construction)."""

import pytest

from repro.errors import SqlError
from repro.sqlfront.ast import (
    And,
    AssignStmt,
    AttrRef,
    BinOp,
    CommitStmt,
    Comparison,
    DeleteStmt,
    IfStmt,
    InsertStmt,
    Literal,
    Not,
    Or,
    ParamRef,
    RepeatStmt,
    SelectStmt,
    UpdateStmt,
    data_statements,
)
from repro.sqlfront.parser import parse_sql


def single(text):
    program = parse_sql(text)
    assert len(program.body) == 1
    return program.body[0]


class TestSelect:
    def test_basic(self):
        stmt = single("SELECT a, b FROM R WHERE k = :x;")
        assert isinstance(stmt, SelectStmt)
        assert stmt.relation == "R"
        assert stmt.select_attributes() == frozenset({"a", "b"})

    def test_into_clause(self):
        stmt = single("SELECT a INTO :va FROM R WHERE k = :x;")
        assert stmt.into == ("va",)

    def test_expression_select_list(self):
        stmt = single("SELECT Balance + :a FROM Checking WHERE k = :x;")
        assert stmt.select_attributes() == frozenset({"Balance"})

    def test_qualified_column_strips_alias(self):
        stmt = single("SELECT old.Balance FROM S WHERE k = :x;")
        assert stmt.select_attributes() == frozenset({"Balance"})

    def test_missing_where_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM R;")


class TestUpdate:
    def test_basic(self):
        stmt = single("UPDATE R SET a = a + 1 WHERE k = :x;")
        assert isinstance(stmt, UpdateStmt)
        assert stmt.written_attributes() == frozenset({"a"})
        assert stmt.read_attributes() == frozenset({"a"})

    def test_multiple_assignments(self):
        stmt = single("UPDATE R SET a = :v, b = a - 1 WHERE k = :x;")
        assert stmt.written_attributes() == frozenset({"a", "b"})
        assert stmt.read_attributes() == frozenset({"a"})

    def test_returning(self):
        stmt = single("UPDATE R SET a = 0 WHERE k = :x RETURNING b, c INTO :b, :c;")
        assert stmt.read_attributes() == frozenset({"b", "c"})
        assert stmt.returning_into == ("b", "c")


class TestInsertDelete:
    def test_insert_with_columns(self):
        stmt = single("INSERT INTO R (a, b) VALUES (:x, 1);")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ("a", "b")
        assert len(stmt.values) == 2

    def test_insert_without_columns(self):
        stmt = single("INSERT INTO R VALUES (:x, :y, :z);")
        assert stmt.columns == ()
        assert len(stmt.values) == 3

    def test_delete(self):
        stmt = single("DELETE FROM R WHERE k = :x;")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.relation == "R"


class TestConditions:
    def test_conjunction(self):
        stmt = single("SELECT a FROM R WHERE k = :x AND a > 0;")
        assert isinstance(stmt.where, And)
        assert len(list(stmt.where.conjuncts())) == 2
        assert stmt.where.attributes() == frozenset({"k", "a"})

    def test_disjunction_not_pure(self):
        stmt = single("SELECT a FROM R WHERE k = :x OR a > 0;")
        assert isinstance(stmt.where, Or)
        assert not stmt.where.is_pure_conjunction

    def test_not_condition(self):
        stmt = single("SELECT a FROM R WHERE NOT a = :x;")
        assert isinstance(stmt.where, Not)
        assert not stmt.where.is_pure_conjunction

    def test_pinned_attribute(self):
        comparison = single("SELECT a FROM R WHERE k = :x;").where
        assert comparison.pinned_attribute() == "k"

    def test_reversed_equality_pins(self):
        comparison = single("SELECT a FROM R WHERE :x = k;").where
        assert comparison.pinned_attribute() == "k"

    def test_inequality_pins_nothing(self):
        comparison = single("SELECT a FROM R WHERE k >= :x;").where
        assert comparison.pinned_attribute() is None

    def test_attr_to_attr_equality_pins_nothing(self):
        comparison = single("SELECT a FROM R WHERE k = a;").where
        assert comparison.pinned_attribute() is None

    def test_arithmetic_in_condition(self):
        stmt = single("SELECT a FROM R WHERE b >= :x - 20;")
        assert stmt.where.attributes() == frozenset({"b"})


class TestControlFlow:
    def test_if_then(self):
        program = parse_sql(
            "IF :c < :v THEN UPDATE R SET a = 1 WHERE k = :x; END IF;"
        )
        (stmt,) = program.body
        assert isinstance(stmt, IfStmt)
        assert len(stmt.then_body) == 1 and stmt.else_body == ()
        assert ":c < :v" == stmt.condition_text

    def test_if_else(self):
        program = parse_sql(
            """
            IF <by name> THEN
                SELECT a FROM R WHERE b = :x;
            ELSE
                SELECT a FROM R WHERE k = :x;
            END IF;
            """
        )
        (stmt,) = program.body
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_pseudo_condition(self):
        program = parse_sql("IF <c_credit is BC> THEN COMMIT; END IF;")
        assert "c_credit" in program.body[0].condition_text

    def test_repeat(self):
        program = parse_sql(
            "REPEAT SELECT a FROM R WHERE k = :x; END REPEAT;"
        )
        (stmt,) = program.body
        assert isinstance(stmt, RepeatStmt)
        assert len(stmt.body) == 1

    def test_nested_control_flow(self):
        program = parse_sql(
            """
            REPEAT
                IF :z THEN DELETE FROM R WHERE k = :x; END IF;
            END REPEAT;
            """
        )
        (outer,) = program.body
        assert isinstance(outer.body[0], IfStmt)

    def test_assignment_is_raw(self):
        program = parse_sql(":v = uniqueLogId();")
        (stmt,) = program.body
        assert isinstance(stmt, AssignStmt)
        assert "uniqueLogId" in stmt.text

    def test_commit(self):
        assert isinstance(single("COMMIT;"), CommitStmt)

    def test_data_statements_recursion(self):
        program = parse_sql(
            """
            SELECT a FROM R WHERE k = :x;
            REPEAT
                UPDATE R SET a = 1 WHERE k = :x;
                IF :c THEN INSERT INTO R (a) VALUES (1); END IF;
            END REPEAT;
            COMMIT;
            """
        )
        assert len(list(data_statements(program.body))) == 3


class TestErrors:
    def test_unclosed_if_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("IF :x THEN COMMIT;")

    def test_unclosed_repeat_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("REPEAT COMMIT;")

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("FROB THE KNOB;")

    def test_missing_comparison_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM R WHERE k;")

    def test_expressions(self):
        stmt = single("SELECT a FROM R WHERE k = (:x + 2) * 3;")
        comparison = stmt.where
        assert isinstance(comparison.right, BinOp)
        assert comparison.pinned_attribute() == "k"
