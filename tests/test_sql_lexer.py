"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlError
from repro.sqlfront.lexer import TokenKind, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select SELECT Select") == [
            (TokenKind.KEYWORD, "SELECT")] * 3

    def test_identifiers_keep_case(self):
        assert kinds("Balance") == [(TokenKind.IDENT, "Balance")]

    def test_params(self):
        assert kinds(":x :long_name") == [
            (TokenKind.PARAM, "x"), (TokenKind.PARAM, "long_name"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14") == [
            (TokenKind.NUMBER, "42"), (TokenKind.NUMBER, "3.14"),
        ]

    def test_strings_both_quotes(self):
        assert kinds("'abc' \"d\"") == [
            (TokenKind.STRING, "abc"), (TokenKind.STRING, "d"),
        ]

    def test_operators_longest_match(self):
        assert [v for _, v in kinds("<= >= <> != < > =")] == [
            "<=", ">=", "<>", "!=", "<", ">", "=",
        ]

    def test_punctuation(self):
        assert [v for _, v in kinds("( ) , ; .")] == ["(", ")", ",", ";", "."]

    def test_comments_skipped(self):
        assert kinds("a -- comment here\nb") == [
            (TokenKind.IDENT, "a"), (TokenKind.IDENT, "b"),
        ]

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_unexpected_character_rejected(self):
        with pytest.raises(SqlError, match="unexpected"):
            tokenize("@")

    def test_error_carries_location(self):
        with pytest.raises(SqlError) as info:
            tokenize("ab\n @")
        assert info.value.line == 2
