"""Tests for the repair advisor subsystem (PR 5).

Covers the edit catalog (``repro.repair.edits``), witness statement
anchors, the block-index detectors (verdict parity with the graph-based
detectors), ``Analyzer.fork``, and the advisor search itself.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import Analyzer
from repro.btp.statement import StatementType
from repro.detection.blockindex import (
    find_type1_violation_blocks,
    find_type2_violation_blocks,
)
from repro.detection.typei import find_type1_violation
from repro.detection.typeii import find_type2_violation
from repro.detection.witness import CycleWitness, WitnessAnchor
from repro.errors import ProgramError
from repro.repair import (
    AddProtectingFK,
    PromotePredicateToKey,
    PromoteReadToUpdate,
    RepairReport,
    SplitProgram,
    apply_repairs,
    ordered_repairs,
    repair_from_dict,
)
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP, ATTR_DEP_FK, TPL_DEP
from repro.workloads import auction, smallbank, tpcc


# ---------------------------------------------------------------------------
# the edit catalog
# ---------------------------------------------------------------------------


class TestEdits:
    def test_promote_predicate_select_to_key(self):
        workload = auction()
        edit = PromotePredicateToKey("FindBids", "q2")
        (repaired,) = edit.apply_to(workload.program("FindBids"), workload.schema)
        q2 = repaired.statements_by_name()["q2"]
        assert q2.stype is StatementType.KEY_SELECT
        assert q2.pread_set is None
        assert q2.read_set == frozenset({"bid"})

    def test_promote_predicate_update_and_delete(self):
        workload = tpcc()
        delivery = workload.program("Delivery")
        (updated,) = PromotePredicateToKey("Delivery", "q5").apply_to(
            delivery, workload.schema
        )
        assert updated.statements_by_name()["q5"].stype is StatementType.KEY_UPDATE
        (deleted,) = PromotePredicateToKey("Delivery", "q1").apply_to(
            delivery, workload.schema
        )
        assert deleted.statements_by_name()["q1"].stype is StatementType.KEY_SELECT

    def test_promote_predicate_rejects_key_based(self):
        workload = auction()
        with pytest.raises(ProgramError, match="not predicate-based"):
            PromotePredicateToKey("PlaceBid", "q4").apply_to(
                workload.program("PlaceBid"), workload.schema
            )

    def test_promote_read_to_update(self):
        workload = auction()
        edit = PromoteReadToUpdate("PlaceBid", "q4")
        (repaired,) = edit.apply_to(workload.program("PlaceBid"), workload.schema)
        q4 = repaired.statements_by_name()["q4"]
        assert q4.stype is StatementType.KEY_UPDATE
        assert q4.write_set == q4.read_set == frozenset({"bid"})

    def test_promote_read_of_nothing_writes_the_key(self):
        workload = smallbank()
        # q1 reads CustomerId (non-empty), so take a synthetic empty read.
        from repro.btp.program import BTP, seq
        from repro.btp.statement import Statement

        account = workload.schema.relation("Account")
        program = BTP("Probe", seq(Statement.key_select("p1", account, reads=[])))
        (repaired,) = PromoteReadToUpdate("Probe", "p1").apply_to(
            program, workload.schema
        )
        assert repaired.statements_by_name()["p1"].write_set == frozenset({"Name"})

    def test_promote_read_rejects_updates(self):
        workload = auction()
        with pytest.raises(ProgramError, match="not a select"):
            PromoteReadToUpdate("PlaceBid", "q5").apply_to(
                workload.program("PlaceBid"), workload.schema
            )

    def test_add_protecting_fk(self):
        workload = tpcc()
        edit = AddProtectingFK(
            "Delivery", fk="f7", source_statement="q7", target_statement="q4"
        )
        # q7 is over Customer = dom(f7)? No: f7 maps Orders -> Customer, so
        # source must be over Orders; build the valid one instead.
        with pytest.raises(ProgramError):
            edit.apply_to(workload.program("Delivery"), workload.schema)
        valid = AddProtectingFK(
            "Delivery", fk="f5", source_statement="q1", target_statement="q4"
        )
        (repaired,) = valid.apply_to(workload.program("Delivery"), workload.schema)
        assert any(
            c.fk == "f5" and c.source == "q1" and c.target == "q4"
            for c in repaired.constraints
        )

    def test_add_protecting_fk_rejects_duplicates(self):
        workload = tpcc()
        edit = AddProtectingFK(
            "Delivery", fk="f5", source_statement="q2", target_statement="q3"
        )
        with pytest.raises(ProgramError, match="already carries"):
            edit.apply_to(workload.program("Delivery"), workload.schema)

    def test_split_program(self):
        workload = smallbank()
        edit = SplitProgram("WriteCheck", after_statement="q14")
        head, tail = edit.apply_to(workload.program("WriteCheck"), workload.schema)
        assert head.name == "WriteCheck.1" and tail.name == "WriteCheck.2"
        assert [s.name for s in head.statements()] == ["q13", "q14"]
        assert [s.name for s in tail.statements()] == ["q15", "q16"]
        # constraints spanning the split (fC: q13 -> q15/q16) are dropped,
        # the in-head one (fS: q13 -> q14) is kept.
        assert [str(c) for c in head.constraints] == ["q14 = fS(q13)"]
        assert tail.constraints == ()

    def test_split_errors(self):
        workload = smallbank()
        write_check = workload.program("WriteCheck")
        with pytest.raises(ProgramError, match="last"):
            SplitProgram("WriteCheck", after_statement="q16").apply_to(
                write_check, workload.schema
            )
        with pytest.raises(ProgramError, match="no statement"):
            SplitProgram("WriteCheck", after_statement="zz").apply_to(
                write_check, workload.schema
            )
        delivery = tpcc().program("Delivery")  # root is a Loop, not a Seq
        with pytest.raises(ProgramError, match="no top-level"):
            SplitProgram("Delivery", after_statement="q1").apply_to(
                delivery, tpcc().schema
            )

    def test_serialization_round_trip(self):
        edits = [
            PromotePredicateToKey("FindBids", "q2"),
            PromoteReadToUpdate("PlaceBid", "q4"),
            AddProtectingFK("Delivery", fk="f5", source_statement="q1", target_statement="q4"),
            SplitProgram("WriteCheck", after_statement="q14"),
        ]
        for edit in edits:
            assert repair_from_dict(edit.to_dict()) == edit

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ProgramError, match="unknown repair kind"):
            repair_from_dict({"kind": "nope", "program": "X"})
        with pytest.raises(ProgramError, match="malformed"):
            repair_from_dict({"kind": "split_program", "program": "X", "zz": 1})

    def test_ordered_repairs_canonical(self):
        promote_key = PromotePredicateToKey("A", "q1")
        promote_upd = PromoteReadToUpdate("A", "q1")
        split = SplitProgram("A", after_statement="q1")
        assert ordered_repairs([split, promote_upd, promote_key]) == (
            promote_key,
            promote_upd,
            split,
        )

    def test_apply_repairs_composes_per_statement(self):
        workload = auction()
        repaired = apply_repairs(
            workload,
            [PromotePredicateToKey("FindBids", "q2"), PromoteReadToUpdate("FindBids", "q2")],
        )
        q2 = repaired.program("FindBids").statements_by_name()["q2"]
        assert q2.stype is StatementType.KEY_UPDATE

    def test_apply_repairs_unknown_program(self):
        with pytest.raises(ProgramError, match="unknown program"):
            apply_repairs(auction(), [PromoteReadToUpdate("Nope", "q1")])

    def test_split_after_statement_edits_rejected(self):
        workload = smallbank()
        with pytest.raises(ProgramError, match="already split"):
            apply_repairs(
                workload,
                [
                    SplitProgram("WriteCheck", after_statement="q14"),
                    SplitProgram("WriteCheck", after_statement="q15"),
                ],
            )


# ---------------------------------------------------------------------------
# witness statement anchors (satellite 1)
# ---------------------------------------------------------------------------


class TestWitnessAnchors:
    def test_witness_carries_aligned_anchors(self):
        report = Analyzer("smallbank").analyze(ATTR_DEP_FK)
        witness = report.witness
        assert witness is not None
        assert len(witness.anchors) == len(witness.edges)
        program_names = set(smallbank().program_names)
        for (edge, anchor) in witness.anchored_edges():
            assert anchor.source_program in program_names
            assert anchor.source_stmt == edge.source_stmt
            assert anchor.source_occurrence == edge.source_pos

    def test_anchor_origins_are_btp_names(self):
        # Auction's unfoldings are PlaceBid#1/#2; anchors must name PlaceBid.
        report = Analyzer("auction").analyze(ATTR_DEP)
        witness = report.witness
        assert witness is not None
        origins = {a.source_program for a in witness.anchors}
        assert origins <= {"FindBids", "PlaceBid"}

    def test_serialization_round_trip_keeps_anchors(self):
        witness = Analyzer("smallbank").analyze(ATTR_DEP_FK).witness
        restored = CycleWitness.from_dict(witness.to_dict())
        assert restored == witness
        assert restored.anchors == witness.anchors

    def test_pre_anchor_payloads_still_load(self):
        witness = Analyzer("smallbank").analyze(ATTR_DEP_FK).witness
        data = witness.to_dict()
        data.pop("anchors")
        restored = CycleWitness.from_dict(data)
        assert restored.anchors == ()
        assert restored.statement_anchors() == ()

    def test_statement_anchors_cover_highlighted_sources(self):
        witness = Analyzer("smallbank").analyze(ATTR_DEP_FK).witness
        anchors = witness.statement_anchors()
        assert anchors
        highlighted_sources = {
            (edge.source_stmt, edge.source_pos) for edge in witness.highlighted
        }
        assert {(stmt, pos) for _, stmt, pos in anchors} == highlighted_sources

    def test_misaligned_anchors_rejected(self):
        witness = Analyzer("smallbank").analyze(ATTR_DEP_FK).witness
        with pytest.raises(ValueError, match="align"):
            CycleWitness(
                edges=witness.edges,
                reason=witness.reason,
                anchors=(WitnessAnchor("P", "q", 0, "P", "q", 0),),
            )


# ---------------------------------------------------------------------------
# block-index detection parity
# ---------------------------------------------------------------------------


class TestBlockIndexDetection:
    @pytest.mark.parametrize("source", ["smallbank", "tpcc", "auction", "auction(3)"])
    def test_verdict_parity_with_graph_detectors(self, source):
        rng = random.Random(source)
        session = Analyzer(source)
        for settings in ALL_SETTINGS:
            graph = session.summary_graph(settings)
            store = session.edge_block_store(settings)
            names = list(graph.program_names)
            subsets = [names] + [
                rng.sample(names, rng.randint(1, len(names))) for _ in range(8)
            ]
            for subset in subsets:
                restricted = store.graph(subset)
                assert (find_type2_violation(restricted) is None) == (
                    find_type2_violation_blocks(store, subset) is None
                )
                assert (find_type1_violation(restricted) is None) == (
                    find_type1_violation_blocks(store, subset) is None
                )

    def test_block_witness_is_valid_and_anchored(self):
        session = Analyzer("tpcc")
        session.summary_graph(ATTR_DEP_FK)
        store = session.edge_block_store(ATTR_DEP_FK)
        names = [ltp.name for ltp in session.unfolded()]
        witness = find_type2_violation_blocks(store, names)
        assert witness is not None  # validated as a closed walk on build
        assert len(witness.anchors) == len(witness.edges)
        assert len(witness.highlighted) == 3

    def test_reach_cache_is_reused(self):
        session = Analyzer("smallbank")
        session.summary_graph(ATTR_DEP_FK)
        store = session.edge_block_store(ATTR_DEP_FK)
        names = [ltp.name for ltp in session.unfolded()]
        cache: dict = {}
        first = find_type2_violation_blocks(store, names, reach_cache=cache)
        assert len(cache) == 1
        second = find_type2_violation_blocks(store, names, reach_cache=cache)
        assert len(cache) == 1
        assert first == second


# ---------------------------------------------------------------------------
# Analyzer.fork
# ---------------------------------------------------------------------------


class TestFork:
    def test_fork_shares_blocks_without_recomputation(self):
        session = Analyzer("auction")
        session.summary_graph(ATTR_DEP_FK)
        parent_blocks = session.cache_info()["edge_blocks"]
        fork = session.fork()
        info = fork.cache_info()
        assert info["blocks_loaded"] == parent_blocks
        assert info["block_computations"] == 0
        fork.analyze(ATTR_DEP_FK)
        assert fork.cache_info()["block_computations"] == 0

    def test_fork_edits_do_not_touch_parent(self):
        session = Analyzer("auction")
        session.analyze(ATTR_DEP_FK)
        before = session.cache_info()
        fork = session.fork()
        fork.remove_program("PlaceBid")
        assert session.program_names == ("FindBids", "PlaceBid")
        assert session.cache_info() == before

    def test_fork_verification_recomputes_only_touched_blocks(self):
        session = Analyzer("auction(3)")
        session.summary_graph(ATTR_DEP)
        fork = session.fork()
        workload = fork.workload
        (replacement,) = PromoteReadToUpdate("PlaceBid1", "q4").apply_to(
            workload.program("PlaceBid1"), workload.schema
        )
        fork.replace_program(replacement, name="PlaceBid1")
        fork.summary_graph(ATTR_DEP)
        total = len(fork.unfolded()) ** 2
        recomputed = fork.cache_info()["block_computations"]
        # PlaceBid1 has two unfoldings of the 9 LTPs: N² − (N−2)² blocks.
        ltp_count = len(fork.unfolded())
        assert recomputed == ltp_count**2 - (ltp_count - 2) ** 2
        assert recomputed < total

    def test_seed_from_rejects_foreign_settings(self):
        from repro.summary.pairwise import EdgeBlockStore

        workload = auction()
        store_a = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        store_b = EdgeBlockStore(workload.schema, ATTR_DEP)
        with pytest.raises(ProgramError, match="same schema and settings"):
            store_b.seed_from(store_a)


# ---------------------------------------------------------------------------
# the advisor
# ---------------------------------------------------------------------------


class TestAdvisor:
    def test_auction_one_edit_repair(self):
        report = Analyzer("auction").advise(ATTR_DEP)
        assert not report.already_robust and report.repaired
        best = report.best
        assert best.size == 1
        assert best.blocks_recomputed < best.blocks_total
        repaired = apply_repairs(auction(), best.edits)
        assert Analyzer(repaired).is_robust(ATTR_DEP)

    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_smallbank_repaired_within_three_edits(self, settings):
        report = Analyzer("smallbank").advise(settings, max_edits=3)
        assert report.repaired and not report.already_robust
        for repair in report.repairs:
            assert repair.size <= 3
            repaired = apply_repairs(smallbank(), repair.edits)
            assert Analyzer(repaired).is_robust(settings)

    def test_already_robust(self):
        report = Analyzer("auction").advise(ATTR_DEP_FK)
        assert report.already_robust and report.repaired
        assert report.repairs == () and report.witness is None

    def test_budget_exhausted_reports_witness(self):
        report = Analyzer("tpcc").advise(ATTR_DEP_FK, max_edits=3)
        assert not report.repaired
        assert report.exhausted
        assert report.witness is not None
        assert "no repair within 3" in report.describe()

    def test_tpcc_repairable_with_budget(self):
        report = Analyzer("tpcc").advise(ATTR_DEP_FK, max_edits=8, max_states=1000)
        assert report.repaired
        repaired = apply_repairs(tpcc(), report.best.edits)
        assert Analyzer(repaired).is_robust(ATTR_DEP_FK)

    def test_type1_method(self):
        report = Analyzer("auction").advise(TPL_DEP, method="type-I", max_edits=2)
        assert report.method == "type-I"
        if report.repairs:
            repaired = apply_repairs(auction(), report.best.edits)
            assert Analyzer(repaired).is_robust(TPL_DEP, method="type-I")

    def test_unknown_method_rejected(self):
        with pytest.raises(ProgramError, match="unknown detection method"):
            Analyzer("auction").advise(ATTR_DEP, method="nope")
        with pytest.raises(ProgramError, match="max_edits"):
            Analyzer("auction").advise(ATTR_DEP, max_edits=0)

    def test_deterministic(self):
        first = Analyzer("smallbank").advise(ATTR_DEP_FK).to_dict()
        second = Analyzer("smallbank").advise(ATTR_DEP_FK).to_dict()
        assert first == second

    def test_report_round_trip(self):
        report = Analyzer("smallbank").advise(ATTR_DEP_FK)
        restored = RepairReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert restored.repairs == report.repairs

    def test_advise_leaves_session_usable_and_unmutated(self):
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        before = session.cache_info()
        names = session.program_names
        session.advise(ATTR_DEP_FK)
        assert session.program_names == names
        assert session.cache_info() == before

    def test_incremental_verification_counts(self):
        report = Analyzer("smallbank").advise(ATTR_DEP_FK)
        for repair in report.repairs:
            assert 0 < repair.blocks_recomputed < repair.blocks_total


# ---------------------------------------------------------------------------
# the repairs experiment
# ---------------------------------------------------------------------------


class TestRepairsExperiment:
    def test_smallbank_and_auction_tables(self):
        from repro.experiments.repairs import run_repairs

        result = run_repairs()
        assert len(result.cells) == 8
        for cell in result.cells:
            assert cell.repaired, f"{cell.benchmark} / {cell.settings_label}"
            if cell.edits:
                assert cell.repaired_verdicts[cell.settings_label] is True
        text = result.to_text()
        assert "SmallBank" in text and "Auction" in text
        assert "MISMATCH" not in text
