"""Tests for the pairwise edge-block engine behind Algorithm 1.

The load-bearing property is *parity*: for every subset of a workload's
programs, the graph assembled from cached pairwise edge blocks must equal —
edge for edge, in sequence — the output of the monolithic
``construct_summary_graph`` loop over the same LTPs, and the result must
not depend on the order blocks were computed in.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.btp.unfold import unfold
from repro.errors import ProgramError
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.pairwise import EdgeBlockStore, pair_edges, pair_edges_reference
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, TPL_DEP
from repro.workloads import auction_n, smallbank, tpcc

WORKLOADS = {
    "smallbank": smallbank,
    "tpcc": tpcc,
    "auction5": lambda: auction_n(5),
}


def _ltps(workload):
    return unfold(workload.programs, 2)


class TestPairEdges:
    def test_concatenated_pairs_equal_monolithic(self, auction_workload):
        ltps = _ltps(auction_workload)
        schema = auction_workload.schema
        for settings in ALL_SETTINGS:
            monolithic = construct_summary_graph(ltps, schema, settings)
            concatenated = [
                edge
                for ltp_i in ltps
                for ltp_j in ltps
                for edge in pair_edges(ltp_i, ltp_j, schema, settings)
            ]
            assert tuple(concatenated) == monolithic.edges

    def test_self_pair_matches_single_program_graph(self, smallbank_workload):
        (ltp,) = unfold([smallbank_workload.programs[0]], 2)
        graph = construct_summary_graph([ltp], smallbank_workload.schema, ATTR_DEP_FK)
        block = pair_edges(ltp, ltp, smallbank_workload.schema, ATTR_DEP_FK)
        assert block == graph.edges

    def test_block_depends_only_on_the_two_programs(self, smallbank_workload):
        """pair_edges over programs picked from different contexts agrees."""
        schema = smallbank_workload.schema
        all_ltps = _ltps(smallbank_workload)
        pair_in_isolation = unfold(smallbank_workload.programs[:2], 2)
        by_name = {ltp.name: ltp for ltp in all_ltps}
        for isolated in pair_in_isolation:
            from_full = by_name[isolated.name]
            assert pair_edges(isolated, isolated, schema, ATTR_DEP_FK) == pair_edges(
                from_full, from_full, schema, ATTR_DEP_FK
            )


class TestStoreParity:
    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_full_set_parity(self, workload_name, settings):
        workload = WORKLOADS[workload_name]()
        ltps = _ltps(workload)
        monolithic = construct_summary_graph(ltps, workload.schema, settings)
        store = EdgeBlockStore(workload.schema, settings)
        store.register(ltps)
        assembled = store.graph([ltp.name for ltp in ltps])
        assert assembled.edges == monolithic.edges
        assert assembled.program_names == monolithic.program_names
        # ... and both equal the frozenset reference path concatenated in
        # ordered-pair order (construct_summary_graph itself runs on the
        # compiled kernel now, so the reference is the independent baseline)
        reference = tuple(
            edge
            for ltp_i in ltps
            for ltp_j in ltps
            for edge in pair_edges_reference(ltp_i, ltp_j, workload.schema, settings)
        )
        assert assembled.edges == reference

    @pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
    def test_subset_parity_every_pair(self, workload_name):
        """SuG(𝒫') from blocks == monolithic Algorithm 1 over 𝒫' directly."""
        workload = WORKLOADS[workload_name]()
        store = EdgeBlockStore(workload.schema, ATTR_DEP_FK)
        store.register(_ltps(workload))
        programs = workload.programs
        for i in range(min(len(programs), 4)):
            for j in range(i, min(len(programs), 4)):
                subset = [programs[i]] if i == j else [programs[i], programs[j]]
                subset_ltps = unfold(subset, 2)
                monolithic = construct_summary_graph(
                    subset_ltps, workload.schema, ATTR_DEP_FK
                )
                assembled = store.graph([ltp.name for ltp in subset_ltps])
                assert assembled.edges == monolithic.edges

    @hyp_settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_subsets_order_insensitive(self, data):
        """Property: for random subsets, assembled blocks equal the
        monolithic output, however the assembly order permutes."""
        workload = WORKLOADS[data.draw(st.sampled_from(sorted(WORKLOADS)))]()
        programs = list(workload.programs)
        subset = data.draw(
            st.lists(
                st.sampled_from(programs), min_size=1, max_size=4, unique_by=id
            )
        )
        settings = data.draw(st.sampled_from(ALL_SETTINGS))
        subset_ltps = unfold(subset, 2)
        monolithic = construct_summary_graph(subset_ltps, workload.schema, settings)

        store = EdgeBlockStore(workload.schema, settings)
        store.register(subset_ltps)
        names = [ltp.name for ltp in subset_ltps]
        # warm the cache in a shuffled order: cached blocks must not depend
        # on the order they were first computed in
        shuffled = data.draw(st.permutations(names))
        store.graph(shuffled)
        assembled = store.graph(names)
        assert assembled.edges == monolithic.edges
        assert set(store.graph(shuffled).edges) == set(monolithic.edges)

    def test_parallel_jobs_parity(self, tpcc_workload):
        ltps = _ltps(tpcc_workload)
        serial = construct_summary_graph(ltps, tpcc_workload.schema, ATTR_DEP_FK)
        parallel = construct_summary_graph(
            ltps, tpcc_workload.schema, ATTR_DEP_FK, jobs=4
        )
        assert parallel.edges == serial.edges


class TestStoreBehaviour:
    def test_blocks_computed_once(self, auction_workload):
        store = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        ltps = _ltps(auction_workload)
        store.register(ltps)
        store.graph()
        computed = store.cache_info()["computed"]
        assert computed == len(ltps) ** 2
        store.graph()
        assert store.cache_info()["computed"] == computed  # all cache hits

    def test_discard_drops_only_involved_blocks(self, auction_workload):
        store = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        ltps = _ltps(auction_workload)
        store.register(ltps)
        store.graph()
        victim = ltps[0].name
        store.discard([victim])
        assert victim not in store
        survivors = len(ltps) - 1
        assert store.cache_info()["blocks"] == survivors**2
        # re-register and reassemble: only the victim's blocks recompute
        before = store.cache_info()["computed"]
        store.register([ltps[0]])
        full = store.graph([ltp.name for ltp in ltps])
        assert store.cache_info()["computed"] - before == 2 * len(ltps) - 1
        monolithic = construct_summary_graph(
            ltps, auction_workload.schema, ATTR_DEP_FK
        )
        assert full.edges == monolithic.edges

    def test_load_block_counts_as_loaded_not_computed(self, auction_workload):
        warm = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        ltps = _ltps(auction_workload)
        warm.register(ltps)
        warm.graph()
        cold = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        cold.register(ltps)
        for (source, target), edges in warm.blocks().items():
            cold.load_block(source, target, edges)
        graph = cold.graph()
        info = cold.cache_info()
        assert info["computed"] == 0
        assert info["loaded"] == len(ltps) ** 2
        assert graph.edges == warm.graph().edges

    def test_unknown_program_rejected(self, auction_workload):
        store = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        with pytest.raises(ProgramError, match="unknown program"):
            store.block("Nope", "Nope")
        with pytest.raises(ProgramError, match="unknown program"):
            store.graph(["Nope"])

    def test_reregistering_different_program_rejected(self, single_schema):
        from tests.conftest import make_reader, make_writer

        reader = unfold([make_reader(single_schema)], 2)
        impostor = unfold([make_writer(single_schema, name="Reader")], 2)
        store = EdgeBlockStore(single_schema, ATTR_DEP_FK)
        store.register(reader)
        with pytest.raises(ProgramError, match="different program"):
            store.register(impostor)

    def test_duplicate_names_in_graph_rejected(self, auction_workload):
        store = EdgeBlockStore(auction_workload.schema, ATTR_DEP_FK)
        ltps = _ltps(auction_workload)
        store.register(ltps)
        with pytest.raises(ProgramError, match="duplicate"):
            store.graph([ltps[0].name, ltps[0].name])


class TestGraphSerialization:
    def test_graph_round_trip_with_programs(self, smallbank_workload):
        graph = construct_summary_graph(
            _ltps(smallbank_workload), smallbank_workload.schema, ATTR_DEP_FK
        )
        revived = SummaryGraph.from_dict(graph.to_dict(include_programs=True))
        assert revived.edges == graph.edges
        assert revived.program_names == graph.program_names
        assert revived.stats == graph.stats
        # the revived graph is fully functional, not just a shell
        from repro.detection.typeii import is_robust_type2

        assert is_robust_type2(revived) == is_robust_type2(graph)

    def test_graph_round_trip_preserves_statements(self, tpcc_workload):
        graph = construct_summary_graph(
            _ltps(tpcc_workload), tpcc_workload.schema, TPL_DEP
        )
        revived = SummaryGraph.from_dict(graph.to_dict(include_programs=True))
        for original, restored in zip(graph.programs, revived.programs):
            assert original == restored

    def test_from_dict_requires_programs(self, auction_workload):
        graph = construct_summary_graph(
            _ltps(auction_workload), auction_workload.schema, ATTR_DEP_FK
        )
        with pytest.raises(ProgramError, match="include_programs"):
            SummaryGraph.from_dict(graph.to_dict())
