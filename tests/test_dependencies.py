"""Tests for Section 3.4 dependencies and Section 4 cycle classification."""

import pytest

from repro.mvsched.dependencies import Dependency, DependencyKind, dependencies
from repro.mvsched.operations import Operation
from repro.mvsched.schedule import Schedule
from repro.mvsched.serialization import (
    classify_cycle,
    cycle_is_type1,
    cycle_is_type2,
    is_conflict_serializable,
    serialization_graph,
)
from repro.mvsched.transaction import Transaction
from repro.mvsched.tuples import TupleId, Version

T = TupleId("R", 0)
UNBORN = Version.unborn(T)
V0 = Version.visible(T, 0)
V1 = Version.visible(T, 1)
DEAD = Version.dead(T)


def schedule_of(transactions, order, write_version, read_version, vset=None,
                version_order=(UNBORN, V0, V1, DEAD), init=V0):
    return Schedule(
        transactions=tuple(transactions),
        order=tuple(order),
        init_version={T: init},
        write_version=write_version,
        read_version=read_version,
        vset=vset or {},
        version_order={T: tuple(version_order)},
        universe={"R": (T,)},
    )


def kinds(schedule):
    return {(d.kind, d.source.tx, d.target.tx) for d in dependencies(schedule)}


class TestDependencyKinds:
    def test_ww_dependency(self):
        t1 = Transaction(1, [Operation.write(1, 0, T, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.write(2, 0, T, {"v"}), Operation.commit(2, 1)])
        w1, c1 = t1.operations
        w2, c2 = t2.operations
        s = schedule_of(
            [t1, t2], [w1, c1, w2, c2],
            {w1: V1, w2: Version.visible(T, 2)}, {},
            version_order=(UNBORN, V0, V1, Version.visible(T, 2), DEAD),
        )
        assert (DependencyKind.WW, 1, 2) in kinds(s)

    def test_ww_requires_attribute_overlap(self):
        t1 = Transaction(1, [Operation.write(1, 0, T, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.write(2, 0, T, {"w"}), Operation.commit(2, 1)])
        w1, c1 = t1.operations
        w2, c2 = t2.operations
        s = schedule_of(
            [t1, t2], [w1, c1, w2, c2],
            {w1: V1, w2: Version.visible(T, 2)}, {},
            version_order=(UNBORN, V0, V1, Version.visible(T, 2), DEAD),
        )
        assert kinds(s) == set()

    def test_wr_dependency(self):
        t1 = Transaction(1, [Operation.write(1, 0, T, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.read(2, 0, T, {"v"}), Operation.commit(2, 1)])
        w, c1 = t1.operations
        r, c2 = t2.operations
        s = schedule_of([t1, t2], [w, c1, r, c2], {w: V1}, {r: V1})
        assert kinds(s) == {(DependencyKind.WR, 1, 2)}

    def test_rw_antidependency_and_counterflow(self):
        t1 = Transaction(1, [Operation.read(1, 0, T, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.write(2, 0, T, {"v"}), Operation.commit(2, 1)])
        r, c1 = t1.operations
        w, c2 = t2.operations
        # T2 commits before T1: the rw dependency flows against commit order.
        s = schedule_of([t1, t2], [r, w, c2, c1], {w: V1}, {r: V0})
        deps = dependencies(s)
        assert [(d.kind, d.counterflow) for d in deps] == [(DependencyKind.RW, True)]

    def test_pred_wr_dependency_via_insert_needs_no_overlap(self):
        fresh = TupleId("R", 5)
        t1 = Transaction(1, [Operation.insert(1, 0, fresh, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.pred_read(2, 0, "R", {"w"}), Operation.commit(2, 1)])
        i, c1 = t1.operations
        pr, c2 = t2.operations
        vnew = Version.visible(fresh, 0)
        s = Schedule(
            transactions=(t1, t2),
            order=(i, c1, pr, c2),
            init_version={T: V0, fresh: Version.unborn(fresh)},
            write_version={i: vnew},
            read_version={},
            vset={pr: {T: V0, fresh: vnew}},
            version_order={
                T: (UNBORN, V0, DEAD),
                fresh: (Version.unborn(fresh), vnew, Version.dead(fresh)),
            },
            universe={"R": (T, fresh)},
        )
        assert (DependencyKind.PRED_WR, 1, 2) in kinds(s)

    def test_pred_rw_antidependency_phantom_insert(self):
        """The phantom: a predicate read missing a later insert."""
        fresh = TupleId("R", 5)
        t1 = Transaction(1, [Operation.pred_read(1, 0, "R", {"w"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.insert(2, 0, fresh, {"v"}), Operation.commit(2, 1)])
        pr, c1 = t1.operations
        i, c2 = t2.operations
        vnew = Version.visible(fresh, 0)
        s = Schedule(
            transactions=(t1, t2),
            order=(pr, i, c2, c1),
            init_version={T: V0, fresh: Version.unborn(fresh)},
            write_version={i: vnew},
            read_version={},
            vset={pr: {T: V0, fresh: Version.unborn(fresh)}},
            version_order={
                T: (UNBORN, V0, DEAD),
                fresh: (Version.unborn(fresh), vnew, Version.dead(fresh)),
            },
            universe={"R": (T, fresh)},
        )
        deps = dependencies(s)
        assert [(d.kind, d.counterflow) for d in deps] == [(DependencyKind.PRED_RW, True)]

    def test_pred_rw_non_id_write_requires_overlap(self):
        t1 = Transaction(1, [Operation.pred_read(1, 0, "R", {"w"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.write(2, 0, T, {"v"}), Operation.commit(2, 1)])
        pr, c1 = t1.operations
        w, c2 = t2.operations
        s = schedule_of(
            [t1, t2], [pr, w, c2, c1], {w: V1}, {}, vset={pr: {T: V0}},
        )
        assert kinds(s) == set()  # disjoint attributes: no dependency

    def test_same_transaction_operations_never_depend(self):
        t1 = Transaction(
            1,
            [Operation.read(1, 0, T, {"v"}), Operation.write(1, 1, T, {"v"}),
             Operation.commit(1, 2)],
        )
        r, w, c = t1.operations
        s = schedule_of([t1], [r, w, c], {w: V1}, {r: V0})
        assert kinds(s) == set()


class TestCycleClassification:
    def _two_tx_cycle(self):
        """T1 reads then T2 overwrites (counterflow rw), T1 also observes
        T2-independent conflict back: build wr T2->T1 on another tuple."""
        u = TupleId("R", 1)
        u0, u1 = Version.visible(u, 0), Version.visible(u, 1)
        t1 = Transaction(
            1,
            [Operation.read(1, 0, T, {"v"}), Operation.read(1, 1, u, {"v"}),
             Operation.commit(1, 2)],
        )
        t2 = Transaction(
            2,
            [Operation.write(2, 0, T, {"v"}), Operation.write(2, 1, u, {"v"}),
             Operation.commit(2, 2)],
        )
        r_t, r_u, c1 = t1.operations
        w_t, w_u, c2 = t2.operations
        s = Schedule(
            transactions=(t1, t2),
            order=(r_t, w_t, w_u, c2, r_u, c1),
            init_version={T: V0, u: u0},
            write_version={w_t: V1, w_u: u1},
            read_version={r_t: V0, r_u: u1},
            vset={},
            version_order={T: (UNBORN, V0, V1, DEAD),
                           u: (Version.unborn(u), u0, u1, Version.dead(u))},
            universe={"R": (T, u)},
        )
        return s

    def test_nonserializable_cycle_found(self):
        s = self._two_tx_cycle()
        s.validate()
        assert not is_conflict_serializable(s)

    def test_cycle_is_type2_under_mvrc(self):
        from repro.mvsched.mvrc import allowed_under_mvrc
        s = self._two_tx_cycle()
        assert allowed_under_mvrc(s)
        graph = serialization_graph(s)
        cycles = list(graph.cycles())
        assert cycles
        for cycle in cycles:
            assert cycle_is_type1(cycle)
            assert cycle_is_type2(s, cycle)
            assert classify_cycle(s, cycle) == "type-II"

    def test_all_counterflow_cycle_is_not_type2(self):
        s = self._two_tx_cycle()
        graph = serialization_graph(s)
        cycle = next(iter(graph.cycles()))
        fake = [
            Dependency(d.source, d.target, d.kind, True)  # force all counterflow
            for d in cycle
        ]
        assert not cycle_is_type2(s, fake)
        assert classify_cycle(s, fake) == "type-I"

    def test_plain_cycle_classification(self):
        s = self._two_tx_cycle()
        graph = serialization_graph(s)
        cycle = next(iter(graph.cycles()))
        fake = [Dependency(d.source, d.target, d.kind, False) for d in cycle]
        assert classify_cycle(s, fake) == "plain"

    def test_serial_schedule_is_serializable(self):
        t1 = Transaction(1, [Operation.write(1, 0, T, {"v"}), Operation.commit(1, 1)])
        t2 = Transaction(2, [Operation.read(2, 0, T, {"v"}), Operation.commit(2, 1)])
        w, c1 = t1.operations
        r, c2 = t2.operations
        s = schedule_of([t1, t2], [w, c1, r, c2], {w: V1}, {r: V1})
        assert is_conflict_serializable(s)
        assert list(serialization_graph(s).cycles()) == []
