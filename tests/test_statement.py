"""Tests for repro.btp.statement: the seven types and Figure 5 constraints."""

import pytest

from repro.btp.statement import Statement, StatementType
from repro.errors import ProgramError
from repro.schema import Relation

R = Relation("R", ["k", "a", "b"], key=["k"])


class TestConstructors:
    def test_insert_defaults_to_all_attributes(self):
        q = Statement.insert("q", R)
        assert q.stype is StatementType.INSERT
        assert q.write_set == frozenset({"k", "a", "b"})
        assert q.read_set is None and q.pread_set is None

    def test_insert_with_explicit_columns(self):
        q = Statement.insert("q", R, columns=["k", "a"])
        assert q.write_set == frozenset({"k", "a"})

    def test_key_select(self):
        q = Statement.key_select("q", R, reads=["a"])
        assert q.stype is StatementType.KEY_SELECT
        assert q.read_set == frozenset({"a"})
        assert q.write_set is None and q.pread_set is None

    def test_key_select_empty_reads_allowed(self):
        q = Statement.key_select("q", R, reads=[])
        assert q.read_set == frozenset()
        assert q.read_set is not None  # defined-but-empty, not ⊥

    def test_pred_select(self):
        q = Statement.pred_select("q", R, predicate=["a"], reads=["b"])
        assert q.stype is StatementType.PRED_SELECT
        assert q.pread_set == frozenset({"a"})
        assert q.read_set == frozenset({"b"})

    def test_key_update(self):
        q = Statement.key_update("q", R, reads=["a"], writes=["a"])
        assert q.stype is StatementType.KEY_UPDATE
        assert q.read_set == q.write_set == frozenset({"a"})

    def test_pred_update(self):
        q = Statement.pred_update("q", R, predicate=["k"], reads=[], writes=["b"])
        assert q.stype is StatementType.PRED_UPDATE
        assert q.pread_set == frozenset({"k"})
        assert q.read_set == frozenset()
        assert q.write_set == frozenset({"b"})

    def test_key_delete_writes_all_attributes(self):
        q = Statement.key_delete("q", R)
        assert q.stype is StatementType.KEY_DELETE
        assert q.write_set == R.attribute_set

    def test_pred_delete(self):
        q = Statement.pred_delete("q", R, predicate=["a"])
        assert q.stype is StatementType.PRED_DELETE
        assert q.pread_set == frozenset({"a"})
        assert q.write_set == R.attribute_set


class TestFigure5Constraints:
    """The definedness matrix of Figure 5, row by row."""

    def test_insert_may_not_read(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.INSERT, "R", None, frozenset(), frozenset({"a"}))

    def test_insert_may_not_predicate_read(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.INSERT, "R", frozenset(), None, frozenset({"a"}))

    def test_insert_requires_writes(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.INSERT, "R", None, None, None)

    def test_key_delete_requires_write_set(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.KEY_DELETE, "R", None, None, None)

    def test_key_delete_may_not_have_pread(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.KEY_DELETE, "R", frozenset(), None, frozenset({"a"}))

    def test_pred_delete_requires_pread(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.PRED_DELETE, "R", None, None, frozenset({"a"}))

    def test_pred_delete_pread_may_be_empty(self):
        q = Statement("q", StatementType.PRED_DELETE, "R", frozenset(), None, frozenset({"a"}))
        assert q.pread_set == frozenset()

    def test_key_select_requires_read_set(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.KEY_SELECT, "R", None, None, None)

    def test_key_select_may_not_write(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.KEY_SELECT, "R", None, frozenset(), frozenset({"a"}))

    def test_pred_select_requires_pread(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.PRED_SELECT, "R", None, frozenset(), None)

    def test_key_update_write_set_must_be_nonempty(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.KEY_UPDATE, "R", None, frozenset(), frozenset())

    def test_pred_update_write_set_must_be_nonempty(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.PRED_UPDATE, "R", frozenset(), frozenset(), frozenset())

    def test_key_update_may_not_have_pread(self):
        with pytest.raises(ProgramError):
            Statement(
                "q", StatementType.KEY_UPDATE, "R",
                frozenset(), frozenset(), frozenset({"a"}),
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            Statement("", StatementType.INSERT, "R", None, None, frozenset({"a"}))

    def test_empty_relation_rejected(self):
        with pytest.raises(ProgramError):
            Statement("q", StatementType.INSERT, "", None, None, frozenset({"a"}))


class TestTypeClassification:
    @pytest.mark.parametrize(
        "stype,key_based",
        [
            (StatementType.INSERT, True),
            (StatementType.KEY_SELECT, True),
            (StatementType.KEY_UPDATE, True),
            (StatementType.KEY_DELETE, True),
            (StatementType.PRED_SELECT, False),
            (StatementType.PRED_UPDATE, False),
            (StatementType.PRED_DELETE, False),
        ],
    )
    def test_key_based(self, stype, key_based):
        assert stype.is_key_based is key_based
        assert stype.is_predicate_based is not key_based

    @pytest.mark.parametrize(
        "stype,writes",
        [
            (StatementType.INSERT, True),
            (StatementType.KEY_SELECT, False),
            (StatementType.PRED_SELECT, False),
            (StatementType.KEY_UPDATE, True),
            (StatementType.PRED_UPDATE, True),
            (StatementType.KEY_DELETE, True),
            (StatementType.PRED_DELETE, True),
        ],
    )
    def test_performs_write(self, stype, writes):
        assert stype.performs_write is writes

    @pytest.mark.parametrize(
        "stype,reads",
        [
            (StatementType.INSERT, False),
            (StatementType.KEY_SELECT, True),
            (StatementType.PRED_SELECT, True),
            (StatementType.KEY_UPDATE, True),
            (StatementType.PRED_UPDATE, True),
            (StatementType.KEY_DELETE, False),
            (StatementType.PRED_DELETE, False),
        ],
    )
    def test_performs_read(self, stype, reads):
        assert stype.performs_read is reads


class TestSetAccessors:
    def test_bottom_coerces_to_empty(self):
        q = Statement.insert("q", R)
        assert q.reads == frozenset() and q.preads == frozenset()
        assert q.read_set is None  # the distinction is preserved

    def test_defined_sets_pass_through(self):
        q = Statement.pred_select("q", R, predicate=["a"], reads=["b"])
        assert q.preads == frozenset({"a"})
        assert q.reads == frozenset({"b"})


class TestWidening:
    def test_widening_replaces_defined_sets(self):
        q = Statement.key_update("q", R, reads=["a"], writes=["a"])
        wide = q.widened(R.attribute_set)
        assert wide.read_set == R.attribute_set
        assert wide.write_set == R.attribute_set
        assert wide.pread_set is None  # ⊥ stays ⊥

    def test_widening_empty_defined_set(self):
        q = Statement.key_update("q", R, reads=[], writes=["a"])
        wide = q.widened(R.attribute_set)
        assert wide.read_set == R.attribute_set

    def test_widening_preserves_identity_fields(self):
        q = Statement.pred_select("q7", R, predicate=["a"], reads=[])
        wide = q.widened(R.attribute_set)
        assert wide.name == "q7" and wide.stype is q.stype and wide.relation == "R"

    def test_widening_is_idempotent(self):
        q = Statement.pred_select("q", R, predicate=["a"], reads=["b"])
        once = q.widened(R.attribute_set)
        assert once.widened(R.attribute_set) == once


class TestValidateAgainst:
    def test_valid_statement_passes(self):
        Statement.key_select("q", R, reads=["a"]).validate_against(R)

    def test_wrong_relation_rejected(self):
        other = Relation("S", ["x"], key=["x"])
        with pytest.raises(ProgramError):
            Statement.key_select("q", R, reads=["a"]).validate_against(other)

    def test_unknown_attribute_rejected(self):
        q = Statement("q", StatementType.KEY_SELECT, "R", None, frozenset({"nope"}), None)
        with pytest.raises(ProgramError):
            q.validate_against(R)

    def test_delete_must_write_all_attributes(self):
        q = Statement("q", StatementType.KEY_DELETE, "R", None, None, frozenset({"a"}))
        with pytest.raises(ProgramError):
            q.validate_against(R)

    def test_insert_subset_allowed(self):
        # Figure 17 restricts insert WriteSets to the supplied columns.
        Statement.insert("q", R, columns=["a"]).validate_against(R)

    def test_str_shows_bottom(self):
        q = Statement.key_select("q", R, reads=["a"])
        assert "⊥" in str(q)
