"""Tests for the staged Analyzer session API and machine-readable reports."""

import json
from pathlib import Path

import pytest

from repro import AnalysisMatrix, Analyzer, RobustnessReport, Workload
from repro.detection.subsets import maximal_robust_subsets, robust_subsets
from repro.errors import ProgramError
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, TPL_DEP

TICKETING_FILE = Path(__file__).resolve().parent.parent / "examples" / "ticketing.workload"


class TestWorkloadResolve:
    def test_builtin_name(self):
        assert Workload.resolve("smallbank").name == "SmallBank"

    def test_scaled_builtin(self):
        workload = Workload.resolve("auction(3)")
        assert workload.name == "Auction(3)"
        assert len(workload.programs) == 6

    def test_path(self):
        assert Workload.resolve(TICKETING_FILE).name == "Ticketing"

    def test_path_string(self):
        assert Workload.resolve(str(TICKETING_FILE)).name == "Ticketing"

    def test_raw_text(self):
        workload = Workload.resolve(TICKETING_FILE.read_text())
        assert workload.name == "Ticketing"

    def test_workload_passthrough(self, auction_workload):
        assert Workload.resolve(auction_workload) is auction_workload

    def test_programs_plus_schema(self, auction_workload):
        workload = Workload.resolve(
            auction_workload.programs, schema=auction_workload.schema, name="mine"
        )
        assert workload.name == "mine"
        assert workload.program_names == auction_workload.program_names

    def test_unknown_name_mentions_missing_file(self):
        with pytest.raises(ValueError, match="no such workload file"):
            Workload.resolve("nope")

    def test_missing_path_object(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Workload.resolve(tmp_path / "absent.workload")

    def test_unresolvable_type(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            Workload.resolve(42)

    def test_schema_with_name_source_rejected(self, auction_workload):
        with pytest.raises(TypeError, match="sequence of BTP programs"):
            Workload.resolve("smallbank", schema=auction_workload.schema)

    def test_schema_with_workload_source_rejected(self, auction_workload):
        with pytest.raises(TypeError, match="sequence of BTP programs"):
            Workload.resolve(auction_workload, schema=auction_workload.schema)


class TestAnalyzerStages:
    def test_analyze_matches_legacy_analyze(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        for settings in ALL_SETTINGS:
            report = session.analyze(settings)
            legacy = smallbank_workload.analyze(settings)
            assert report.robust == legacy.robust
            assert report.type1_robust == legacy.type1_robust
            assert report.stats == legacy.stats

    def test_matrix_agrees_with_per_setting_analyze(self, auction_workload):
        session = Analyzer(auction_workload)
        matrix = session.analyze_matrix()
        assert matrix.workload == auction_workload.name
        assert matrix.settings_labels == tuple(s.label for s in ALL_SETTINGS)
        for settings in ALL_SETTINGS:
            assert matrix.report(settings) is session.analyze(settings)
            assert matrix.report(settings.label).robust == session.analyze(settings).robust

    def test_memoization_identical_to_cold_runs(self, smallbank_workload):
        warm = Analyzer(smallbank_workload)
        first = warm.analyze(ATTR_DEP_FK)
        assert warm.analyze(ATTR_DEP_FK) is first  # cached object
        cold = Analyzer(smallbank_workload)
        again = cold.analyze(ATTR_DEP_FK)
        assert again.to_dict() == first.to_dict()

    def test_unfold_happens_once(self, auction_workload):
        session = Analyzer(auction_workload)
        session.analyze_matrix()
        session.maximal_robust_subsets(ATTR_DEP_FK)
        info = session.cache_info()
        assert info["unfolded_programs"] == len(auction_workload.programs)
        # one full graph per setting, nothing per candidate subset
        assert info["summary_graphs"] == len(ALL_SETTINGS)

    def test_clear_cache_recomputes_equal_results(self, auction_workload):
        session = Analyzer(auction_workload)
        before = session.analyze(ATTR_DEP_FK)
        session.clear_cache()
        assert session.cache_info() == {
            "unfolded_programs": 0, "summary_graphs": 0, "reports": 0,
            "edge_blocks": 0, "block_computations": 0, "blocks_loaded": 0,
        }
        assert session.analyze(ATTR_DEP_FK).to_dict() == before.to_dict()

    def test_subset_graph_equals_cold_construction(self, smallbank_workload):
        names = ["Balance", "WriteCheck"]
        cold = smallbank_workload.subset(names).summary_graph(ATTR_DEP_FK)
        # subset-first: the graph is built directly over the subset's LTPs
        direct_session = Analyzer(smallbank_workload)
        direct = direct_session.summary_graph(ATTR_DEP_FK, names)
        assert direct_session.cache_info()["unfolded_programs"] == len(names)
        # full-first: the subset graph is restricted from the cached full graph
        restricted_session = Analyzer(smallbank_workload)
        restricted_session.summary_graph(ATTR_DEP_FK)
        restricted = restricted_session.summary_graph(ATTR_DEP_FK, names)
        for graph in (direct, restricted):
            assert set(graph.edges) == set(cold.edges)
            assert set(graph.program_names) == set(cold.program_names)

    def test_subset_analysis_matches_workload_subset(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        for names in (["Balance", "DepositChecking"], ["Balance", "WriteCheck"]):
            report = session.analyze(ATTR_DEP_FK, names)
            cold = smallbank_workload.subset(names).analyze(ATTR_DEP_FK)
            assert report.robust == cold.robust
            assert report.type1_robust == cold.type1_robust

    def test_unknown_subset_program_rejected(self, auction_workload):
        with pytest.raises(ProgramError, match="unknown programs"):
            Analyzer(auction_workload).analyze(subset=["Nope"])

    def test_max_loop_iterations_forwarded(self, tpcc_workload):
        shallow = Analyzer(tpcc_workload, max_loop_iterations=1)
        deep = Analyzer(tpcc_workload, max_loop_iterations=2)
        assert len(shallow.unfolded()) < len(deep.unfolded())


class TestSubsetEnumeration:
    @pytest.mark.parametrize("workload_name", ["smallbank", "auction"])
    @pytest.mark.parametrize("method", ["type-II", "type-I"])
    def test_matches_seed_enumeration(self, workload_name, method, request):
        workload = request.getfixturevalue(f"{workload_name}_workload")
        session = Analyzer(workload)
        for settings in (TPL_DEP, ATTR_DEP_FK):
            assert session.robust_subsets(settings, method) == robust_subsets(
                workload.programs, workload.schema, settings, method
            )
            assert session.maximal_robust_subsets(
                settings, method
            ) == maximal_robust_subsets(
                workload.programs, workload.schema, settings, method
            )

    def test_smallbank_paper_subsets(self, smallbank_workload):
        session = Analyzer(smallbank_workload)
        maximal = session.maximal_robust_subsets(ATTR_DEP_FK)
        abbreviated = {
            frozenset(smallbank_workload.abbreviate(name) for name in subset)
            for subset in maximal
        }
        assert abbreviated == {
            frozenset({"Am", "DC", "TS"}),
            frozenset({"Bal", "DC"}),
            frozenset({"Bal", "TS"}),
        }


class TestSerialization:
    def test_report_round_trip(self, smallbank_workload):
        report = Analyzer(smallbank_workload).analyze(ATTR_DEP_FK)
        assert report.witness is not None  # SmallBank is non-robust
        revived = RobustnessReport.from_dict(json.loads(report.to_json()))
        assert revived.to_dict() == report.to_dict()
        assert revived.graph is None
        assert revived.robust == report.robust
        assert revived.program_count == report.program_count
        assert revived.witness.edges == report.witness.edges
        assert revived.describe() == report.describe()

    def test_robust_report_round_trip(self, auction_workload):
        report = Analyzer(auction_workload).analyze(ATTR_DEP_FK)
        assert report.robust and report.type1_witness is not None
        revived = RobustnessReport.from_json(report.to_json(indent=2))
        assert revived.to_dict() == report.to_dict()
        assert revived.type1_witness.highlighted == report.type1_witness.highlighted

    def test_matrix_round_trip(self, auction_workload):
        matrix = Analyzer(auction_workload).analyze_matrix()
        revived = AnalysisMatrix.from_dict(json.loads(matrix.to_json()))
        assert revived.to_dict() == matrix.to_dict()
        assert revived.verdicts() == matrix.verdicts()

    def test_graph_to_dict(self, auction_workload):
        graph = Analyzer(auction_workload).summary_graph(ATTR_DEP_FK)
        data = json.loads(json.dumps(graph.to_dict()))
        assert data["stats"]["edges"] == graph.edge_count == len(data["edges"])
        assert data["stats"]["counterflow"] == graph.counterflow_count

    def test_report_requires_graph_or_stats(self):
        with pytest.raises(ValueError, match="summary graph or its stats"):
            RobustnessReport(
                settings=ATTR_DEP_FK, graph=None, robust=True, type1_robust=True,
                witness=None, type1_witness=None,
            )
