"""Tests for ``repro.churn`` (PR 6): the mutation catalog, the seeded
engine, the churn monitor and its convergence oracle.

The load-bearing properties:

* mutations serialize/round-trip and fail loud when inapplicable;
* the engine is deterministic — same ``(workload, seed)``, same proposals,
  byte-for-byte, across processes (string-seeded sub-RNGs);
* a :class:`ChurnTrace` replayed from its serialized form reproduces
  identical per-step verdicts (``canonical_json`` byte equality), and
  every oracle checkpoint matches a cold from-scratch analysis — for all
  four Section 7.2 settings (elspeth-style deterministic replay);
* block-store hygiene: 500 ``replace_program`` edits on one session leave
  every ``cache_info`` size counter bounded (no leak of evicted blocks).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.analysis.session import Analyzer
from repro.btp.program import BTP, seq
from repro.btp.statement import Statement, StatementType
from repro.churn import (
    MUTATION_KINDS,
    AddProgram,
    BurstConfig,
    ChurnTrace,
    CloneProgram,
    DemoteKeyToPredicate,
    DemoteUpdateToRead,
    DropProgram,
    Monitor,
    MutationEngine,
    PromotePredicateRead,
    PromoteReadToWrite,
    RemoveFKAnnotation,
    apply_mutation,
    mutation_from_dict,
)
from repro.errors import ProgramError
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import smallbank

WORKLOADS = ("smallbank", "auction(5)")


# ---------------------------------------------------------------------------
# the mutation catalog
# ---------------------------------------------------------------------------

class TestMutationCatalog:
    def test_every_kind_round_trips_through_dict(self):
        samples = [
            AddProgram("Balance"),
            DropProgram("Balance"),
            CloneProgram("Balance", "Balance~1"),
            PromotePredicateRead("WriteCheck", "q13"),
            DemoteKeyToPredicate("Balance", "q8"),
            PromoteReadToWrite("Balance", "q8"),
            DemoteUpdateToRead("Amalgamate", "q3"),
            RemoveFKAnnotation("WriteCheck", "fS", "q13", "q14"),
        ]
        assert {type(m).kind for m in samples} < set(MUTATION_KINDS)
        for mutation in samples:
            data = json.loads(json.dumps(mutation.to_dict()))
            assert mutation_from_dict(data) == mutation

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProgramError, match="unknown mutation kind"):
            mutation_from_dict({"kind": "rename_program", "program": "X"})

    def test_malformed_fields_rejected(self):
        with pytest.raises(ProgramError, match="malformed"):
            mutation_from_dict({"kind": "drop_program"})  # missing program
        with pytest.raises(ProgramError, match="malformed"):
            mutation_from_dict(
                {"kind": "clone_program", "program": "X", "bogus": 1}
            )

    def test_drop_then_restore_round_trips_the_workload(self):
        base = smallbank()
        dropped = apply_mutation(base, DropProgram("Balance"), base)
        assert "Balance" not in dropped.program_names
        restored = apply_mutation(dropped, AddProgram("Balance"), base)
        assert set(restored.program_names) == set(base.program_names)
        assert restored.program("Balance") == base.program("Balance")

    def test_clone_duplicates_root_and_constraints(self):
        base = smallbank()
        cloned = apply_mutation(base, CloneProgram("WriteCheck", "WriteCheck~0"), base)
        twin = cloned.program("WriteCheck~0")
        original = base.program("WriteCheck")
        assert twin.root == original.root
        assert twin.constraints == original.constraints

    def test_demote_key_to_predicate_inverts_promote(self):
        base = smallbank()
        demoted = apply_mutation(base, DemoteKeyToPredicate("Balance", "q8"), base)
        stmt = demoted.program("Balance").statements_by_name()["q8"]
        assert stmt.stype is StatementType.PRED_SELECT
        repromoted = apply_mutation(
            demoted, PromotePredicateRead("Balance", "q8"), base
        )
        # Promotion back restores a key-based read over the same read set.
        back = repromoted.program("Balance").statements_by_name()["q8"]
        assert back.stype is StatementType.KEY_SELECT
        original = base.program("Balance").statements_by_name()["q8"]
        assert back.read_set == original.read_set

    def test_demote_update_to_read_drops_the_write_set(self):
        base = smallbank()
        edited = apply_mutation(base, DemoteUpdateToRead("Amalgamate", "q3"), base)
        stmt = edited.program("Amalgamate").statements_by_name()["q3"]
        assert stmt.stype is StatementType.KEY_SELECT
        assert not stmt.write_set

    def test_demoting_a_constraint_target_drops_the_annotation(self):
        base = smallbank()
        target_program = next(
            program for program in base.programs if program.constraints
        )
        constraint = target_program.constraints[0]
        edited = apply_mutation(
            base, DemoteKeyToPredicate(target_program.name, constraint.target), base
        )
        remaining = edited.program(target_program.name).constraints
        assert all(item.target != constraint.target for item in remaining)

    def test_remove_fk_annotation_requires_presence(self):
        base = smallbank()
        with pytest.raises(ProgramError, match="carries no"):
            apply_mutation(
                base, RemoveFKAnnotation("Balance", "fS", "q1", "q2"), base
            )

    def test_inapplicable_mutations_fail_loud(self):
        base = smallbank()
        with pytest.raises(ProgramError, match="no program"):
            apply_mutation(base, DropProgram("Nope"), base)
        with pytest.raises(ProgramError, match="already present"):
            apply_mutation(base, AddProgram("Balance"), base)
        with pytest.raises(ProgramError, match="already exists"):
            apply_mutation(base, CloneProgram("Balance", "WriteCheck"), base)
        with pytest.raises(ProgramError, match="no statement"):
            apply_mutation(base, DemoteUpdateToRead("Balance", "q99"), base)
        with pytest.raises(ProgramError, match="not an update"):
            apply_mutation(base, DemoteUpdateToRead("Balance", "q8"), base)
        with pytest.raises(ProgramError, match="needs the base workload"):
            AddProgram("Balance").operations(base, None)


# ---------------------------------------------------------------------------
# the seeded engine
# ---------------------------------------------------------------------------

class TestMutationEngine:
    def test_same_seed_same_proposals(self):
        base = smallbank()
        first = MutationEngine(base, seed=99)
        second = MutationEngine(base, seed=99)
        state = base
        for step in range(30):
            a = first.propose(state, step)
            b = second.propose(state, step)
            assert a == b
            for mutation in a:
                state = apply_mutation(state, mutation, base)

    def test_different_seeds_diverge(self):
        base = smallbank()
        trails = []
        for seed in (1, 2):
            engine = MutationEngine(base, seed=seed)
            trails.append(
                tuple(engine.propose(base, step) for step in range(20))
            )
        assert trails[0] != trails[1]

    def test_candidates_enumerate_in_workload_order(self):
        base = smallbank()
        engine = MutationEngine(base, seed=0)
        drops = engine.candidates(base, "drop_program")
        assert tuple(m.program for m in drops) == base.program_names

    def test_zero_weight_kind_never_proposed(self):
        base = smallbank()
        only_drops = {kind: 0.0 for kind in MUTATION_KINDS}
        only_drops["drop_program"] = 1.0
        engine = MutationEngine(
            base, seed=5, weights=only_drops, burst=BurstConfig(probability=0.0)
        )
        for step in range(10):
            (mutation,) = engine.propose(base, step)
            assert isinstance(mutation, DropProgram)

    def test_program_count_stays_within_bounds(self):
        base = smallbank()
        engine = MutationEngine(base, seed=3, min_programs=3, max_programs=7)
        state = base
        for step in range(200):
            for mutation in engine.propose(state, step):
                state = apply_mutation(state, mutation, base)
            assert 3 <= len(state.programs) <= 7

    def test_burst_lands_multiple_mutations(self):
        base = smallbank()
        engine = MutationEngine(
            base, seed=1, burst=BurstConfig(probability=1.0, min_size=2, max_size=3)
        )
        proposals = engine.propose(base, 0)
        assert 2 <= len(proposals) <= 3

    def test_validation_errors(self):
        base = smallbank()
        with pytest.raises(ProgramError, match="unknown mutation kind"):
            MutationEngine(base, seed=0, weights={"frobnicate": 1.0})
        with pytest.raises(ProgramError, match="must be >= 0"):
            MutationEngine(base, seed=0, weights={"drop_program": -1.0})
        with pytest.raises(ProgramError, match="below the base workload"):
            MutationEngine(base, seed=0, max_programs=2)
        with pytest.raises(ProgramError, match="min_programs"):
            MutationEngine(base, seed=0, min_programs=0)
        with pytest.raises(ProgramError, match="burst probability"):
            BurstConfig(probability=1.5)
        with pytest.raises(ProgramError, match="burst sizes"):
            BurstConfig(min_size=4, max_size=2)
        with pytest.raises(ProgramError, match="unknown mutation kind"):
            engine = MutationEngine(base, seed=0)
            engine.candidates(base, "frobnicate")


# ---------------------------------------------------------------------------
# the monitor and the convergence oracle
# ---------------------------------------------------------------------------

class TestMonitor:
    def test_run_records_every_step(self):
        trace = Monitor("smallbank", seed=7).run(10, oracle_every=5)
        assert len(trace.steps) == 10
        assert [step.step for step in trace.steps] == list(range(10))
        assert trace.oracle_checks == 2
        assert trace.converged
        for step in trace.steps:
            assert step.mutations
            assert step.programs >= 2
            # Non-robust steps carry witness anchors; robust ones don't.
            assert step.robust == (not step.witness_anchors)

    def test_trace_round_trips_through_json(self):
        trace = Monitor("smallbank", seed=13).run(8, oracle_every=4)
        data = json.loads(trace.to_json())
        rebuilt = ChurnTrace.from_dict(data)
        assert rebuilt.canonical_json() == trace.canonical_json()
        assert rebuilt.seed == trace.seed
        assert rebuilt.settings == trace.settings
        assert [s.mutations for s in rebuilt.steps] == [
            s.mutations for s in trace.steps
        ]

    def test_replay_is_byte_identical(self):
        trace = Monitor("smallbank", seed=21).run(15, oracle_every=5)
        replayed = trace.replay()
        assert replayed.canonical_json() == trace.canonical_json()

    def test_same_seed_fresh_monitors_agree(self):
        first = Monitor("smallbank", seed=33).run(12)
        second = Monitor("smallbank", seed=33).run(12)
        assert first.canonical_json() == second.canonical_json()

    def test_replay_against_diverged_base_fails_loud(self):
        trace = Monitor("smallbank", seed=2).run(3)
        with pytest.raises(ProgramError, match="cannot replay"):
            Monitor("auction(5)", seed=2).replay(trace)

    def test_programmatic_workload_needs_explicit_replay_source(self):
        workload = smallbank()
        trace = Monitor(workload, seed=4).run(3)
        assert trace.source is None
        with pytest.raises(ProgramError, match="records no resolvable"):
            trace.replay()
        replayed = trace.replay(source=workload)
        assert replayed.canonical_json() == trace.canonical_json()

    def test_watch_fork_leaves_the_original_session_warm(self):
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        names_before = session.program_names
        trace = Monitor(session=session.fork(), seed=5).run(10)
        assert len(trace.steps) == 10
        assert session.program_names == names_before
        assert session.analyze(ATTR_DEP_FK).workload == "SmallBank"

    def test_forked_and_cold_monitors_produce_identical_traces(self):
        # The warm-up analyze before step 0 makes blocks_recomputed
        # counts independent of how warm the session arrived.
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        warm = Monitor(session=session.fork(), seed=17, source_hint="smallbank")
        cold = Monitor("smallbank", seed=17)
        assert warm.run(8).canonical_json() == cold.run(8).canonical_json()

    def test_oracle_check_on_demand(self):
        monitor = Monitor("smallbank", seed=0)
        monitor.run(3)
        check = monitor.check()
        assert check.matches
        assert check.robust == (not check.witness_anchors)

    def test_describe_renders_each_step(self):
        trace = Monitor("smallbank", seed=9).run(4, oracle_every=2)
        text = trace.describe()
        assert "step    0" in text
        assert "oracle: ok" in text
        assert "watched 4 steps" in text

    def test_run_validates_arguments(self):
        monitor = Monitor("smallbank", seed=0)
        with pytest.raises(ProgramError, match="steps must be >= 1"):
            monitor.run(0)
        with pytest.raises(ProgramError, match="oracle_every"):
            monitor.run(3, oracle_every=-1)
        with pytest.raises(ProgramError, match="workload source or a session"):
            Monitor()


# ---------------------------------------------------------------------------
# satellite: block-store hygiene under sustained edits
# ---------------------------------------------------------------------------

class TestBlockStoreHygiene:
    def test_counters_stay_bounded_across_500_replacements(self):
        session = Analyzer("smallbank")
        session.analyze(ATTR_DEP_FK)
        baseline = session.cache_info()
        workload = session.workload
        original = workload.program("Balance")
        variant = BTP(
            "Balance",
            seq(
                Statement.key_select(
                    "q6", workload.schema.relation("Savings"), reads=["Balance"]
                ),
                Statement.key_update(
                    "q8",
                    workload.schema.relation("Checking"),
                    reads=["Balance"],
                    writes=["Balance"],
                ),
            ),
        )
        for iteration in range(500):
            session.replace_program(variant if iteration % 2 == 0 else original)
            session.analyze(ATTR_DEP_FK)
            info = session.cache_info()
            # Same program count, same settings: every *size* counter must
            # stay at its baseline — evicted blocks and stale profiles
            # must not accumulate anywhere.
            assert info["edge_blocks"] == baseline["edge_blocks"]
            assert info["unfolded_programs"] == baseline["unfolded_programs"]
            assert info["summary_graphs"] <= 1
            assert info["reports"] <= 1
        # The throughput counter grows (blocks are genuinely recomputed),
        # but linearly in edits — bounded by 2n−1 block recomputations and
        # one unfold per replacement.
        final = session.cache_info()
        per_edit = (
            final["block_computations"] - baseline["block_computations"]
        ) / 500
        assert per_edit <= 2 * len(workload.programs) - 1


# ---------------------------------------------------------------------------
# satellite: the deterministic-replay property (hypothesis)
# ---------------------------------------------------------------------------

class TestReplayProperty:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        steps=st.integers(min_value=1, max_value=6),
        workload=st.sampled_from(WORKLOADS),
        setting=st.sampled_from(ALL_SETTINGS),
    )
    @hyp_settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_serialized_traces_replay_identically(
        self, seed, steps, workload, setting
    ):
        trace = Monitor(workload, seed=seed, setting=setting).run(
            steps, oracle_every=2
        )
        assert trace.converged  # every checkpoint equals cold analysis
        # Byte-level round trip: serialize, parse, replay, compare.
        rebuilt = ChurnTrace.from_dict(json.loads(trace.to_json()))
        replayed = rebuilt.replay()
        assert replayed.canonical_json() == trace.canonical_json()
        assert replayed.converged


# ---------------------------------------------------------------------------
# acceptance: 1000-step convergence, all four settings
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestThousandStepConvergence:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("setting", ALL_SETTINGS, ids=lambda s: s.label)
    def test_incremental_matches_cold_at_every_checkpoint(self, workload, setting):
        trace = Monitor(workload, seed=1701, setting=setting).run(
            1000, oracle_every=100
        )
        assert len(trace.steps) == 1000
        assert trace.oracle_checks == 10
        assert trace.oracle_mismatches == 0
        # The oracle compares full report payloads, so witness presence
        # agreed too; spot-check the recorded anchors against verdicts.
        for step in trace.steps:
            if step.oracle is not None:
                assert step.oracle.robust == step.robust
                assert bool(step.oracle.witness_anchors) == bool(
                    step.witness_anchors
                )

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_thousand_step_replay_is_byte_identical(self, workload):
        trace = Monitor(workload, seed=8128).run(1000, oracle_every=250)
        replayed = ChurnTrace.from_dict(json.loads(trace.to_json())).replay()
        assert replayed.canonical_json() == trace.canonical_json()
