"""Property-based tests (hypothesis) for core invariants.

Programs are generated over a fixed two-relation schema with a foreign key,
covering all seven statement types, optional/choice/loop structure, and FK
annotations — then the paper's structural theorems are checked on whatever
comes out.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro.btp.program import BTP, FKConstraint, ProgramNode, Stmt, loop, optional, seq
from repro.btp.statement import Statement, StatementType
from repro.btp.unfold import unfold, unfold_program
from repro.detection.typei import is_robust_type1
from repro.detection.typeii import is_robust_type2, is_robust_type2_naive
from repro.engine.search import find_counterexample, random_mvrc_schedules
from repro.mvsched.mvrc import allowed_under_mvrc
from repro.mvsched.serialization import cycle_is_type2, serialization_graph
from repro.schema import ForeignKey, Relation, Schema
from repro.summary.construct import build_summary_graph
from repro.summary.settings import ATTR_DEP, ATTR_DEP_FK, TPL_DEP, TPL_DEP_FK

PARENT = Relation("Parent", ["pk", "pa"], key=["pk"])
CHILD = Relation("Child", ["ck", "ca", "cb"], key=["ck"])
SCHEMA = Schema(
    [PARENT, CHILD], [ForeignKey("fk", "Child", "Parent", {"ca": "pk"})]
)

_counter = 0


def _fresh_name() -> str:
    global _counter
    _counter += 1
    return f"s{_counter}"


@st.composite
def statements(draw, relation=None) -> Statement:
    rel = relation or draw(st.sampled_from([PARENT, CHILD]))
    stype = draw(st.sampled_from(list(StatementType)))
    attrs = sorted(rel.attribute_set)
    subset = lambda: frozenset(draw(st.sets(st.sampled_from(attrs), max_size=len(attrs))))
    name = _fresh_name()
    if stype is StatementType.INSERT:
        columns = draw(st.sets(st.sampled_from(attrs), min_size=1))
        return Statement.insert(name, rel, columns=columns)
    if stype is StatementType.KEY_SELECT:
        return Statement.key_select(name, rel, reads=subset())
    if stype is StatementType.PRED_SELECT:
        return Statement.pred_select(name, rel, predicate=subset(), reads=subset())
    if stype is StatementType.KEY_UPDATE:
        writes = draw(st.sets(st.sampled_from(attrs), min_size=1))
        return Statement.key_update(name, rel, reads=subset(), writes=writes)
    if stype is StatementType.PRED_UPDATE:
        writes = draw(st.sets(st.sampled_from(attrs), min_size=1))
        return Statement.pred_update(
            name, rel, predicate=subset(), reads=subset(), writes=writes
        )
    if stype is StatementType.KEY_DELETE:
        return Statement.key_delete(name, rel)
    return Statement.pred_delete(name, rel, predicate=subset())


@st.composite
def program_nodes(draw, depth: int = 2) -> ProgramNode:
    if depth == 0:
        return Stmt(draw(statements()))
    kind = draw(st.sampled_from(["stmt", "seq", "opt", "loop"]))
    if kind == "stmt":
        return Stmt(draw(statements()))
    if kind == "opt":
        return optional(draw(program_nodes(depth=depth - 1)))
    if kind == "loop":
        return loop(draw(program_nodes(depth=depth - 1)))
    parts = draw(st.lists(program_nodes(depth=depth - 1), min_size=2, max_size=3))
    return seq(*parts)


@st.composite
def programs(draw, name: str) -> BTP:
    root = draw(program_nodes(depth=2))
    program = BTP(name, root)
    # Annotate an FK constraint when a Child statement follows a key-based
    # Parent write — mirroring how real workloads are annotated.
    stmts = program.statements()
    constraints = []
    writes = {
        s.name for s in stmts
        if s.relation == "Parent"
        and s.stype in (StatementType.KEY_UPDATE, StatementType.KEY_DELETE,
                        StatementType.INSERT)
    }
    child_reads = [s.name for s in stmts if s.relation == "Child"]
    if writes and child_reads and draw(st.booleans()):
        constraints.append(
            FKConstraint("fk", source=child_reads[0], target=sorted(writes)[0])
        )
    return BTP(name, root, constraints=constraints)


@st.composite
def program_sets(draw, max_programs: int = 3) -> list[BTP]:
    count = draw(st.integers(min_value=1, max_value=max_programs))
    return [draw(programs(name=f"P{i}")) for i in range(count)]


common = hyp_settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStructuralProperties:
    @given(program_sets())
    @common
    def test_tuple_granularity_only_adds_edges(self, progs):
        attr = build_summary_graph(progs, SCHEMA, ATTR_DEP_FK)
        tpl = build_summary_graph(progs, SCHEMA, TPL_DEP_FK)
        assert set(attr.edges) <= set(tpl.edges)

    @given(program_sets())
    @common
    def test_foreign_keys_only_remove_counterflow_edges(self, progs):
        with_fk = build_summary_graph(progs, SCHEMA, ATTR_DEP_FK)
        without_fk = build_summary_graph(progs, SCHEMA, ATTR_DEP)
        assert set(with_fk.edges) <= set(without_fk.edges)
        removed = set(without_fk.edges) - set(with_fk.edges)
        assert all(edge.counterflow for edge in removed)

    @given(program_sets())
    @common
    def test_type1_robust_implies_type2_robust(self, progs):
        graph = build_summary_graph(progs, SCHEMA, ATTR_DEP_FK)
        if is_robust_type1(graph):
            assert is_robust_type2(graph)

    @given(program_sets())
    @common
    def test_optimized_algorithm2_equals_naive(self, progs):
        for settings in (ATTR_DEP_FK, ATTR_DEP, TPL_DEP):
            graph = build_summary_graph(progs, SCHEMA, settings)
            assert is_robust_type2(graph) == is_robust_type2_naive(graph)

    @given(program_sets(max_programs=3))
    @common
    def test_proposition_5_2_antimonotonicity(self, progs):
        """A robust set's subsets are robust (as detected, too)."""
        if not is_robust_type2(build_summary_graph(progs, SCHEMA, ATTR_DEP_FK)):
            return
        for index in range(len(progs)):
            subset = progs[:index] + progs[index + 1:]
            if subset:
                assert is_robust_type2(build_summary_graph(subset, SCHEMA, ATTR_DEP_FK))

    @given(programs(name="P"))
    @common
    def test_unfolding_respects_depth_bound(self, program):
        for variant in unfold_program(program, max_loop_iterations=2):
            counts = {}
            for occ in variant.occurrences:
                for loop_id, iteration in occ.loop_path:
                    counts.setdefault(loop_id, set()).add(iteration)
            for iterations in counts.values():
                assert iterations <= {0, 1}

    @given(programs(name="P"))
    @common
    def test_unfoldings_are_distinct(self, program):
        variants = unfold_program(program)
        signatures = [v.signature for v in variants]
        assert len(set(signatures)) == len(signatures)

    @given(programs(name="P"))
    @common
    def test_widened_program_has_same_shape(self, program):
        wide = program.widened(SCHEMA)
        assert [s.name for s in wide.statements()] == [
            s.name for s in program.statements()
        ]
        assert len(unfold_program(wide)) == len(unfold_program(program))


class TestEngineProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedules_validate_and_satisfy_theorem_4_2(
        self, seed, smallbank_workload
    ):
        """Engine schedules are valid, MVRC, and their cycles type-II."""
        rng = random.Random(seed)
        for schedule in random_mvrc_schedules(
            smallbank_workload.programs, smallbank_workload.schema,
            8, rng, universe_size=2, n_transactions=3,
        ):
            schedule.validate()
            assert allowed_under_mvrc(schedule)
            graph = serialization_graph(schedule)
            for cycle in graph.cycles(max_cycles=200):
                assert cycle_is_type2(schedule, cycle)

    @pytest.mark.parametrize("seed", range(3))
    def test_theorem_4_2_on_auction(self, seed, auction_workload):
        rng = random.Random(seed + 100)
        for schedule in random_mvrc_schedules(
            auction_workload.programs, auction_workload.schema,
            8, rng, universe_size=2, n_transactions=3, max_matched=2,
        ):
            schedule.validate()
            assert allowed_under_mvrc(schedule)
            for cycle in serialization_graph(schedule).cycles(max_cycles=200):
                assert cycle_is_type2(schedule, cycle)

    @given(program_sets(max_programs=2))
    @hyp_settings(max_examples=10, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
    def test_algorithm2_soundness_against_search(self, progs):
        """If Algorithm 2 attests robustness, no small counterexample exists.

        This is the contrapositive of Proposition 6.5 checked empirically:
        an actual non-serializable MVRC schedule over programs detected as
        robust would disprove soundness.
        """
        graph = build_summary_graph(progs, SCHEMA, ATTR_DEP_FK)
        if not is_robust_type2(graph):
            return
        counterexample = find_counterexample(
            progs, SCHEMA, universe_size=1, n_transactions=2,
            max_matched=1, max_schedules=4_000,
        )
        assert counterexample is None
