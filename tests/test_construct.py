"""Tests for Algorithm 1: summary graph construction.

The Auction edge set is checked against a full hand derivation of
Figure 4; SmallBank and TPC-C against the Table 2 counts; Auction(n)
against the closed form 9n² + 8n.
"""

import pytest

from repro.experiments import expected
from repro.summary.construct import build_summary_graph, construct_summary_graph
from repro.summary.settings import (
    ALL_SETTINGS,
    ATTR_DEP,
    ATTR_DEP_FK,
    TPL_DEP,
    TPL_DEP_FK,
)
from repro.workloads import auction_n


def edge_tuples(graph):
    return {
        (e.source, e.source_stmt, e.counterflow, e.target_stmt, e.target)
        for e in graph.edges
    }


class TestAuctionFigure4:
    """The running example's summary graph, edge by edge."""

    def test_exact_edge_set(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        fb, pb1, pb2 = "FindBids", "PlaceBid#1", "PlaceBid#2"
        nc = False
        cf = True
        expected_edges = {
            # Buyer: every pair of q1/q3 key updates (9 edges).
            (fb, "q1", nc, "q1", fb),
            (fb, "q1", nc, "q3", pb1),
            (fb, "q1", nc, "q3", pb2),
            (pb1, "q3", nc, "q1", fb),
            (pb2, "q3", nc, "q1", fb),
            (pb1, "q3", nc, "q3", pb1),
            (pb1, "q3", nc, "q3", pb2),
            (pb2, "q3", nc, "q3", pb1),
            (pb2, "q3", nc, "q3", pb2),
            # Bids: non-counterflow (7 edges).
            (fb, "q2", nc, "q5", pb1),
            (pb1, "q5", nc, "q2", fb),
            (pb1, "q4", nc, "q5", pb1),
            (pb2, "q4", nc, "q5", pb1),
            (pb1, "q5", nc, "q4", pb1),
            (pb1, "q5", nc, "q4", pb2),
            (pb1, "q5", nc, "q5", pb1),
            # Bids: the single counterflow edge (FindBids' predicate read).
            (fb, "q2", cf, "q5", pb1),
        }
        assert edge_tuples(graph) == expected_edges

    def test_fk_blocks_q4_to_q5_counterflow(self, auction_workload):
        with_fk = edge_tuples(auction_workload.summary_graph(ATTR_DEP_FK))
        without_fk = edge_tuples(auction_workload.summary_graph(ATTR_DEP))
        gained = without_fk - with_fk
        # Without FK annotations, q4's read of the bid can be counterflow.
        assert gained == {
            ("PlaceBid#1", "q4", True, "q5", "PlaceBid#1"),
            ("PlaceBid#2", "q4", True, "q5", "PlaceBid#1"),
        }

    def test_counts_match_table2(self, auction_workload):
        graph = auction_workload.summary_graph(ATTR_DEP_FK)
        paper = expected.TABLE2["Auction"]
        assert len(graph) == paper["nodes"]
        assert graph.edge_count == paper["edges"]
        assert graph.counterflow_count == paper["counterflow"]


class TestSmallBank:
    def test_counts_match_table2(self, smallbank_workload):
        graph = smallbank_workload.summary_graph(ATTR_DEP_FK)
        paper = expected.TABLE2["SmallBank"]
        assert (len(graph), graph.edge_count, graph.counterflow_count) == (
            paper["nodes"], paper["edges"], paper["counterflow"],
        )

    def test_account_statements_produce_no_edges(self, smallbank_workload):
        graph = smallbank_workload.summary_graph(ATTR_DEP_FK)
        account_stmts = {"q1", "q2", "q6", "q9", "q11", "q13"}
        for edge in graph.edges:
            assert edge.source_stmt not in account_stmts
            assert edge.target_stmt not in account_stmts

    def test_all_counterflow_edges_come_from_selects(self, smallbank_workload):
        graph = smallbank_workload.summary_graph(ATTR_DEP_FK)
        for edge in graph.counterflow_edges:
            statement = graph.source_statement(edge)
            assert statement.stype.value == "key sel"

    def test_identical_across_settings(self, smallbank_workload):
        """SmallBank's graph does not depend on granularity or FKs."""
        baseline = edge_tuples(smallbank_workload.summary_graph(ATTR_DEP_FK))
        for settings in ALL_SETTINGS:
            assert edge_tuples(smallbank_workload.summary_graph(settings)) == baseline


class TestTpcc:
    def test_counts_match_table2(self, tpcc_workload):
        graph = tpcc_workload.summary_graph(ATTR_DEP_FK)
        paper = expected.TABLE2["TPC-C"]
        assert (len(graph), graph.edge_count, graph.counterflow_count) == (
            paper["nodes"], paper["edges"], paper["counterflow"],
        )

    def test_empty_delivery_unfolding_has_no_edges(self, tpcc_workload):
        graph = tpcc_workload.summary_graph(ATTR_DEP_FK)
        empty = next(p.name for p in graph.programs if p.is_empty)
        for edge in graph.edges:
            assert edge.source != empty and edge.target != empty

    def test_payment_internal_counterflow_blocked_by_fk(self, tpcc_workload):
        """q24 -> q25 (c_data read/write) is FK-protected via the district."""
        with_fk = tpcc_workload.summary_graph(ATTR_DEP_FK)
        without_fk = tpcc_workload.summary_graph(ATTR_DEP)
        def pay_cf(graph):
            return {
                (e.source, e.source_stmt, e.target_stmt, e.target)
                for e in graph.counterflow_edges
                if e.source.startswith("Payment") and e.target.startswith("Payment")
            }
        assert not pay_cf(with_fk)
        assert pay_cf(without_fk)


class TestGranularityAndScaling:
    def test_tuple_granularity_only_adds_edges(self, tpcc_workload):
        attr = edge_tuples(tpcc_workload.summary_graph(ATTR_DEP_FK))
        tpl = edge_tuples(tpcc_workload.summary_graph(TPL_DEP_FK))
        assert attr <= tpl
        assert len(tpl) > len(attr)

    def test_dropping_fk_only_adds_counterflow_edges(self, tpcc_workload):
        with_fk = edge_tuples(tpcc_workload.summary_graph(ATTR_DEP_FK))
        without_fk = edge_tuples(tpcc_workload.summary_graph(ATTR_DEP))
        gained = without_fk - with_fk
        assert with_fk <= without_fk
        assert gained and all(edge[2] for edge in gained)  # all counterflow

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_auction_n_closed_form(self, n):
        workload = auction_n(n)
        graph = workload.summary_graph(ATTR_DEP_FK)
        assert len(graph) == 3 * n
        assert graph.edge_count == expected.auction_n_edges(n)
        assert graph.counterflow_count == expected.auction_n_counterflow(n)

    def test_auction_n_is_not_disconnected(self):
        """Buyer updates connect programs of different items (Section 7.3)."""
        graph = auction_n(2).summary_graph(ATTR_DEP_FK)
        cross = [
            e for e in graph.edges
            if e.source.endswith("1") != e.target.endswith("1")
            and "FindBids" in e.source and "FindBids" in e.target
        ]
        assert cross  # FindBids1 <-> FindBids2 via Buyer(calls)


class TestConstructionApi:
    def test_build_summary_graph_unfolds(self, auction_workload):
        graph = build_summary_graph(
            auction_workload.programs, auction_workload.schema, ATTR_DEP_FK
        )
        assert len(graph) == 3

    def test_duplicate_ltp_names_rejected(self, auction_workload):
        from repro.errors import ProgramError
        ltps = auction_workload.unfolded()
        with pytest.raises(ProgramError):
            construct_summary_graph(
                list(ltps) + [ltps[0]], auction_workload.schema, ATTR_DEP_FK
            )

    def test_tpl_dep_label_roundtrip(self):
        from repro.summary.settings import AnalysisSettings
        for settings in ALL_SETTINGS:
            assert AnalysisSettings.from_label(settings.label) == settings
        with pytest.raises(ValueError):
            AnalysisSettings.from_label("nonsense")

    def test_settings_labels(self):
        assert TPL_DEP.label == "tpl dep"
        assert ATTR_DEP.label == "attr dep"
        assert TPL_DEP_FK.label == "tpl dep + FK"
        assert ATTR_DEP_FK.label == "attr dep + FK"
