"""Tests for visualization and the command-line interface."""

import pytest

from repro.cli import main
from repro.summary.settings import ATTR_DEP_FK
from repro.viz import to_dot, to_text


class TestDot:
    def test_valid_dotish_output(self, auction_workload):
        dot = to_dot(auction_workload.summary_graph(ATTR_DEP_FK))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"FindBids"' in dot and '"PlaceBid#1"' in dot

    def test_counterflow_edges_dashed(self, auction_workload):
        dot = to_dot(auction_workload.summary_graph(ATTR_DEP_FK))
        assert "style=dashed" in dot

    def test_labels_can_be_disabled(self, auction_workload):
        dot = to_dot(
            auction_workload.summary_graph(ATTR_DEP_FK), include_labels=False
        )
        assert "label=" not in dot.split("];")[-1] or "q" not in dot.split("->")[1]

    def test_label_truncation(self, tpcc_workload):
        dot = to_dot(tpcc_workload.summary_graph(ATTR_DEP_FK), max_label_pairs=2)
        assert "…" in dot

    def test_empty_program_marked(self, tpcc_workload):
        dot = to_dot(tpcc_workload.summary_graph(ATTR_DEP_FK))
        assert "(ε)" in dot


class TestText:
    def test_adjacency_listing(self, auction_workload):
        text = to_text(auction_workload.summary_graph(ATTR_DEP_FK))
        assert "FindBids" in text
        assert "-->" in text  # the counterflow edge
        assert "q2→q5" in text

    def test_statements_can_be_hidden(self, auction_workload):
        text = to_text(auction_workload.summary_graph(ATTR_DEP_FK), show_statements=False)
        assert "q2→q5" not in text


class TestCli:
    def test_analyze(self, capsys):
        assert main(["analyze", "auction"]) == 0
        out = capsys.readouterr().out
        assert "robust against MVRC (Algorithm 2, type-II cycles): True" in out

    def test_analyze_subset(self, capsys):
        assert main(["analyze", "smallbank", "--subset", "Balance,DepositChecking"]) == 0
        out = capsys.readouterr().out
        assert "True" in out

    def test_analyze_with_setting(self, capsys):
        assert main(["analyze", "auction", "--setting", "attr dep"]) == 0
        out = capsys.readouterr().out
        assert "False" in out

    def test_subsets_command(self, capsys):
        assert main(["subsets", "smallbank"]) == 0
        out = capsys.readouterr().out
        assert "{Am, DC, TS}" in out

    def test_subsets_type1(self, capsys):
        assert main(["subsets", "smallbank", "--method", "type-I"]) == 0
        out = capsys.readouterr().out
        assert "{Bal}" in out

    def test_graph_text(self, capsys):
        assert main(["graph", "auction"]) == 0
        assert "FindBids" in capsys.readouterr().out

    def test_graph_dot(self, capsys):
        assert main(["graph", "auction", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiments_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "396 (83)" in out and "MISMATCH" not in out

    def test_scaled_workload(self, capsys):
        assert main(["analyze", "auction(2)"]) == 0
        assert "Auction(2)" in capsys.readouterr().out

    def test_unknown_workload_exits_nonzero(self, capsys):
        assert main(["analyze", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err

    def test_missing_workload_file_exits_nonzero(self, capsys):
        assert main(["analyze", "no_such.workload"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_workload_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.workload"
        path.write_text("TABLE T (a*)\nGARBAGE LINE\n")
        assert main(["analyze", str(path)]) == 2
        assert "unrecognized" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_analyze_json_round_trips(self, capsys):
        from repro import RobustnessReport
        assert main(["analyze", "smallbank", "--json"]) == 0
        import json
        data = json.loads(capsys.readouterr().out)
        report = RobustnessReport.from_dict(data)
        assert report.workload == "SmallBank"
        assert report.robust is False

    def test_analyze_all_settings_json(self, capsys):
        from repro import AnalysisMatrix
        assert main(["analyze", "auction", "--all-settings", "--json"]) == 0
        import json
        matrix = AnalysisMatrix.from_dict(json.loads(capsys.readouterr().out))
        assert matrix.verdicts()["attr dep + FK"] is True
        assert matrix.verdicts()["tpl dep"] is False

    def test_subsets_json(self, capsys):
        import json
        assert main(["subsets", "smallbank", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert ["Amalgamate", "DepositChecking", "TransactSavings"] in data[
            "maximal_robust_subsets"
        ]

    def test_graph_json(self, capsys):
        import json
        assert main(["graph", "auction", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["nodes"] == 3
        assert len(data["edges"]) == data["stats"]["edges"] == 17

    def test_experiments_figure8_small(self, capsys):
        assert main(
            ["experiments", "figure8", "--scales", "1", "2", "--repetitions", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "MISMATCH" not in out
