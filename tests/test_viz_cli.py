"""Tests for visualization and the command-line interface."""

import pytest

from repro.cli import main
from repro.summary.settings import ATTR_DEP_FK
from repro.viz import to_dot, to_text


class TestDot:
    def test_valid_dotish_output(self, auction_workload):
        dot = to_dot(auction_workload.summary_graph(ATTR_DEP_FK))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"FindBids"' in dot and '"PlaceBid#1"' in dot

    def test_counterflow_edges_dashed(self, auction_workload):
        dot = to_dot(auction_workload.summary_graph(ATTR_DEP_FK))
        assert "style=dashed" in dot

    def test_labels_can_be_disabled(self, auction_workload):
        dot = to_dot(
            auction_workload.summary_graph(ATTR_DEP_FK), include_labels=False
        )
        assert "label=" not in dot.split("];")[-1] or "q" not in dot.split("->")[1]

    def test_label_truncation(self, tpcc_workload):
        dot = to_dot(tpcc_workload.summary_graph(ATTR_DEP_FK), max_label_pairs=2)
        assert "…" in dot

    def test_empty_program_marked(self, tpcc_workload):
        dot = to_dot(tpcc_workload.summary_graph(ATTR_DEP_FK))
        assert "(ε)" in dot


class TestText:
    def test_adjacency_listing(self, auction_workload):
        text = to_text(auction_workload.summary_graph(ATTR_DEP_FK))
        assert "FindBids" in text
        assert "-->" in text  # the counterflow edge
        assert "q2→q5" in text

    def test_statements_can_be_hidden(self, auction_workload):
        text = to_text(auction_workload.summary_graph(ATTR_DEP_FK), show_statements=False)
        assert "q2→q5" not in text


class TestCli:
    def test_analyze(self, capsys):
        assert main(["analyze", "auction"]) == 0
        out = capsys.readouterr().out
        assert "robust against MVRC (Algorithm 2, type-II cycles): True" in out

    def test_analyze_subset(self, capsys):
        assert main(["analyze", "smallbank", "--subset", "Balance,DepositChecking"]) == 0
        out = capsys.readouterr().out
        assert "True" in out

    def test_analyze_with_setting(self, capsys):
        assert main(["analyze", "auction", "--setting", "attr dep"]) == 0
        out = capsys.readouterr().out
        assert "False" in out

    def test_subsets_command(self, capsys):
        assert main(["subsets", "smallbank"]) == 0
        out = capsys.readouterr().out
        assert "{Am, DC, TS}" in out

    def test_subsets_type1(self, capsys):
        assert main(["subsets", "smallbank", "--method", "type-I"]) == 0
        out = capsys.readouterr().out
        assert "{Bal}" in out

    def test_graph_text(self, capsys):
        assert main(["graph", "auction"]) == 0
        assert "FindBids" in capsys.readouterr().out

    def test_graph_dot(self, capsys):
        assert main(["graph", "auction", "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_experiments_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "396 (83)" in out and "MISMATCH" not in out

    def test_scaled_workload(self, capsys):
        assert main(["analyze", "auction(2)"]) == 0
        assert "Auction(2)" in capsys.readouterr().out

    def test_unknown_workload_exits_nonzero(self, capsys):
        assert main(["analyze", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err

    def test_missing_workload_file_exits_nonzero(self, capsys):
        assert main(["analyze", "no_such.workload"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_workload_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.workload"
        path.write_text("TABLE T (a*)\nGARBAGE LINE\n")
        assert main(["analyze", str(path)]) == 2
        assert "unrecognized" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_analyze_json_round_trips(self, capsys):
        from repro import RobustnessReport
        assert main(["analyze", "smallbank", "--json"]) == 0
        import json
        data = json.loads(capsys.readouterr().out)
        report = RobustnessReport.from_dict(data)
        assert report.workload == "SmallBank"
        assert report.robust is False

    def test_analyze_all_settings_json(self, capsys):
        from repro import AnalysisMatrix
        assert main(["analyze", "auction", "--all-settings", "--json"]) == 0
        import json
        matrix = AnalysisMatrix.from_dict(json.loads(capsys.readouterr().out))
        assert matrix.verdicts()["attr dep + FK"] is True
        assert matrix.verdicts()["tpl dep"] is False

    def test_subsets_json(self, capsys):
        import json
        assert main(["subsets", "smallbank", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert ["Amalgamate", "DepositChecking", "TransactSavings"] in data[
            "maximal_robust_subsets"
        ]

    def test_graph_json(self, capsys):
        import json
        assert main(["graph", "auction", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["nodes"] == 3
        assert len(data["edges"]) == data["stats"]["edges"] == 17

    def test_experiments_figure8_small(self, capsys):
        assert main(
            ["experiments", "figure8", "--scales", "1", "2", "--repetitions", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out and "MISMATCH" not in out


class TestWitnessDot:
    def test_witness_highlighting(self, smallbank_workload):
        from repro.analysis import Analyzer

        session = Analyzer("smallbank")
        report = session.analyze(ATTR_DEP_FK)
        dot = to_dot(report.graph, witness=report.witness)
        assert "color=red" in dot
        assert "penwidth=2" in dot
        assert "dangerous cycle" in dot
        assert "offending statements:" in dot

    def test_no_witness_no_highlighting(self, auction_workload):
        dot = to_dot(auction_workload.summary_graph(ATTR_DEP_FK))
        assert "color=red" not in dot


class TestAdviseCli:
    def test_repaired_workload_exits_zero(self, capsys):
        assert main(["advise", "smallbank"]) == 0
        out = capsys.readouterr().out
        assert "minimal repair" in out
        assert "verified incrementally" in out

    def test_already_robust_exits_zero(self, capsys):
        assert main(["advise", "auction", "--setting", "attr dep + FK"]) == 0
        assert "already robust" in capsys.readouterr().out

    def test_no_repair_within_budget_exits_one(self, capsys):
        assert main(["advise", "tpcc", "--max-edits", "1"]) == 1
        assert "no repair within 1" in capsys.readouterr().out

    def test_json_output_and_exit_codes(self, capsys):
        import json as json_module

        assert main(["advise", "smallbank", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["repaired"] is True
        assert payload["repairs"][0]["edits"]
        assert main(["advise", "tpcc", "--max-edits", "1", "--json"]) == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["repaired"] is False and payload["witness"]

    def test_unknown_workload_exits_two(self, capsys):
        assert main(["advise", "nope"]) == 2

    def test_graph_witness_flag(self, capsys):
        assert main(["graph", "smallbank", "--format", "dot", "--witness"]) == 0
        assert "offending statements:" in capsys.readouterr().out
        assert main(["graph", "smallbank", "--witness"]) == 0
        assert "dangerous cycle" in capsys.readouterr().out

    def test_experiments_repairs(self, capsys):
        assert main(["experiments", "repairs"]) == 0
        out = capsys.readouterr().out
        assert "Repairs — minimal edit sets" in out
        assert "MISMATCH" not in out

    def test_experiments_cell_jobs(self, capsys):
        assert main(["experiments", "table2", "--cell-jobs", "4"]) == 0
        assert "ok" in capsys.readouterr().out
