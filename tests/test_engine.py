"""Tests for repro.engine: instantiation, execution, interleavings, search."""

import random

import pytest

from repro.btp.program import BTP, FKConstraint, seq
from repro.btp.statement import Statement
from repro.btp.unfold import unfold_program
from repro.engine.executor import execute
from repro.engine.instantiate import Instantiator, TupleUniverse, enumerate_choices
from repro.engine.interleavings import (
    all_unit_orders,
    interleaving_count,
    random_unit_order,
    serial_unit_order,
)
from repro.engine.search import find_counterexample, random_mvrc_schedules
from repro.errors import InstantiationError
from repro.mvsched.mvrc import allowed_under_mvrc
from repro.mvsched.operations import OpKind
from repro.mvsched.serialization import is_conflict_serializable
from repro.mvsched.tuples import TupleId, VersionKind
from repro.schema import ForeignKey, Relation, Schema

R = Relation("R", ["k", "v"], key=["k"])
P = Relation("P", ["k", "x"], key=["k"])
SCHEMA = Schema([R, P], [ForeignKey("f", "R", "P", {"v": "k"})])


def ltp_of(program: BTP):
    (ltp,) = unfold_program(program)
    return ltp


@pytest.fixture
def universe():
    return TupleUniverse(SCHEMA, {"R": 2, "P": 2})


class TestTupleUniverse:
    def test_existing_tuples(self, universe):
        assert universe.existing("R") == (TupleId("R", 0), TupleId("R", 1))
        assert universe.size("P") == 2

    def test_is_existing(self, universe):
        assert universe.is_existing(TupleId("R", 1))
        assert not universe.is_existing(TupleId("R", 2))

    def test_fk_image_alignment(self, universe):
        assert universe.fk_image("f", TupleId("R", 0)) == TupleId("P", 0)
        assert universe.fk_image("f", TupleId("R", 1)) == TupleId("P", 1)

    def test_fk_image_wraps_modulo(self):
        small = TupleUniverse(SCHEMA, {"R": 3, "P": 2})
        assert small.fk_image("f", TupleId("R", 2)) == TupleId("P", 0)

    def test_fk_image_wrong_relation_rejected(self, universe):
        with pytest.raises(InstantiationError):
            universe.fk_image("f", TupleId("P", 0))


class TestInstantiator:
    def test_key_update_produces_chunk(self, universe):
        program = ltp_of(BTP("W", seq(Statement.key_update("w", R, reads=["v"], writes=["v"]))))
        tx = Instantiator(universe).instantiate(program, [(TupleId("R", 0),)])
        assert [op.kind for op in tx.operations] == [OpKind.READ, OpKind.WRITE, OpKind.COMMIT]
        assert tx.chunks == ((0, 1),)

    def test_read_elision_after_key_select(self, universe):
        """Figure 3: a key update after a read of the same tuple emits only W."""
        program = ltp_of(
            BTP(
                "RW",
                seq(
                    Statement.key_select("r", R, reads=["v"]),
                    Statement.key_update("w", R, reads=["v"], writes=["v"]),
                ),
            )
        )
        t = TupleId("R", 0)
        tx = Instantiator(universe).instantiate(program, [(t,), (t,)])
        assert [op.kind for op in tx.operations] == [OpKind.READ, OpKind.WRITE, OpKind.COMMIT]
        assert tx.chunks == ()  # the W is not chunked with the earlier read

    def test_no_elision_for_distinct_tuples(self, universe):
        program = ltp_of(
            BTP(
                "RW",
                seq(
                    Statement.key_select("r", R, reads=["v"]),
                    Statement.key_update("w", R, reads=["v"], writes=["v"]),
                ),
            )
        )
        tx = Instantiator(universe).instantiate(
            program, [(TupleId("R", 0),), (TupleId("R", 1),)]
        )
        assert len(tx.operations) == 4  # R, R, W, commit

    def test_double_write_rejected(self, universe):
        program = ltp_of(
            BTP(
                "WW",
                seq(
                    Statement.key_update("w1", R, reads=[], writes=["v"]),
                    Statement.key_update("w2", R, reads=[], writes=["v"]),
                ),
            )
        )
        t = TupleId("R", 0)
        with pytest.raises(InstantiationError):
            Instantiator(universe).instantiate(program, [(t,), (t,)])

    def test_insert_allocates_fresh_tuple(self, universe):
        program = ltp_of(BTP("I", seq(Statement.insert("i", R))))
        instantiator = Instantiator(universe)
        tx1 = instantiator.instantiate(program, [()])
        tx2 = instantiator.instantiate(program, [()])
        t1 = tx1.operations[0].tuple
        t2 = tx2.operations[0].tuple
        assert t1 != t2
        assert not universe.is_existing(t1) and not universe.is_existing(t2)

    def test_pred_select_emits_pr_chunk(self, universe):
        program = ltp_of(
            BTP("PS", seq(Statement.pred_select("p", R, predicate=["v"], reads=["v"])))
        )
        tuples = universe.existing("R")
        tx = Instantiator(universe).instantiate(program, [tuples])
        assert [op.kind for op in tx.operations[:-1]] == [
            OpKind.PRED_READ, OpKind.READ, OpKind.READ,
        ]
        assert tx.chunks == ((0, 2),)

    def test_fk_constraint_enforced(self, universe):
        program = ltp_of(
            BTP(
                "C",
                seq(
                    Statement.key_update("p", P, reads=[], writes=["x"]),
                    Statement.key_select("r", R, reads=["v"]),
                ),
                constraints=[FKConstraint("f", source="r", target="p")],
            )
        )
        good = Instantiator(universe).instantiate(
            program, [(TupleId("P", 1),), (TupleId("R", 1),)]
        )
        assert len(good.operations) == 4
        with pytest.raises(InstantiationError):
            Instantiator(universe).instantiate(
                program, [(TupleId("P", 0),), (TupleId("R", 1),)]
            )

    def test_key_statement_needs_exactly_one_tuple(self, universe):
        program = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        with pytest.raises(InstantiationError):
            Instantiator(universe).instantiate(program, [universe.existing("R")])

    def test_wrong_relation_rejected(self, universe):
        program = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        with pytest.raises(InstantiationError):
            Instantiator(universe).instantiate(program, [(TupleId("P", 0),)])

    def test_choice_count_mismatch_rejected(self, universe):
        program = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        with pytest.raises(InstantiationError):
            Instantiator(universe).instantiate(program, [])


class TestEnumerateChoices:
    def test_key_statement_ranges_over_existing(self, universe):
        program = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        assert len(list(enumerate_choices(program, universe))) == 2

    def test_pred_statement_ranges_over_subsets(self, universe):
        program = ltp_of(
            BTP("PS", seq(Statement.pred_select("p", R, predicate=["v"], reads=["v"])))
        )
        # subsets of size 0..2 of a 2-tuple relation: 1 + 2 + 1
        assert len(list(enumerate_choices(program, universe, max_matched=2))) == 4
        assert len(list(enumerate_choices(program, universe, max_matched=1))) == 3

    def test_fk_filter(self, universe):
        program = ltp_of(
            BTP(
                "C",
                seq(
                    Statement.key_update("p", P, reads=[], writes=["x"]),
                    Statement.key_select("r", R, reads=["v"]),
                ),
                constraints=[FKConstraint("f", source="r", target="p")],
            )
        )
        choices = list(enumerate_choices(program, universe))
        assert len(choices) == 2  # aligned pairs only, not 4


class TestExecutor:
    def _writer(self, universe, tx_hint=None):
        program = ltp_of(
            BTP("W", seq(Statement.key_update("w", R, reads=["v"], writes=["v"])))
        )
        return program

    def test_serial_execution(self, universe):
        program = self._writer(universe)
        instantiator = Instantiator(universe)
        t = TupleId("R", 0)
        tx1 = instantiator.instantiate(program, [(t,)])
        tx2 = instantiator.instantiate(program, [(t,)])
        schedule = execute([tx1, tx2], serial_unit_order([tx1, tx2]), universe)
        assert schedule is not None
        schedule.validate()
        assert allowed_under_mvrc(schedule)
        assert is_conflict_serializable(schedule)

    def test_dirty_write_interleaving_rejected(self, universe):
        program = ltp_of(
            BTP(
                "WW",
                seq(
                    Statement.key_update("a", R, reads=[], writes=["v"]),
                    Statement.key_update("b", P, reads=[], writes=["x"]),
                ),
            )
        )
        instantiator = Instantiator(universe)
        r0, p0 = TupleId("R", 0), TupleId("P", 0)
        tx1 = instantiator.instantiate(program, [(r0,), (p0,)])
        tx2 = instantiator.instantiate(program, [(r0,), (p0,)])
        # tx1 writes R:0, then tx2 tries to write R:0 before tx1 commits.
        assert execute([tx1, tx2], [1, 2, 2, 2, 1, 1], universe) is None

    def test_reads_observe_last_committed(self, universe):
        writer = self._writer(universe)
        reader = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        instantiator = Instantiator(universe)
        t = TupleId("R", 0)
        tx_w = instantiator.instantiate(writer, [(t,)])
        tx_r = instantiator.instantiate(reader, [(t,)])
        # Read before the writer commits: observes the initial version.
        schedule = execute([tx_w, tx_r], [1, 2, 1, 2], universe)
        read_op = tx_r.operations[0]
        assert schedule.read_version[read_op].seq == 0
        # Read after commit: observes the new version.
        schedule = execute([tx_w, tx_r], [1, 1, 2, 2], universe)
        assert schedule.read_version[read_op].seq == 1

    def test_delete_then_access_rejected(self, universe):
        deleter = ltp_of(BTP("D", seq(Statement.key_delete("d", R))))
        reader = ltp_of(BTP("S", seq(Statement.key_select("r", R, reads=["v"]))))
        instantiator = Instantiator(universe)
        t = TupleId("R", 0)
        tx_d = instantiator.instantiate(deleter, [(t,)])
        tx_r = instantiator.instantiate(reader, [(t,)])
        assert execute([tx_d, tx_r], [1, 1, 2, 2], universe) is None

    def test_delete_creates_dead_version(self, universe):
        deleter = ltp_of(BTP("D", seq(Statement.key_delete("d", R))))
        instantiator = Instantiator(universe)
        t = TupleId("R", 0)
        tx = instantiator.instantiate(deleter, [(t,)])
        schedule = execute([tx], [1, 1], universe)
        assert schedule.write_version[tx.operations[0]].kind is VersionKind.DEAD
        schedule.validate()

    def test_insert_visible_to_later_pred_read(self, universe):
        inserter = ltp_of(BTP("I", seq(Statement.insert("i", R))))
        scanner = ltp_of(
            BTP("PS", seq(Statement.pred_select("p", R, predicate=["v"], reads=["v"])))
        )
        instantiator = Instantiator(universe)
        tx_i = instantiator.instantiate(inserter, [()])
        tx_s = instantiator.instantiate(scanner, [()])
        fresh = tx_i.operations[0].tuple
        schedule = execute([tx_i, tx_s], [1, 1, 2, 2], universe)
        pred_read = tx_s.operations[0]
        assert schedule.vset[pred_read][fresh].is_visible
        # Before the insert commits, the snapshot holds the unborn version.
        schedule = execute([tx_i, tx_s], [2, 2, 1, 1], universe)
        assert schedule.vset[pred_read][fresh].kind is VersionKind.UNBORN

    def test_incomplete_unit_order_rejected(self, universe):
        program = self._writer(universe)
        tx = Instantiator(universe).instantiate(program, [(TupleId("R", 0),)])
        assert execute([tx], [1], universe) is None
        assert execute([tx], [1, 1, 1], universe) is None
        assert execute([tx], [99, 1], universe) is None


class TestInterleavings:
    def _transactions(self, universe, count=2):
        program = ltp_of(
            BTP("W", seq(Statement.key_update("w", R, reads=["v"], writes=["v"])))
        )
        instantiator = Instantiator(universe)
        return [
            instantiator.instantiate(program, [(TupleId("R", 0),)]) for _ in range(count)
        ]

    def test_count_matches_enumeration(self, universe):
        txs = self._transactions(universe)
        orders = list(all_unit_orders(txs))
        assert len(orders) == interleaving_count(txs) == 6  # C(4,2)
        assert len(set(orders)) == len(orders)

    def test_each_order_has_right_multiplicities(self, universe):
        txs = self._transactions(universe)
        for order in all_unit_orders(txs):
            assert order.count(txs[0].tx) == 2
            assert order.count(txs[1].tx) == 2

    def test_random_order_valid(self, universe):
        txs = self._transactions(universe)
        rng = random.Random(1)
        for _ in range(20):
            order = random_unit_order(txs, rng)
            assert sorted(order) == sorted(serial_unit_order(txs))


class TestSearch:
    def test_smallbank_writecheck_counterexample(self, smallbank_workload):
        subset = smallbank_workload.subset(["WriteCheck"])
        cex = find_counterexample(subset.programs, smallbank_workload.schema, universe_size=1)
        assert cex is not None
        cex.schedule.validate()
        assert allowed_under_mvrc(cex.schedule)
        assert not is_conflict_serializable(cex.schedule)

    def test_robust_subset_has_no_small_counterexample(self, smallbank_workload):
        subset = smallbank_workload.subset(["Balance", "DepositChecking"])
        assert find_counterexample(
            subset.programs, smallbank_workload.schema, universe_size=1
        ) is None

    def test_counterexample_reports_programs(self, smallbank_workload):
        subset = smallbank_workload.subset(["Balance", "WriteCheck"])
        cex = find_counterexample(subset.programs, smallbank_workload.schema, universe_size=1)
        assert set(cex.programs) <= {"Balance", "WriteCheck"}
        assert "MVRC" in cex.describe()

    def test_random_mode(self, smallbank_workload):
        subset = smallbank_workload.subset(["WriteCheck"])
        cex = find_counterexample(
            subset.programs, smallbank_workload.schema,
            universe_size=1, mode="random", random_trials=3000,
            rng=random.Random(5),
        )
        assert cex is not None

    def test_unknown_mode_rejected(self, smallbank_workload):
        with pytest.raises(ValueError):
            find_counterexample(
                smallbank_workload.programs, smallbank_workload.schema, mode="nope"
            )

    def test_random_schedules_are_mvrc(self, auction_workload):
        rng = random.Random(11)
        schedules = list(
            random_mvrc_schedules(
                auction_workload.programs, auction_workload.schema, 10, rng
            )
        )
        assert len(schedules) == 10
        for schedule in schedules:
            schedule.validate()
            assert allowed_under_mvrc(schedule)
