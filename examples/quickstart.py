"""Quickstart: is my workload safe to run under READ COMMITTED?

The running example of the paper (Section 2): an auction service with two
transaction programs, FindBids and PlaceBid.  We write them as plain SQL,
let the library translate them into basic transaction programs (BTPs),
annotate the foreign keys, and ask whether every possible execution under
multi-version Read Committed (MVRC) is serializable.

Run with:  python examples/quickstart.py
"""

from repro import Analyzer, ForeignKey, Relation, Schema, FKConstraint, BTP
from repro.sqlfront import parse_program

# 1. The database schema: primary keys are needed to tell key-based from
#    predicate-based statements, foreign keys power the FK-aware analysis.
schema = Schema(
    relations=[
        Relation("Buyer", ["id", "calls"], key=["id"]),
        Relation("Bids", ["buyerId", "bid"], key=["buyerId"]),
        Relation("Log", ["id", "buyerId", "bid"], key=["id"]),
    ],
    foreign_keys=[
        ForeignKey("f1", "Bids", "Buyer", {"buyerId": "id"}),
        ForeignKey("f2", "Log", "Buyer", {"buyerId": "id"}),
    ],
)

# 2. The transaction programs, as the application issues them.
find_bids = parse_program(
    """
    UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
    SELECT bid FROM Bids WHERE bid >= :T;
    COMMIT;
    """,
    schema,
    name="FindBids",
)

place_bid_raw = parse_program(
    """
    UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
    SELECT bid INTO :C FROM Bids WHERE buyerId = :B;
    IF :C < :V THEN
        UPDATE Bids SET bid = :V WHERE buyerId = :B;
    END IF;
    INSERT INTO Log VALUES (:logId, :B, :V);
    COMMIT;
    """,
    schema,
    name="PlaceBid",
    first_statement=3,  # keep the paper's numbering q3..q6
)

# 3. Annotate what the SQL cannot express: q4, q5 and q6 all reference the
#    same buyer that q3 updated (the paper's q3 = f1(q4) etc.).
place_bid = BTP(
    place_bid_raw.name,
    place_bid_raw.root,
    constraints=[
        FKConstraint("f1", source="q4", target="q3"),
        FKConstraint("f1", source="q5", target="q3"),
        FKConstraint("f2", source="q6", target="q3"),
    ],
)

# 4. Analyze.  The default setting is the paper's strongest one:
#    attribute-level dependencies plus foreign keys ('attr dep + FK').
#    The Analyzer session caches the unfolded programs and summary graph,
#    so follow-up queries (other settings, subsets) are nearly free.
session = Analyzer([find_bids, place_bid], schema=schema, name="auction-quickstart")
report = session.analyze()
print(report)
print()

if report.robust:
    print("=> The workload is ROBUST against MVRC: running it under READ")
    print("   COMMITTED yields only serializable executions - no need to")
    print("   pay for SERIALIZABLE isolation.")
else:
    print("=> Not detected robust; run under a higher isolation level or")
    print("   inspect the dangerous cycle above.")
