"""Bring your own workload: analyze custom SQL programs for MVRC safety.

A small ticket-booking application built from scratch against the public
API: define the schema, write the programs in SQL, annotate foreign keys,
analyze, and export the summary graph as Graphviz DOT.

Run with:  python examples/custom_workload.py
"""

from repro import (
    ATTR_DEP_FK,
    Analyzer,
    BTP,
    FKConstraint,
    ForeignKey,
    Relation,
    Schema,
)
from repro.sqlfront import parse_program
from repro.viz import to_dot

schema = Schema(
    relations=[
        Relation("Event", ["event_id", "name", "seats_left"], key=["event_id"]),
        Relation("Booking", ["booking_id", "event_id", "seat_count"], key=["booking_id"]),
        Relation("Audit", ["audit_id", "event_id", "action"], key=["audit_id"]),
    ],
    foreign_keys=[
        ForeignKey("fk_booking_event", "Booking", "Event", {"event_id": "event_id"}),
        ForeignKey("fk_audit_event", "Audit", "Event", {"event_id": "event_id"}),
    ],
)

# BookSeats: decrement the seat counter, record the booking, audit it.
book_seats_sql = """
UPDATE Event SET seats_left = seats_left - :n WHERE event_id = :e;
INSERT INTO Booking VALUES (:b, :e, :n);
INSERT INTO Audit VALUES (:a, :e, 'book');
COMMIT;
"""

# ListAvailability: a predicate read over the seat counters.
list_availability_sql = """
SELECT name, seats_left FROM Event WHERE seats_left > 0;
COMMIT;
"""

# CancelBooking: delete the booking, give the seats back, audit it.
cancel_booking_sql = """
SELECT event_id, seat_count INTO :e, :n FROM Booking WHERE booking_id = :b;
DELETE FROM Booking WHERE booking_id = :b;
UPDATE Event SET seats_left = seats_left + :n WHERE event_id = :e;
INSERT INTO Audit VALUES (:a, :e, 'cancel');
COMMIT;
"""

book_raw = parse_program(book_seats_sql, schema, "BookSeats")
book_seats = BTP(
    book_raw.name,
    book_raw.root,
    constraints=[
        # q2 (the booking) and q3 (the audit row) reference the event q1 updated.
        FKConstraint("fk_booking_event", source="q2", target="q1"),
        FKConstraint("fk_audit_event", source="q3", target="q1"),
    ],
)
list_availability = parse_program(list_availability_sql, schema, "ListAvailability")
cancel_raw = parse_program(cancel_booking_sql, schema, "CancelBooking")
cancel_booking = BTP(
    cancel_raw.name,
    cancel_raw.root,
    constraints=[
        # The deleted booking q2 is the one q1 read; the audit row q4
        # references the event q3 updated.
        FKConstraint("fk_audit_event", source="q4", target="q3"),
    ],
)

programs = [book_seats, list_availability, cancel_booking]
session = Analyzer(programs, schema=schema, name="ticketing")
report = session.analyze(ATTR_DEP_FK)
print(report.describe())
print()

if not report.robust:
    print("The full workload is not (detectably) robust; checking pairs:")
    from repro.detection.subsets import format_subsets

    # The session reuses the summary graph it already built for the report,
    # so enumerating all subsets costs only the cycle checks.
    subsets = session.maximal_robust_subsets(ATTR_DEP_FK)
    print("maximal robust subsets:", format_subsets(subsets))
    print()

print("=== summary graph (Graphviz DOT, paste into `dot -Tpng`) ===")
print(to_dot(report.graph, name="ticketing"))
