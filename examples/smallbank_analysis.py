"""SmallBank: which program combinations tolerate READ COMMITTED?

Reproduces the paper's SmallBank analysis end to end:

1. compute the maximal robust subsets under all four analysis settings
   (Figure 6 / Figure 7 rows);
2. show the refinement over the prior type-I condition: {Bal, DC} and
   {Bal, TS} are only detected by Algorithm 2;
3. for a subset that is NOT robust, let the execution engine construct an
   actual non-serializable schedule allowed under MVRC — the anomaly you
   would risk in production.

Run with:  python examples/smallbank_analysis.py
"""

from repro import ALL_SETTINGS, Analyzer
from repro.detection.subsets import format_subsets
from repro.engine import find_counterexample
from repro.mvsched import dependencies, serialization_graph
from repro.workloads import smallbank

workload = smallbank()
abbreviations = dict(workload.abbreviations)

# One session for the whole script: SmallBank is unfolded once, and each
# setting's summary graph is built once — every subset query below is then
# just an induced-subgraph cycle check.
session = Analyzer(workload)

print("=== maximal robust subsets per setting ===")
for settings in ALL_SETTINGS:
    for method in ("type-II", "type-I"):
        subsets = session.maximal_robust_subsets(settings, method)
        label = f"{settings.label:14s} {method:7s}"
        print(f"{label}: {format_subsets(subsets, abbreviations)}")
print()

print("=== why {Balance, WriteCheck} must not run under READ COMMITTED ===")
subset = workload.subset(["Balance", "WriteCheck"])
counterexample = find_counterexample(subset.programs, workload.schema, universe_size=1)
assert counterexample is not None
print(counterexample.describe())
print()

graph = serialization_graph(counterexample.schedule)
print("dependencies of the counterexample schedule:")
for dep in dependencies(counterexample.schedule):
    print(f"  {dep}")
print(f"conflict serializable: {graph.is_acyclic}")
print()

print("=== {Balance, DepositChecking} in contrast ===")
report = session.analyze(subset=["Balance", "DepositChecking"])
print(report.describe())
