"""The phantom problem, concretely: the paper's Figure 3 schedule.

Builds the example schedule of Section 2 by hand on the multiversion
schedule substrate — two PlaceBid instances (T1, T2) and one FindBids
instance (T3) — then:

1. validates it against the Section 3.3 schedule rules and the MVRC
   admissibility conditions (Definition 3.3);
2. computes its dependencies, including the *predicate* rw-antidependency
   created by T3's predicate read observing Bids before T2's update — the
   phantom-style conflict earlier robustness work could not handle;
3. shows that the one counterflow dependency matches Lemma 4.1 and that
   every serialization-graph cycle (there is none here) would have to be
   type-II (Theorem 4.2).

Run with:  python examples/phantom_demo.py
"""

from repro.engine import Instantiator, TupleUniverse, execute
from repro.mvsched import (
    allowed_under_mvrc,
    dependencies,
    is_conflict_serializable,
    serialization_graph,
)
from repro.workloads import auction

workload = auction()
find_bids, place_bid = workload.unfolded()[0], workload.unfolded()[1:]
place_bid_with_q5, place_bid_without_q5 = place_bid

universe = TupleUniverse(workload.schema, {"Buyer": 2, "Bids": 3, "Log": 0})
instantiator = Instantiator(universe)

buyer = universe.existing("Buyer")
bids = universe.existing("Bids")

# T1: PlaceBid where the IF is false (no q5) over buyer t1 / bid u1.
t1 = instantiator.instantiate(
    place_bid_without_q5, [(buyer[0],), (bids[0],), ()], tx=1
)
# T2: PlaceBid where the IF is true (q5 executes) over the same buyer/bid.
t2 = instantiator.instantiate(
    place_bid_with_q5, [(buyer[0],), (bids[0],), (bids[0],), ()], tx=2
)
# T3: FindBids over buyer t2, predicate-reading all of Bids.
t3 = instantiator.instantiate(find_bids, [(buyer[1],), tuple(bids)], tx=3)

for transaction in (t1, t2, t3):
    print(transaction)
print()

# Interleave as in Figure 3: T1 commits first; T2 reads the bid; T3 runs
# its predicate read before T2 installs the new bid; T3 commits last.
# Units: T1 = [q3-chunk, q4, q6, C], T2 = [q3-chunk, q4, q5, q6, C],
#        T3 = [q1-chunk, q2-chunk, C].
unit_order = [1, 1, 1, 1, 2, 2, 3, 3, 2, 2, 2, 3]
schedule = execute([t1, t2, t3], unit_order, universe)
assert schedule is not None, "interleaving rejected"
print("schedule:", schedule)
print()

schedule.validate()
print("valid multiversion schedule (Section 3.3): yes")
print("allowed under MVRC (Definition 3.3):", allowed_under_mvrc(schedule))
print()

print("dependencies (note the predicate rw-antidependency PR3 -> W2):")
for dep in dependencies(schedule):
    print(f"  {dep}")
print()

counterflow = [d for d in dependencies(schedule) if d.counterflow]
print("counterflow dependencies:", ", ".join(str(d) for d in counterflow) or "none")
print("(Lemma 4.1: under MVRC only (predicate) rw-antidependencies can be counterflow)")
print()

graph = serialization_graph(schedule)
print("conflict serializable (Theorem 3.2):", is_conflict_serializable(schedule))
print("serialization-graph edges:",
      sorted(graph.tx_graph.edges))
