"""TPC-C: robustness analysis of the industry-standard OLTP benchmark.

Shows what the paper's machinery buys on a realistic workload:

1. the five TPC-C programs (with loops, branches, inserts, deletes and
   predicate reads) unfold into 13 linear programs and a 396-edge summary
   graph — all computed automatically from the BTP formalization;
2. under the full analysis ('attr dep + FK'), {OrderStatus, Payment,
   StockLevel} and {NewOrder, Payment} are robust against MVRC — both
   invisible to the earlier type-I condition;
3. {Delivery} is a known *false negative*: Algorithm 2 rejects it even
   though the concrete predicate semantics make it robust (Section 7.2).

Run with:  python examples/tpcc_analysis.py
"""

from repro import ALL_SETTINGS, ATTR_DEP_FK, Analyzer
from repro.detection.subsets import format_subsets
from repro.workloads import tpcc

workload = tpcc()
session = Analyzer(workload)  # unfolds the 5 programs once for everything below

print("=== workload shape ===")
for program in workload.programs:
    print(f"  {program}")
print()

graph = session.summary_graph(ATTR_DEP_FK)
print("=== summary graph ('attr dep + FK') ===")
print(graph.describe())
print("unfolded programs:", ", ".join(graph.program_names))
print()

print("=== maximal robust subsets (Algorithm 2) ===")
for settings in ALL_SETTINGS:
    subsets = session.maximal_robust_subsets(settings, "type-II")
    print(f"  {settings.label:14s}: {format_subsets(subsets, dict(workload.abbreviations))}")
print()

print("=== the {Delivery} false negative ===")
report = session.analyze(subset=["Delivery"])
print(f"Algorithm 2 verdict for {{Delivery}}: robust = {report.robust}")
if report.witness is not None:
    print(report.witness.describe())
print(
    """
Why this is a false negative (Section 7.2): per district, Delivery first
selects the *oldest* open order via a predicate read and then deletes it.
Two concurrent instances over the same warehouse would pick the same
order, and the second delete would abort — so the dangerous interleaving
the summary graph predicts can never actually commit.  The BTP
abstraction keeps only the predicate's attributes, not its "oldest open
order" semantics, and must conservatively reject the program.
"""
)

print("=== practical upshot ===")
safe = session.analyze(subset=["OrderStatus", "Payment", "StockLevel"])
print(f"{{OS, Pay, SL}} robust: {safe.robust}")
print("Running those three programs under READ COMMITTED is provably safe;")
print("NewOrder+Payment likewise ({NO, Pay} robust:",
      session.analyze(subset=["NewOrder", "Payment"]).robust, ").")
