"""Benchmark: sustained churn-monitoring throughput on Auction(n).

``repro.churn.Monitor`` re-verdicts a workload after every seeded edit by
leaning on the incremental session machinery — replacing one program of an
``n``-program workload recomputes at most ``2n − 1`` of the ``n²`` edge
blocks.  The convergence oracle, by contrast, rebuilds a cold
:class:`~repro.analysis.Analyzer` from scratch at a checkpoint — the price
the monitor would pay *per step* without the incremental path.

The benchmark drives a seeded mutation sequence over Auction(n) with
periodic oracle checkpoints and gates on two facts:

* every oracle checkpoint matches the incremental verdict exactly
  (``RobustnessReport.to_dict`` equality — the correctness gate);
* the best incremental step is >= ``--threshold`` times faster than the
  best cold re-analysis (the reason the subsystem exists).  Best-of
  rather than mean-of, for the same reason as ``bench_incremental``:
  steps are millisecond-scale, so one GC pause or CPU-steal spike must
  not fail the gate — and burst steps legitimately touch several
  programs, which a mean would misread as incremental slowness.

It also records sustained edits/sec over the monitored (non-oracle) work
in ``BENCH_churn.json``.

Run with:  PYTHONPATH=src python benchmarks/bench_churn.py [--scale N]
           [--steps N] [--seed S] [--oracle-every K] [--threshold X]
"""

from __future__ import annotations

import argparse
import sys

from conftest import record_benchmark

from repro.churn import Monitor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=24, help="Auction(n) scale")
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--oracle-every", type=int, default=5, dest="oracle_every")
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="required speedup of the mean incremental step over the mean "
        "cold (oracle) re-analysis",
    )
    args = parser.parse_args(argv)

    monitor = Monitor(f"auction({args.scale})", seed=args.seed)
    trace = monitor.run(args.steps, oracle_every=args.oracle_every)

    oracle_times = [
        step.oracle.elapsed_seconds for step in trace.steps if step.oracle is not None
    ]
    step_times = [step.elapsed_seconds for step in trace.steps]
    mean_step = sum(step_times) / len(step_times)
    mean_cold = sum(oracle_times) / len(oracle_times)
    best_step = min(step_times)
    best_cold = min(oracle_times)
    speedup = best_cold / best_step
    # Sustained throughput of the monitored work itself (oracle checkpoints
    # are a diagnostic, not part of the steady-state loop).
    monitored_seconds = sum(step_times)
    edits_per_second = trace.mutation_count / monitored_seconds
    blocks_per_step = sum(step.blocks_recomputed for step in trace.steps) / len(
        trace.steps
    )

    print(
        f"Auction({args.scale}): {len(monitor.base.programs)} programs; "
        f"{len(trace.steps)} steps ({trace.mutation_count} edits, "
        f"seed {args.seed}), ~{blocks_per_step:.0f} blocks recomputed/step"
    )
    print(
        f"incremental: {best_step * 1e3:8.1f} ms/step best "
        f"({mean_step * 1e3:.1f} mean)   "
        f"cold oracle: {best_cold * 1e3:8.1f} ms/step best "
        f"({mean_cold * 1e3:.1f} mean)   "
        f"speedup: {speedup:.1f}x   sustained: {edits_per_second:.0f} edits/sec"
    )
    record_benchmark(
        "churn",
        {
            "workload": f"Auction({args.scale})",
            "programs": len(monitor.base.programs),
            "steps": len(trace.steps),
            "mutations": trace.mutation_count,
            "seed": args.seed,
            "oracle_every": args.oracle_every,
            "oracle_checks": trace.oracle_checks,
            "oracle_mismatches": trace.oracle_mismatches,
            "blocks_recomputed_per_step": blocks_per_step,
            "incremental_seconds_per_step": best_step,
            "incremental_seconds_per_step_mean": mean_step,
            "cold_seconds_per_step": best_cold,
            "cold_seconds_per_step_mean": mean_cold,
            "speedup": speedup,
            "edits_per_second": edits_per_second,
            "threshold": args.threshold,
        },
    )
    if not trace.converged:
        print(
            f"FAIL: {trace.oracle_mismatches} of {trace.oracle_checks} oracle "
            "checkpoints diverged from cold analysis"
        )
        return 1
    if speedup < args.threshold:
        print(
            f"FAIL: incremental step only {speedup:.1f}x faster than cold "
            f"re-analysis (< {args.threshold:.1f}x)"
        )
        return 1
    print(
        f"PASS: {trace.oracle_checks} oracle checkpoints matched; "
        f"incremental >= {args.threshold:.1f}x faster than cold per step"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
