"""Ablation benchmarks for the design choices called out in DESIGN.md.

* optimized (SCC-based) vs. naive (paper-literal triple loop) Algorithm 2;
* attribute- vs. tuple-granularity dependency tracking;
* foreign keys on vs. off;
* unfolding depth 2 (Proposition 6.1) vs. 3 — same verdicts, more nodes.
"""

import pytest

from repro.btp.unfold import unfold
from repro.detection.typeii import is_robust_type2, is_robust_type2_naive
from repro.summary.construct import construct_summary_graph
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP, ATTR_DEP_FK, TPL_DEP_FK
from repro.workloads import auction_n


@pytest.fixture(scope="module")
def tpcc_graph(workloads_by_name):
    return workloads_by_name["TPC-C"].summary_graph(ATTR_DEP_FK)


@pytest.fixture(scope="module")
def auction8_graph():
    workload = auction_n(8)
    return construct_summary_graph(
        unfold(workload.programs), workload.schema, ATTR_DEP_FK
    )


class TestAlgorithm2Variants:
    def test_optimized_on_tpcc(self, benchmark, tpcc_graph):
        assert benchmark(is_robust_type2, tpcc_graph) is False

    def test_naive_on_tpcc(self, benchmark, tpcc_graph):
        assert benchmark(is_robust_type2_naive, tpcc_graph) is False

    def test_optimized_on_auction8(self, benchmark, auction8_graph):
        assert benchmark(is_robust_type2, auction8_graph) is True

    def test_naive_on_auction8(self, benchmark, auction8_graph):
        assert benchmark(is_robust_type2_naive, auction8_graph) is True


class TestSettingsAblation:
    @pytest.mark.parametrize("settings", ALL_SETTINGS, ids=lambda s: s.label)
    def test_tpcc_construction_per_setting(self, benchmark, workloads_by_name, settings):
        workload = workloads_by_name["TPC-C"]
        ltps = workload.unfolded()
        graph = benchmark(construct_summary_graph, ltps, workload.schema, settings)
        assert len(graph) == 13

    def test_fk_reduces_counterflow(self, workloads_by_name):
        workload = workloads_by_name["TPC-C"]
        with_fk = workload.summary_graph(ATTR_DEP_FK)
        without_fk = workload.summary_graph(ATTR_DEP)
        assert with_fk.counterflow_count < without_fk.counterflow_count

    def test_tuple_granularity_adds_edges(self, workloads_by_name):
        workload = workloads_by_name["TPC-C"]
        assert (
            workload.summary_graph(TPL_DEP_FK).edge_count
            > workload.summary_graph(ATTR_DEP_FK).edge_count
        )


class TestUnfoldDepth:
    @pytest.mark.parametrize("depth", [2, 3])
    def test_tpcc_pipeline_at_depth(self, benchmark, workloads_by_name, depth):
        workload = workloads_by_name["TPC-C"]

        def run():
            ltps = unfold(workload.programs, depth)
            graph = construct_summary_graph(ltps, workload.schema, ATTR_DEP_FK)
            return len(ltps), is_robust_type2(graph)

        nodes, robust = benchmark(run)
        assert robust is False
        assert nodes == {2: 13, 3: 15}[depth]
