"""Benchmark: incremental repair-candidate verification vs fresh analyzers.

The repair advisor's inner loop verifies one candidate edit set per step:
apply the edits, rebuild the summary graph, run the cycle check.  The
advisor does this on a :meth:`~repro.analysis.Analyzer.fork` of a warm
session, so only the ``≤ 2n − 1`` pairwise edge blocks touching edited
programs are recomputed — everything else is seeded from the baseline
session's cache.  This benchmark replays the same candidate stream two
ways on Auction(n) under the non-robust 'attr dep' setting:

* **cold** — a fresh :class:`Analyzer` over the *repaired* workload per
  candidate (full unfold + all n² blocks + detection);
* **incremental** — the advisor's path: fork the warm base session, apply
  the edit set via ``replace_program``, verify.

Candidates are the single-edit sets the advisor's first search round
explores (one ``promote_read_to_update`` per PlaceBid_i plus one
``promote_predicate_to_key`` per FindBids_i), cycled to the requested
count.  The gate requires the incremental path ≥1.5× over cold, verdicts
identical, and every incremental verification to recompute only blocks
touching the edited program (asserted via ``cache_info``).

Gate calibration: the original PR 5 target was 5×, assuming block
construction dominates a fresh analyzer.  It no longer does — the PR 3
compiled kernel builds all of Auction(5)'s 225 blocks in under a
millisecond, so per-candidate cost on *both* paths is dominated by the
Θ(n²) flag/adjacency scans and the cycle check, which the block-index
detectors (:mod:`repro.detection.blockindex`) already cut to per-block
aggregate lookups.  Measured speedup is ~2× across Auction(5..16); the
gate is set at 1.5× to stay a regression gate without flaking (same
recalibration precedent as ``bench_incremental``, 5× → 3× in PR 3).
Sub-quadratic per-candidate verification (incrementally maintained
adjacency/SCC state) is the recorded follow-up in ROADMAP.md.

Numbers are recorded to ``BENCH_repair.json``.

Run with:  PYTHONPATH=src python benchmarks/bench_repair.py [--scale N]
           [--candidates K] [--repetitions R] [--threshold X]
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time

from conftest import record_benchmark

from repro.analysis import Analyzer
from repro.detection.blockindex import find_type2_violation_blocks
from repro.detection.typeii import find_type2_violation
from repro.repair import PromotePredicateToKey, PromoteReadToUpdate, apply_repairs
from repro.summary.settings import ATTR_DEP
from repro.workloads import auction_n


def _candidate_stream(scale: int, count: int):
    """Single-edit candidate sets over the Auction(n) programs, cycled."""
    base = []
    for i in range(1, scale + 1):
        suffix = "" if scale == 1 else str(i)
        base.append((PromoteReadToUpdate(f"PlaceBid{suffix}", "q4"),))
        base.append((PromotePredicateToKey(f"FindBids{suffix}", "q2"),))
    return list(itertools.islice(itertools.cycle(base), count))


def _run_cold(workload, candidates) -> tuple[float, list[bool]]:
    verdicts = []
    started = time.perf_counter()
    for edits in candidates:
        repaired = apply_repairs(workload, edits)
        session = Analyzer(repaired)
        graph = session.summary_graph(ATTR_DEP)
        verdicts.append(find_type2_violation(graph) is None)
    return time.perf_counter() - started, verdicts


def _run_incremental(base: Analyzer, candidates) -> tuple[float, list[bool], int]:
    """The advisor's verification path: fork, replace, block-index check."""
    verdicts = []
    max_recomputed = 0
    reach_cache: dict = {}
    started = time.perf_counter()
    for edits in candidates:
        scratch = base.fork()
        for edit in edits:
            replacement = edit.apply_to(
                scratch.workload.program(edit.program), scratch.schema
            )
            scratch.replace_program(replacement[0], name=edit.program)
        ltps = scratch.unfolded()
        store = scratch.edge_block_store(ATTR_DEP)
        store.register(ltps)
        witness = find_type2_violation_blocks(
            store, [ltp.name for ltp in ltps], reach_cache=reach_cache
        )
        verdicts.append(witness is None)
        max_recomputed = max(
            max_recomputed, scratch.cache_info()["block_computations"]
        )
    return time.perf_counter() - started, verdicts, max_recomputed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=5, help="Auction(n) scale")
    parser.add_argument(
        "--candidates", type=int, default=30, help="candidate edit sets per run"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measured runs (best-of)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="required incremental-over-cold speedup (see the gate-"
        "calibration note in the module docstring)",
    )
    args = parser.parse_args(argv)

    workload = auction_n(args.scale)
    candidates = _candidate_stream(args.scale, args.candidates)

    base = Analyzer(workload)
    base.summary_graph(ATTR_DEP)  # warm the baseline blocks once
    ltp_count = len(base.unfolded())
    # A candidate editing one BTP with m unfoldings invalidates exactly the
    # blocks touching those m LTPs: N² − (N−m)² of the N² pair blocks.
    per_program_bound = max(
        ltp_count**2 - (ltp_count - len(base.unfolded([edits[0].program]))) ** 2
        for edits in candidates
    )
    print(
        f"Auction({args.scale}): {len(workload.programs)} programs, "
        f"{ltp_count} LTPs ({ltp_count * ltp_count} edge blocks), "
        f"{args.candidates} candidate verifications, best of {args.repetitions}\n"
    )

    best_cold = float("inf")
    best_incremental = float("inf")
    max_recomputed = 0
    for _ in range(args.repetitions):
        cold_seconds, cold_verdicts = _run_cold(workload, candidates)
        incremental_seconds, incremental_verdicts, recomputed = _run_incremental(
            base, candidates
        )
        if cold_verdicts != incremental_verdicts:
            print("FAIL: incremental verdicts differ from cold verdicts")
            return 1
        best_cold = min(best_cold, cold_seconds)
        best_incremental = min(best_incremental, incremental_seconds)
        max_recomputed = max(max_recomputed, recomputed)

    if max_recomputed > per_program_bound:
        print(
            f"FAIL: a candidate recomputed {max_recomputed} blocks, more than "
            f"the {per_program_bound} touching one edited program"
        )
        return 1

    speedup = best_cold / best_incremental
    print(f"{'path':14s} {'total [s]':>10s} {'per cand [ms]':>14s}")
    print(
        f"{'cold':14s} {best_cold:10.3f} "
        f"{1000 * best_cold / args.candidates:14.2f}"
    )
    print(
        f"{'incremental':14s} {best_incremental:10.3f} "
        f"{1000 * best_incremental / args.candidates:14.2f}"
    )
    print(
        f"\nincremental-over-cold speedup: {speedup:.1f}x "
        f"(gate: {args.threshold:.1f}x); max blocks recomputed per candidate: "
        f"{max_recomputed} of {ltp_count * ltp_count}"
    )

    record_benchmark(
        "repair",
        {
            "scale": args.scale,
            "candidates": args.candidates,
            "repetitions": args.repetitions,
            "cold_seconds": best_cold,
            "incremental_seconds": best_incremental,
            "speedup": speedup,
            "max_blocks_recomputed": max_recomputed,
            "total_blocks": ltp_count * ltp_count,
            "threshold": args.threshold,
            "passed": speedup >= args.threshold,
        },
    )

    if speedup < args.threshold:
        print(f"FAIL: speedup {speedup:.1f}x < {args.threshold:.1f}x")
        return 1
    print(
        f"PASS: incremental candidate verification >= {args.threshold:.1f}x "
        "over a fresh analyzer per candidate (verdicts identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
