"""Benchmark for Figure 7: the type-I baseline of Alomari & Fekete [3]."""

import pytest

from repro.detection.subsets import maximal_robust_subsets
from repro.experiments import expected
from repro.experiments.figure7 import run_figure7
from repro.summary.settings import ATTR_DEP_FK


@pytest.mark.parametrize("name", ["SmallBank", "TPC-C", "Auction"])
def test_type1_subset_grid_attr_fk(benchmark, workloads_by_name, name):
    workload = workloads_by_name[name]

    def grid():
        return maximal_robust_subsets(
            workload.programs, workload.schema, ATTR_DEP_FK, "type-I"
        )

    subsets = benchmark(grid)
    abbreviated = frozenset(
        frozenset(workload.abbreviate(p) for p in subset) for subset in subsets
    )
    assert abbreviated == expected.FIGURE7[name]["attr dep + FK"]


def test_figure7_complete(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=2, iterations=1)
    assert all(cell.matches_paper for cell in result.cells)
