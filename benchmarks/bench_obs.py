"""Benchmark: observability overhead on the warm analyze hot path.

The repro.obs contract is that instrumentation is close to free: span
timers, the stage/sweep histograms and the per-request counters may cost
at most ``--threshold`` (default 5%) on warm ``analyze`` traffic, and
switching the registry off must leave only a single flag read per
instrumentation site.

Two phases over one service with a warm Auction(``--scale``) session:

1. **Overhead gate**: one fixed stream of ``--requests`` subset-analyze
   requests (distinct size-``SUBSET_SIZE`` subsets), replayed by both
   arms — metrics registry disabled vs enabled — ``--rounds`` times
   each.  The session's graph/report memos are dropped between passes
   (pairwise blocks stay warm), so every pass pays identical real graph
   assembly + detection — exactly the instrumented stages.  Passes
   alternate order within each round; since the intrinsic overhead
   bounds every round's enabled/disabled ratio from below while host
   noise only scatters rounds upward, the gate is the *best* round:
   min over rounds of (enabled_r / disabled_r) <= threshold.

2. **Byte identity**: one fixed request stream replayed disabled then
   enabled — observability must never touch response payloads.

The enabled arm must also leave a scrapeable exposition behind (request
counters and stage histograms populated).  Numbers land in
``BENCH_obs.json`` via :func:`conftest.record_benchmark`.

Run with:  PYTHONPATH=src python benchmarks/bench_obs.py [--scale N]
           [--requests R] [--threshold X]
"""

from __future__ import annotations

import argparse
import gc
import itertools
import statistics
import sys
import time

from conftest import record_benchmark

from repro.obs import metrics as obs_metrics
from repro.service import AnalysisService
from repro.summary.settings import ALL_SETTINGS
from repro.workloads import auction_n

#: Metric names the enabled arm must leave behind in the exposition —
#: the request counter and the per-stage latency histogram.
EXPECTED_METRICS = ("repro_service_requests_total", "repro_stage_seconds")

#: One fixed subset size keeps the measured work homogeneous, so the
#: per-arm medians compare like with like (Auction(5) has 10 programs:
#: C(10,5) = 252 distinct subsets, enough for 126 request pairs).
SUBSET_SIZE = 5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=5, help="Auction(n) scale")
    parser.add_argument(
        "--requests", type=int, default=252, help="requests per measured pass"
    )
    parser.add_argument(
        "--rounds", type=int, default=7, help="paired pass rounds"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.05,
        help="max allowed median per-round enabled/disabled time ratio",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []

    service = AnalysisService()
    source = f"auction({args.scale})"
    names = sorted(program.name for program in auction_n(args.scale).programs)
    stream = [
        {
            "workload": source,
            "setting": ALL_SETTINGS[index % len(ALL_SETTINGS)].label,
            "subset": list(subset),
        }
        for index, subset in enumerate(
            itertools.islice(
                itertools.combinations(names, SUBSET_SIZE), args.requests
            )
        )
    ]
    if len(stream) < args.requests:
        raise SystemExit(
            f"only {len(stream)} distinct size-{SUBSET_SIZE} subsets at "
            f"scale {args.scale}; lower --requests"
        )
    print(
        f"Auction({args.scale}): {args.requests} subset-analyze requests "
        f"per pass (size-{SUBSET_SIZE} subsets, warm pairwise blocks), "
        f"{args.rounds} paired rounds per arm\n"
    )
    # Warm the session: full-workload analyze computes every pairwise
    # block once, so the measured passes assemble graphs from cache.
    for settings in ALL_SETTINGS:
        service.handle("analyze", {"workload": source, "setting": settings.label})
    session = service.session(source)

    def run_pass(arm: str) -> float:
        # Same stream every pass: drop only the graph/report memos so the
        # work repeats (pairwise blocks — the expensive part — stay warm,
        # which is exactly the warm-analyze path the gate protects).
        with session._lock:
            session._graphs.clear()
            session._reports.clear()
        # Drain garbage left by the previous pass so collection pauses
        # cannot land on (and inflate) whichever arm runs next.
        gc.collect()
        if arm == "disabled":
            obs_metrics.disable()
        try:
            # CPU time, not wall clock: the instrumentation overhead is
            # pure CPU work, and process_time is immune to the scheduler
            # preemption that dominates wall-clock noise on shared hosts.
            started = time.process_time()
            for body in stream:
                service.handle("analyze", body)
            return time.process_time() - started
        finally:
            obs_metrics.enable()

    run_pass("enabled")  # one untimed pass absorbs first-touch costs
    ratios: list[float] = []
    seconds: dict[str, list[float]] = {"disabled": [], "enabled": []}
    for round_index in range(args.rounds):
        # Alternate which arm goes first within each round, so neither
        # arm systematically runs later into allocator or GC debt.
        order = (
            ("disabled", "enabled") if round_index % 2 == 0
            else ("enabled", "disabled")
        )
        timing = {arm: run_pass(arm) for arm in order}
        seconds["disabled"].append(timing["disabled"])
        seconds["enabled"].append(timing["enabled"])
        ratios.append(timing["enabled"] / timing["disabled"])

    # The intrinsic instrumentation overhead bounds every round's ratio
    # from below; noise (scheduler preemption, GC debt) only scatters
    # rounds *upward* from there.  Gating on the best round therefore
    # stays immune to host noise while a genuine >threshold regression —
    # which lifts the floor itself — still fails every round.
    best_disabled = min(seconds["disabled"])
    best_enabled = min(seconds["enabled"])
    ratio = min(ratios)
    print(f"{'arm':12s} {'best [s]':>12s} {'requests/s':>12s}")
    for arm, best in (("disabled", best_disabled), ("enabled", best_enabled)):
        print(f"{arm:12s} {best:12.4f} {args.requests / best:12.1f}")
    print(
        f"per-round ratios: {[f'{value:.3f}' for value in ratios]}\n"
        f"enabled-over-disabled ratio (best round): {ratio:.3f}x "
        f"(gate: {args.threshold:.2f}x)\n"
    )
    if ratio > args.threshold:
        failures.append(
            f"observability overhead {ratio:.3f}x > {args.threshold:.2f}x"
        )

    # -- byte identity: the same stream, disabled vs enabled -----------------
    fixed = [
        {"workload": source, "setting": settings.label}
        for settings in ALL_SETTINGS
    ]
    obs_metrics.disable()
    try:
        disabled_payloads = [service.handle("analyze", body) for body in fixed]
    finally:
        obs_metrics.enable()
    enabled_payloads = [service.handle("analyze", body) for body in fixed]
    identical = disabled_payloads == enabled_payloads
    if not identical:
        failures.append("payloads differ between enabled and disabled arms")

    exposition = obs_metrics.render({"worker": "0"})
    missing = [name for name in EXPECTED_METRICS if name not in exposition]
    if missing:
        failures.append(f"exposition is missing {missing} after the enabled arm")
    print(
        f"payloads identical across arms: {identical}; exposition after "
        f"enabled arm: {len(exposition.splitlines())} lines, stage "
        f"histograms present: {not missing}"
    )

    record_benchmark(
        "obs",
        {
            "scale": args.scale,
            "requests": args.requests,
            "rounds": args.rounds,
            "subset_size": SUBSET_SIZE,
            "best_disabled_seconds": best_disabled,
            "best_enabled_seconds": best_enabled,
            "per_round_ratios": ratios,
            "overhead_ratio": ratio,
            "threshold": args.threshold,
            "payloads_identical": identical,
            "exposition_lines": len(exposition.splitlines()),
            "passed": not failures,
        },
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"PASS: observability costs {ratio:.3f}x "
        f"(<= {args.threshold:.2f}x) on the warm analyze path, "
        "payloads byte-identical either way"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
