"""Benchmark: the plane-packed batch kernel vs the per-pair scalar kernel.

Three gates, one parity sweep:

1. **Single-core batch throughput** — emitting the dense nc/cf edge-block
   bitsets of every pairwise block of Auction(N) (N=24 by default) via one
   plane sweep (:func:`repro.summary.planes.dense_rows` over a packed
   :class:`~repro.summary.planes.PlaneArena`) must be
   ``--kernel-threshold`` (default 10×) faster than the scalar per-pair
   kernel (:func:`~repro.summary.pairwise._pair_block` looped over every
   ordered pair of compiled profiles).  Plane packing is *not* inside the
   timed region — it happens once per store lifetime and is recorded
   separately as ``packing_seconds``.  The frozenset reference path is
   timed too, for scale.
2. **Process backend** — rebuilding every edge block with
   ``backend="process"`` (zero-copy shared-memory planes fanned out over
   ``--workers`` workers, warm pool) must beat the serial rebuild by
   ``--process-threshold`` (default 1.3×).  The gate needs real cores: on
   hosts with <= 2 CPUs (or with ``--parity-only``) the numbers are still
   reported and recorded, but the speed gate is skipped, not failed.
3. **Subset enumeration** — ``robust_subsets`` with the
   :class:`~repro.detection.subsets.PairMatrix` fast path must beat the
   plain block-store enumeration (PR 2's path, reproduced inline) by
   ``--subsets-threshold`` (default 1.2×) on SmallBank and Auction(5)
   under the settings where the full workload is not robust.

Parity is asserted throughout: store blocks (batch kernel) equal
frozenset-reference blocks edge-for-edge on SmallBank, TPC-C and
Auction(5) under all four Section 7.2 settings; the dense bitset planes
carry exactly the edges the scalar kernel emits; process-backend graphs
equal serial ones; and the matrix verdict grids equal the plain
enumeration's.

Numbers are recorded to ``BENCH_kernel.json`` (see
:func:`conftest.record_benchmark`), including ``cpu_count`` and
``packing_seconds`` as separate fields.

Run with:  PYTHONPATH=src python benchmarks/bench_kernel.py [--scale N]
           [--repetitions R] [--workers W] [--parity-only]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from conftest import multicore_gated, record_benchmark

from repro.btp.unfold import unfold
from repro.detection.subsets import (
    _resolve_method,
    enumerate_robust_subsets,
    robust_subsets,
)
from repro.summary import planes
from repro.summary.pairwise import (
    EdgeBlockStore,
    _pair_block,
    compile_profile,
    pair_edges_reference,
)
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK
from repro.workloads import auction_n, smallbank, tpcc


def _best(callable_, repetitions: int) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


# -- gate 1: single-core batch-kernel throughput -----------------------------

def bench_single_core(scale: int, repetitions: int) -> dict:
    workload = auction_n(scale)
    schema = workload.schema
    ltps = unfold(workload.programs, 2)
    use_fk = ATTR_DEP_FK.use_foreign_keys

    def reference():
        blocks = []
        for a in ltps:
            for b in ltps:
                blocks.append(pair_edges_reference(a, b, schema, ATTR_DEP_FK))
        return blocks

    profiles = [compile_profile(l, schema, ATTR_DEP_FK) for l in ltps]

    def legacy():
        blocks = []
        for pa in profiles:
            for pb in profiles:
                blocks.append(tuple(_pair_block(pa, pb, use_fk)))
        return blocks

    interner = schema.interner
    arena = planes.PlaneArena(
        planes.words_for_bits(
            max(interner.attr_bit_count, interner.fk_bit_count, 1)
        )
    )
    for profile in profiles:
        arena.add(profile)
    rows = list(range(arena.capacity))
    view = planes.arena_view(arena)
    kernel = planes.resolve_kernel(None)

    def batch():
        return planes.dense_rows(view, rows, rows, use_fk, kernel)

    # The dense planes must carry exactly the edges the scalar kernel
    # emits: one nc bit per nc edge, one cf bit per cf edge.
    nc_plane, cf_plane = batch()
    dense_edges = (
        int.from_bytes(nc_plane, "little").bit_count()
        + int.from_bytes(cf_plane, "little").bit_count()
    )
    scalar_edges = sum(len(block) for block in legacy())
    assert dense_edges == scalar_edges, (
        f"dense bitsets carry {dense_edges} edges, scalar kernel emits "
        f"{scalar_edges}"
    )

    reference_seconds = _best(reference, repetitions)
    legacy_seconds = _best(legacy, repetitions)
    batch_seconds = _best(batch, repetitions)
    return {
        "workload": f"Auction({scale})",
        "ltps": len(ltps),
        "blocks": len(ltps) ** 2,
        "occurrence_rows": arena.capacity,
        "plane_words": arena.words,
        "plane_kernel": kernel,
        "edges": scalar_edges,
        "reference_seconds": reference_seconds,
        "legacy_seconds": legacy_seconds,
        "batch_seconds": batch_seconds,
        "packing_seconds": arena.pack_seconds,
        "speedup": legacy_seconds / batch_seconds,
        "speedup_vs_reference": reference_seconds / batch_seconds,
    }


# -- gate 2: process vs serial rebuild ---------------------------------------

def bench_backends(scale: int, repetitions: int, workers: int) -> dict:
    workload = auction_n(scale)
    ltps = unfold(workload.programs, 2)
    names = [ltp.name for ltp in ltps]

    def store_for(backend: str, jobs: int | None) -> EdgeBlockStore:
        store = EdgeBlockStore(
            workload.schema, ATTR_DEP_FK, jobs=jobs, backend=backend
        )
        store.register(ltps)
        store.ensure_blocks()  # warm: packs planes, spins up the pool
        return store

    def rebuild(store: EdgeBlockStore):
        """Drop every block and arena row, then recompute them all."""
        store.discard(names)
        store.register(ltps)
        store.ensure_blocks()

    serial_store = store_for("thread", None)
    process_store = store_for("process", workers)
    serial_edges = serial_store.graph().edges
    assert process_store.graph().edges == serial_edges, (
        "process-backend parity violated"
    )

    serial_seconds = _best(lambda: rebuild(serial_store), repetitions)
    process_seconds = _best(lambda: rebuild(process_store), repetitions)
    process_store.clear()  # shut the persistent pool down
    return {
        "workload": f"Auction({scale})",
        "workers": workers,
        "serial_seconds": serial_seconds,
        "process_seconds": process_seconds,
        "process_vs_serial": serial_seconds / process_seconds,
    }


# -- gate 3: pair-matrix subset enumeration ---------------------------------

def _plain_robust_subsets(programs, schema, settings):
    """PR 2's enumeration: block store, no pair matrix."""
    check = _resolve_method("type-II")
    ltps = unfold(programs, 2)
    store = EdgeBlockStore(schema, settings)
    store.register(ltps)
    by_origin = {program.name: [] for program in programs}
    for ltp in ltps:
        by_origin[ltp.origin].append(ltp.name)

    def check_combo(combo):
        keep = [name for origin in combo for name in by_origin[origin]]
        return check(store.graph(keep))

    return enumerate_robust_subsets(by_origin, check_combo)


def bench_subsets(repetitions: int) -> list[dict]:
    results = []
    for label, workload in (("SmallBank", smallbank()), ("Auction(5)", auction_n(5))):
        for settings in ALL_SETTINGS:
            plain = _plain_robust_subsets(workload.programs, workload.schema, settings)
            matrix = robust_subsets(workload.programs, workload.schema, settings)
            assert plain == matrix, f"verdict parity violated: {label} {settings.label}"
            full_robust = plain[frozenset(workload.program_names)]
            plain_seconds = _best(
                lambda: _plain_robust_subsets(
                    workload.programs, workload.schema, settings
                ),
                repetitions,
            )
            matrix_seconds = _best(
                lambda: robust_subsets(workload.programs, workload.schema, settings),
                repetitions,
            )
            results.append(
                {
                    "workload": label,
                    "settings": settings.label,
                    "full_set_robust": full_robust,
                    "plain_seconds": plain_seconds,
                    "matrix_seconds": matrix_seconds,
                    "speedup": plain_seconds / matrix_seconds,
                }
            )
    return results


# -- parity sweep ------------------------------------------------------------

def check_parity() -> int:
    """Store blocks (batch kernel) == reference blocks on every built-in
    workload under all four Section 7.2 settings.  Returns the number of
    blocks checked."""
    checked = 0
    for workload in (smallbank(), tpcc(), auction_n(5)):
        ltps = unfold(workload.programs, 2)
        for settings in ALL_SETTINGS:
            store = EdgeBlockStore(workload.schema, settings)
            store.register(ltps)
            for a in ltps:
                for b in ltps:
                    expected = pair_edges_reference(a, b, workload.schema, settings)
                    assert store.block(a.name, b.name) == expected, (
                        f"parity violated: {workload.name} {settings.label} "
                        f"({a.name}, {b.name})"
                    )
                    checked += 1
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=24, help="Auction(n) scale")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4, help="pool size for gate 2")
    parser.add_argument("--kernel-threshold", type=float, default=10.0)
    parser.add_argument("--process-threshold", type=float, default=1.3)
    parser.add_argument("--subsets-threshold", type=float, default=1.2)
    parser.add_argument(
        "--parity-only",
        action="store_true",
        help="assert parity (kernel, process backend, matrix) but gate no speedups",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    failures: list[str] = []

    blocks_checked = check_parity()
    print(f"parity: batch kernel == reference on {blocks_checked} blocks "
          "(SmallBank, TPC-C, Auction(5) x 4 settings)")

    single = bench_single_core(args.scale, args.repetitions)
    print(
        f"single-core  {single['workload']}: {single['blocks']} blocks  "
        f"reference {single['reference_seconds'] * 1e3:8.1f} ms  "
        f"scalar {single['legacy_seconds'] * 1e3:8.1f} ms  "
        f"batch[{single['plane_kernel']}] "
        f"{single['batch_seconds'] * 1e3:8.1f} ms  "
        f"(+pack {single['packing_seconds'] * 1e3:.1f} ms once)  "
        f"speedup {single['speedup']:.2f}x"
    )
    if not args.parity_only and single["speedup"] < args.kernel_threshold:
        failures.append(
            f"batch kernel speedup {single['speedup']:.2f}x "
            f"< {args.kernel_threshold:.1f}x over the scalar kernel"
        )

    backends = bench_backends(args.scale, args.repetitions, args.workers)
    print(
        f"backends     {backends['workload']}: serial rebuild "
        f"{backends['serial_seconds'] * 1e3:8.1f} ms  "
        f"process({args.workers}) {backends['process_seconds'] * 1e3:8.1f} ms  "
        f"process/serial {backends['process_vs_serial']:.2f}x"
    )
    # The shared skip-not-fail multicore policy lives in conftest; a
    # parity-only run skips the speed gate regardless of cores.
    process_gated = not args.parity_only and multicore_gated(
        "process backend gate"
    )
    if process_gated and backends["process_vs_serial"] < args.process_threshold:
        failures.append(
            f"process backend {backends['process_vs_serial']:.2f}x vs serial "
            f"< {args.process_threshold:.1f}x"
        )
    if args.parity_only:
        print("  (process gate skipped: parity-only run)")

    subsets = bench_subsets(max(2, args.repetitions // 2))
    for row in subsets:
        gated = not row["full_set_robust"]
        print(
            f"subsets      {row['workload']:10s} {row['settings']:14s} "
            f"plain {row['plain_seconds'] * 1e3:8.1f} ms  "
            f"matrix {row['matrix_seconds'] * 1e3:8.1f} ms  "
            f"speedup {row['speedup']:5.2f}x"
            + ("" if gated else "   (full set robust: pruning, no gate)")
        )
        if not args.parity_only and gated and row["speedup"] < args.subsets_threshold:
            failures.append(
                f"subset enumeration {row['workload']} {row['settings']!r} "
                f"speedup {row['speedup']:.2f}x < {args.subsets_threshold:.1f}x"
            )

    record_benchmark(
        "kernel",
        {
            "cpu_count": cores,
            "parity_blocks_checked": blocks_checked,
            "single_core": single,
            "backends": {**backends, "gated": process_gated},
            "subset_enumeration": subsets,
            "thresholds": {
                "kernel": args.kernel_threshold,
                "process": args.process_threshold,
                "subsets": args.subsets_threshold,
            },
            "failures": failures,
        },
    )

    print()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "PASS: parity holds everywhere"
        + (
            ""
            if args.parity_only
            else (
                f"; batch kernel >= {args.kernel_threshold:.1f}x, "
                + (
                    f"process >= {args.process_threshold:.1f}x vs serial, "
                    if process_gated
                    else "process gate skipped, "
                )
                + f"matrix >= {args.subsets_threshold:.1f}x on non-robust grids"
            )
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
