"""Benchmark: warm-pool throughput, cross-tenant block sharing, concurrency.

Three gated phases over the analysis service:

1. **Warm vs cold** (the PR 6 gate, kept): the same serial ``analyze``
   stream replayed against a fresh :class:`Analyzer` per request vs
   :meth:`AnalysisService.handle` on the warm pool — the warm path must
   sustain >= ``--threshold`` (default 5x) the cold throughput with
   byte-identical payloads.

2. **Cross-tenant sharing**: two tenants whose workloads differ in exactly
   one program (same schema) are analyzed on one service with the
   content-addressed :class:`repro.store.BlockStore` and on one with the
   store disabled.  The gate requires ``shared_hits > 0`` (the second
   tenant adopts every block not involving the differing program) *and*
   payloads bit-identical to the store-disabled service — sharing is a
   pure optimization, never a verdict channel.

3. **Concurrent mixed traffic**: a live :class:`ServiceHTTPServer` on an
   ephemeral port is driven with a mixed ``POST /v1/analyze`` / ``subsets``
   / ``graph`` + ``GET /v1/stats`` stream, serially and then by a
   ``--concurrency``-thread fan-out client.  Per-request latencies give
   p50/p99; the throughput gate (concurrent >= serial x
   ``--concurrent-threshold``) is enforced only on hosts with
   >= 3 cores — skip-not-fail on small hosts via
   :func:`conftest.multicore_gated`, the bench_kernel precedent — but the
   latency percentiles and per-request payload identity are always
   checked and recorded.

Numbers (including ``p50_seconds``/``p99_seconds``/``concurrency`` and
the store counters) are recorded to ``BENCH_service.json`` via
:func:`conftest.record_benchmark`.

Run with:  PYTHONPATH=src python benchmarks/bench_service.py [--scale N]
           [--requests R] [--repetitions K] [--threshold X]
           [--concurrency C] [--concurrent-threshold Y]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from conftest import multicore_gated, record_benchmark

from repro.analysis import Analyzer
from repro.service import AnalysisService
from repro.service.http import make_server
from repro.summary.settings import ALL_SETTINGS, AnalysisSettings
from repro.workloads import auction_n

#: Two tenant workloads over ONE schema, differing in exactly one program
#: (TenantB's ListAvailability projects one fewer column, so only that
#: program's content fingerprint changes).  Content addressing therefore
#: shares exactly (3-1)^2 = 4 of the 9 pair blocks per settings row.
_TENANT_TEMPLATE = """\
WORKLOAD Tenant

TABLE Event (event_id*, name, seats_left)
TABLE Booking (booking_id*, event_id, seat_count)
FK fk_booking_event: Booking(event_id) -> Event(event_id)

PROGRAM BookSeats
UPDATE Event SET seats_left = seats_left - :n WHERE event_id = :e;
INSERT INTO Booking VALUES (:b, :e, :n);
COMMIT;
END

PROGRAM ListAvailability
{list_availability}
COMMIT;
END

PROGRAM CancelBooking
SELECT event_id, seat_count INTO :e, :n FROM Booking WHERE booking_id = :b;
DELETE FROM Booking WHERE booking_id = :b;
UPDATE Event SET seats_left = seats_left + :n WHERE event_id = :e;
COMMIT;
END

ANNOTATE BookSeats: q1 = fk_booking_event(q2)
"""


def tenant_sources() -> tuple[str, str]:
    """Raw workload texts of the two one-program-apart tenants."""
    tenant_a = _TENANT_TEMPLATE.format(
        list_availability=(
            "SELECT name, seats_left FROM Event WHERE seats_left > 0;"
        )
    )
    tenant_b = _TENANT_TEMPLATE.format(
        list_availability="SELECT name FROM Event WHERE seats_left > 0;"
    )
    return tenant_a, tenant_b


# -- phase 1: warm pool vs fresh sessions (serial) ---------------------------
def _request_stream(workload_source: str, requests: int) -> list[dict]:
    return [
        {
            "workload": workload_source,
            "setting": ALL_SETTINGS[index % len(ALL_SETTINGS)].label,
        }
        for index in range(requests)
    ]


def _run_cold(stream: list[dict]) -> tuple[float, list[dict]]:
    """A fresh session per request — the pre-service deployment model."""
    payloads = []
    started = time.perf_counter()
    for body in stream:
        session = Analyzer(body["workload"])
        payloads.append(
            session.analyze(AnalysisSettings.from_label(body["setting"])).to_dict()
        )
    return time.perf_counter() - started, payloads


def _run_warm(service: AnalysisService, stream: list[dict]) -> tuple[float, list[dict]]:
    """The service path: validation + dispatch + warm pooled session."""
    payloads = []
    started = time.perf_counter()
    for body in stream:
        payloads.append(service.handle("analyze", body))
    return time.perf_counter() - started, payloads


# -- phase 2: cross-tenant block sharing -------------------------------------
def _tenant_payloads(service: AnalysisService) -> list[dict]:
    """Both tenants across all four settings against one service."""
    tenant_a, tenant_b = tenant_sources()
    payloads = []
    for source in (tenant_a, tenant_b):
        for settings in ALL_SETTINGS:
            payloads.append(
                service.handle(
                    "analyze", {"workload": source, "setting": settings.label}
                )
            )
    return payloads


def bench_sharing() -> dict:
    shared = AnalysisService()
    unshared = AnalysisService(block_budget=0)
    shared_payloads = _tenant_payloads(shared)
    unshared_payloads = _tenant_payloads(unshared)
    identical = shared_payloads == unshared_payloads
    info = shared.block_store.info()
    probes = info["shared_hits"] + info["misses"]
    return {
        "shared_hits": info["shared_hits"],
        "hit_rate": info["shared_hits"] / probes if probes else 0.0,
        "unique_blocks": info["unique_blocks"],
        "bytes": info["bytes"],
        "evictions": info["evictions"],
        "payloads_identical": identical,
    }


# -- phase 3: concurrent mixed HTTP traffic ----------------------------------
def _mixed_stream(scale: int, requests: int) -> list[tuple[str, str, dict | None]]:
    """(method, path, body) per request: mixed kinds, two tenants."""
    tenant_a, tenant_b = tenant_sources()
    source = f"auction({scale})"
    cycle = [
        ("POST", "/v1/analyze", {"workload": source}),
        ("POST", "/v1/analyze", {"workload": tenant_a}),
        ("POST", "/v1/subsets", {"workload": source}),
        ("POST", "/v1/analyze", {"workload": tenant_b}),
        ("GET", "/v1/stats", None),
        ("POST", "/v1/graph", {"workload": source}),
    ]
    return [cycle[index % len(cycle)] for index in range(requests)]


def _http_request(port: int, item: tuple[str, str, dict | None]) -> tuple[float, bytes]:
    method, path, body = item
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            payload = response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        payload = error.read()
        status = error.code
    elapsed = time.perf_counter() - started
    if status != 200:
        raise RuntimeError(f"{method} {path} answered {status}: {payload[:200]!r}")
    return elapsed, payload


def _drive(port: int, stream, workers: int) -> tuple[float, list[float], list[bytes]]:
    """Run the stream with ``workers`` client threads; keeps request order
    in the returned latency/payload lists regardless of completion order."""
    started = time.perf_counter()
    if workers <= 1:
        results = [_http_request(port, item) for item in stream]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(lambda item: _http_request(port, item), stream))
    wall = time.perf_counter() - started
    latencies = [latency for latency, _ in results]
    payloads = [payload for _, payload in results]
    return wall, latencies, payloads


def _percentile(latencies: list[float], fraction: float) -> float:
    ranked = sorted(latencies)
    index = min(len(ranked) - 1, max(0, round(fraction * (len(ranked) - 1))))
    return ranked[index]


def bench_concurrent(scale: int, requests: int, concurrency: int) -> dict:
    service = AnalysisService()
    server = make_server(service, "127.0.0.1", 0, quiet=True)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        stream = _mixed_stream(scale, requests)
        _drive(port, stream, 1)  # warm every session the stream touches
        serial_wall, _, serial_payloads = _drive(port, stream, 1)
        concurrent_wall, latencies, concurrent_payloads = _drive(
            port, stream, concurrency
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    # GET /v1/stats bodies legitimately differ between runs (counters);
    # every analysis payload must be bit-identical run-to-run.
    identical = all(
        serial_body == concurrent_body
        for (method, _, _), serial_body, concurrent_body in zip(
            stream, serial_payloads, concurrent_payloads
        )
        if method == "POST"
    )
    info = service.block_store.info()
    return {
        "requests": requests,
        "concurrency": concurrency,
        "serial_seconds": serial_wall,
        "concurrent_seconds": concurrent_wall,
        "serial_requests_per_second": requests / serial_wall,
        "concurrent_requests_per_second": requests / concurrent_wall,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "mean_seconds": statistics.fmean(latencies),
        "payloads_identical": identical,
        "store_shared_hits": info["shared_hits"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=5, help="Auction(n) scale")
    parser.add_argument(
        "--requests", type=int, default=40, help="requests per measured run"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measured runs (best-of)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="required warm-over-cold throughput ratio",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="client threads of the concurrent phase",
    )
    parser.add_argument(
        "--concurrent-threshold",
        type=float,
        default=1.0,
        help="required concurrent-over-serial throughput ratio "
        "(enforced on >= 3-core hosts only)",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []

    # -- phase 1: warm pool vs fresh sessions --------------------------------
    source = f"auction({args.scale})"
    workload = auction_n(args.scale)
    stream = _request_stream(source, args.requests)
    print(
        f"Auction({args.scale}): {len(workload.programs)} programs, "
        f"{args.requests} analyze requests cycling "
        f"{len(ALL_SETTINGS)} settings, best of {args.repetitions} runs\n"
    )

    service = AnalysisService()
    best_cold = float("inf")
    best_warm = float("inf")
    for _ in range(args.repetitions):
        cold_seconds, cold_payloads = _run_cold(stream)
        warm_seconds, warm_payloads = _run_warm(service, stream)
        if cold_payloads != warm_payloads:
            print("FAIL: warm service payloads differ from fresh-session payloads")
            return 1
        best_cold = min(best_cold, cold_seconds)
        best_warm = min(best_warm, warm_seconds)

    cold_rps = args.requests / best_cold
    warm_rps = args.requests / best_warm
    speedup = best_cold / best_warm
    print(f"{'path':12s} {'total [s]':>10s} {'requests/s':>12s}")
    print(f"{'cold':12s} {best_cold:10.3f} {cold_rps:12.1f}")
    print(f"{'warm pool':12s} {best_warm:10.3f} {warm_rps:12.1f}")
    print(f"warm-over-cold speedup: {speedup:.1f}x (gate: {args.threshold:.1f}x)\n")
    if speedup < args.threshold:
        failures.append(f"warm speedup {speedup:.1f}x < {args.threshold:.1f}x")

    # -- phase 2: cross-tenant block sharing ---------------------------------
    sharing = bench_sharing()
    print(
        f"cross-tenant sharing: {sharing['shared_hits']} shared hits "
        f"(hit rate {sharing['hit_rate']:.0%}), "
        f"{sharing['unique_blocks']} unique blocks, "
        f"{sharing['bytes']} bytes, "
        f"payloads identical to store-disabled: {sharing['payloads_identical']}\n"
    )
    if sharing["shared_hits"] <= 0:
        failures.append("cross-tenant warm-block hit rate is 0")
    if not sharing["payloads_identical"]:
        failures.append("store-enabled payloads differ from store-disabled")

    # -- phase 3: concurrent mixed HTTP traffic ------------------------------
    concurrent = bench_concurrent(args.scale, args.requests, args.concurrency)
    print(
        f"mixed /v1/* HTTP stream ({concurrent['requests']} requests): "
        f"serial {concurrent['serial_requests_per_second']:.1f} rps, "
        f"concurrent(x{concurrent['concurrency']}) "
        f"{concurrent['concurrent_requests_per_second']:.1f} rps, "
        f"p50 {concurrent['p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {concurrent['p99_seconds'] * 1e3:.1f} ms"
    )
    if not concurrent["payloads_identical"]:
        failures.append("concurrent payloads differ from serial payloads")
    concurrency_ratio = (
        concurrent["concurrent_requests_per_second"]
        / concurrent["serial_requests_per_second"]
    )
    concurrent_gated = multicore_gated("service concurrency gate")
    if concurrent_gated and concurrency_ratio < args.concurrent_threshold:
        failures.append(
            f"concurrent throughput {concurrency_ratio:.2f}x serial "
            f"< {args.concurrent_threshold:.1f}x"
        )

    record_benchmark(
        "service",
        {
            "scale": args.scale,
            "requests": args.requests,
            "repetitions": args.repetitions,
            "cold_seconds": best_cold,
            "warm_seconds": best_warm,
            "cold_requests_per_second": cold_rps,
            "warm_requests_per_second": warm_rps,
            "speedup": speedup,
            "threshold": args.threshold,
            "sharing": sharing,
            "concurrency": concurrent["concurrency"],
            "p50_seconds": concurrent["p50_seconds"],
            "p99_seconds": concurrent["p99_seconds"],
            "concurrent": {
                **concurrent,
                "ratio_vs_serial": concurrency_ratio,
                "gated": concurrent_gated,
                "threshold": args.concurrent_threshold,
            },
            "passed": not failures,
        },
    )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nPASS: warm pool >= {args.threshold:.1f}x cold, cross-tenant "
        f"sharing exact ({sharing['shared_hits']} hits, bit-identical "
        "verdicts), concurrent payloads identical"
        + (
            f", concurrent >= {args.concurrent_threshold:.1f}x serial"
            if concurrent_gated
            else " (throughput gate skipped on this host)"
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
