"""Benchmark: warm-pool service throughput vs a fresh Analyzer per request.

The point of :class:`repro.service.AnalysisService` is that a long-running
process should answer repeat robustness queries from warm sessions instead
of paying unfold + Algorithm 1 per request.  This benchmark replays the
same ``analyze`` request stream two ways on Auction(n):

* **cold** — what a one-shot CLI deployment does: every request builds a
  fresh :class:`Analyzer` and serializes its report;
* **warm** — the service path: every request goes through
  :meth:`AnalysisService.handle` (full request validation + dispatch) and
  lands on the pooled session, whose blocks and reports are already hot.

Requests cycle through all four Section 7.2 settings, so the warm pool is
exercised across settings rows, not just one memoized report.  The gate
requires the warm path to sustain >= 5x the cold throughput (it is
typically orders of magnitude faster; 5x keeps the gate robust on noisy
shared runners), and both paths must produce byte-identical payloads.

Numbers are recorded to ``BENCH_service.json`` via
:func:`conftest.record_benchmark`.

Run with:  PYTHONPATH=src python benchmarks/bench_service.py [--scale N]
           [--requests R] [--repetitions K] [--threshold X]
"""

from __future__ import annotations

import argparse
import sys
import time

from conftest import record_benchmark

from repro.analysis import Analyzer
from repro.service import AnalysisService
from repro.summary.settings import ALL_SETTINGS, AnalysisSettings
from repro.workloads import auction_n


def _request_stream(workload_source: str, requests: int) -> list[dict]:
    return [
        {
            "workload": workload_source,
            "setting": ALL_SETTINGS[index % len(ALL_SETTINGS)].label,
        }
        for index in range(requests)
    ]


def _run_cold(stream: list[dict]) -> tuple[float, list[dict]]:
    """A fresh session per request — the pre-service deployment model."""
    payloads = []
    started = time.perf_counter()
    for body in stream:
        session = Analyzer(body["workload"])
        payloads.append(
            session.analyze(AnalysisSettings.from_label(body["setting"])).to_dict()
        )
    return time.perf_counter() - started, payloads


def _run_warm(service: AnalysisService, stream: list[dict]) -> tuple[float, list[dict]]:
    """The service path: validation + dispatch + warm pooled session."""
    payloads = []
    started = time.perf_counter()
    for body in stream:
        payloads.append(service.handle("analyze", body))
    return time.perf_counter() - started, payloads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=5, help="Auction(n) scale")
    parser.add_argument(
        "--requests", type=int, default=40, help="requests per measured run"
    )
    parser.add_argument(
        "--repetitions", type=int, default=3, help="measured runs (best-of)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="required warm-over-cold throughput ratio",
    )
    args = parser.parse_args(argv)

    source = f"auction({args.scale})"
    workload = auction_n(args.scale)
    stream = _request_stream(source, args.requests)
    print(
        f"Auction({args.scale}): {len(workload.programs)} programs, "
        f"{args.requests} analyze requests cycling "
        f"{len(ALL_SETTINGS)} settings, best of {args.repetitions} runs\n"
    )

    service = AnalysisService()
    best_cold = float("inf")
    best_warm = float("inf")
    reference = None
    for _ in range(args.repetitions):
        cold_seconds, cold_payloads = _run_cold(stream)
        warm_seconds, warm_payloads = _run_warm(service, stream)
        if cold_payloads != warm_payloads:
            print("FAIL: warm service payloads differ from fresh-session payloads")
            return 1
        if reference is None:
            reference = cold_payloads
        best_cold = min(best_cold, cold_seconds)
        best_warm = min(best_warm, warm_seconds)

    cold_rps = args.requests / best_cold
    warm_rps = args.requests / best_warm
    speedup = best_cold / best_warm
    print(f"{'path':12s} {'total [s]':>10s} {'requests/s':>12s}")
    print(f"{'cold':12s} {best_cold:10.3f} {cold_rps:12.1f}")
    print(f"{'warm pool':12s} {best_warm:10.3f} {warm_rps:12.1f}")
    print(f"\nwarm-over-cold speedup: {speedup:.1f}x (gate: {args.threshold:.1f}x)")

    record_benchmark(
        "service",
        {
            "scale": args.scale,
            "requests": args.requests,
            "repetitions": args.repetitions,
            "cold_seconds": best_cold,
            "warm_seconds": best_warm,
            "cold_requests_per_second": cold_rps,
            "warm_requests_per_second": warm_rps,
            "speedup": speedup,
            "threshold": args.threshold,
            "passed": speedup >= args.threshold,
        },
    )

    if speedup < args.threshold:
        print(f"FAIL: speedup {speedup:.1f}x < {args.threshold:.1f}x")
        return 1
    print(
        f"PASS: warm service pool >= {args.threshold:.1f}x over a fresh "
        "Analyzer per request (payloads byte-identical)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
