"""Shared benchmark fixtures and the BENCH_*.json trajectory recorder."""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.workloads import auction, smallbank, tpcc

#: Where BENCH_*.json files land: the repository root, next to README.md,
#: so CI can upload them as artifacts with one glob.
RECORD_DIR = Path(__file__).resolve().parent.parent

#: Minimum host cores for speed gates that need real parallel hardware:
#: on <= 2 cores fan-out (process sweeps, concurrent HTTP traffic) can
#: only lose to serial, so those gates skip instead of failing.
MULTICORE_MIN_CORES = 3


def multicore_gated(gate_name: str) -> bool:
    """Whether a multi-core-only speed gate should be *enforced* here.

    The shared skip-not-fail policy (bench_kernel's process gate, the
    service concurrency gate): returns ``False`` — printing the skip so
    logs show the gate was considered, not forgotten — on hosts with
    fewer than :data:`MULTICORE_MIN_CORES` cores, where the parallel
    path degrades to serial by design and the gate cannot be meaningful.
    """
    cores = os.cpu_count() or 1
    if cores >= MULTICORE_MIN_CORES:
        return True
    print(
        f"  {gate_name}: SKIPPED (gate needs >= {MULTICORE_MIN_CORES} "
        f"cores, host has {cores})"
    )
    return False


def record_benchmark(name: str, data: dict, record_dir: Path | None = None) -> Path:
    """Write one gated benchmark run's numbers to ``BENCH_<name>.json``.

    The payload is machine-readable trajectory data: whatever numbers the
    benchmark gates on, wrapped with enough environment context (python
    version, platform, CPU count, timestamp) to compare runs across
    commits.  Each run overwrites the previous file — the history lives in
    CI artifacts, not in the working tree.
    """
    path = (record_dir or RECORD_DIR) / f"BENCH_{name}.json"
    payload = {
        "benchmark": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        **data,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


@pytest.fixture(scope="session")
def workloads_by_name():
    return {"SmallBank": smallbank(), "TPC-C": tpcc(), "Auction": auction()}
