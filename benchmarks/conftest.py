"""Shared benchmark fixtures."""

import pytest

from repro.workloads import auction, smallbank, tpcc


@pytest.fixture(scope="session")
def workloads_by_name():
    return {"SmallBank": smallbank(), "TPC-C": tpcc(), "Auction": auction()}
