"""Benchmark: block-store-backed enumeration vs the seed per-subset pipeline.

The seed's ``robust_subsets`` re-unfolded the programs and re-ran Algorithm 1
for every candidate subset that anti-monotone pruning could not skip.  Both
the :class:`repro.analysis.Analyzer` session and today's one-shot
``repro.detection.subsets.robust_subsets`` instead compute each pairwise
edge block once and assemble every candidate subset's graph from cached
blocks, so the full pipeline runs at most once per setting.  The seed
algorithm is reproduced inline here as the baseline.

The difference only shows when pruning does not collapse the search —
i.e. on settings where the full workload is *not* robust (on Auction that
is 'tpl dep' and 'attr dep'; under 'attr dep + FK' the full set is robust
and both paths build a single graph).  The default run checks a >=2x
speedup on those settings for Auction(5), for the session and the one-shot
path alike.

Run with:  PYTHONPATH=src python benchmarks/bench_api.py [--scale N]
           [--repetitions R] [--threshold X]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Analyzer
from repro.btp.unfold import unfold
from repro.detection.subsets import (
    _resolve_method,
    enumerate_robust_subsets,
    robust_subsets,
)
from repro.summary.construct import construct_summary_graph
from repro.summary.settings import ALL_SETTINGS
from repro.workloads import auction_n


def seed_robust_subsets(programs, schema, settings):
    """The pre-block-store enumeration: a full pipeline per tested subset."""
    check = _resolve_method("type-II")
    by_name = {program.name: program for program in programs}

    def check_combo(combo):
        graph = construct_summary_graph(
            unfold([by_name[name] for name in combo]), schema, settings
        )
        return check(graph)

    return enumerate_robust_subsets(by_name, check_combo)


def _time(callable_, repetitions: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=5, help="Auction(n) scale")
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="required speedup on settings where the full set is non-robust",
    )
    args = parser.parse_args(argv)

    workload = auction_n(args.scale)
    print(
        f"Auction({args.scale}): {len(workload.programs)} programs, "
        f"{2 ** len(workload.programs) - 1} non-empty subsets, "
        f"best of {args.repetitions} runs\n"
    )
    print(
        f"{'setting':14s} {'seed [s]':>10s} {'one-shot [s]':>13s} "
        f"{'session [s]':>12s} {'speedup':>8s}"
    )

    failures = []
    for settings in ALL_SETTINGS:
        seed_seconds, seed_verdicts = _time(
            lambda: seed_robust_subsets(workload.programs, workload.schema, settings),
            args.repetitions,
        )
        oneshot_seconds, oneshot_verdicts = _time(
            lambda: robust_subsets(workload.programs, workload.schema, settings),
            args.repetitions,
        )
        session_seconds, session_verdicts = _time(
            lambda: Analyzer(workload).robust_subsets(settings), args.repetitions
        )
        if seed_verdicts != session_verdicts or seed_verdicts != oneshot_verdicts:
            print(f"FAIL: verdicts differ under {settings.label!r}")
            return 1
        speedup = seed_seconds / session_seconds
        oneshot_speedup = seed_seconds / oneshot_seconds
        full_robust = seed_verdicts[frozenset(workload.program_names)]
        gated = not full_robust  # pruning collapses the robust settings
        print(
            f"{settings.label:14s} {seed_seconds:10.3f} {oneshot_seconds:13.3f} "
            f"{session_seconds:12.3f} {speedup:7.1f}x"
            + ("" if gated else "   (full set robust: pruning, no gate)")
        )
        if gated and (speedup < args.threshold or oneshot_speedup < args.threshold):
            failures.append((settings.label, min(speedup, oneshot_speedup)))

    print()
    if failures:
        for label, speedup in failures:
            print(f"FAIL: {label!r} speedup {speedup:.1f}x < {args.threshold:.1f}x")
        return 1
    print(
        f"PASS: block-store paths >= {args.threshold:.1f}x faster wherever the "
        "full pipeline dominates (verdicts identical on all settings)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
