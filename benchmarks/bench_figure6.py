"""Benchmark for Figure 6: robust-subset detection via Algorithm 2.

Measures the full subset grid per benchmark (all non-empty program subsets
under the 'attr dep + FK' setting) and the complete 3-benchmark × 4-setting
figure; asserts the maximal robust subsets the paper reports.
"""

import pytest

from repro.detection.subsets import maximal_robust_subsets
from repro.experiments import expected
from repro.experiments.figure6 import run_figure6
from repro.summary.settings import ATTR_DEP_FK


@pytest.mark.parametrize("name", ["SmallBank", "TPC-C", "Auction"])
def test_subset_grid_attr_fk(benchmark, workloads_by_name, name):
    workload = workloads_by_name[name]

    def grid():
        return maximal_robust_subsets(
            workload.programs, workload.schema, ATTR_DEP_FK, "type-II"
        )

    subsets = benchmark(grid)
    abbreviated = frozenset(
        frozenset(workload.abbreviate(p) for p in subset) for subset in subsets
    )
    assert abbreviated == expected.FIGURE6[name]["attr dep + FK"]


def test_figure6_complete(benchmark):
    result = benchmark.pedantic(run_figure6, rounds=2, iterations=1)
    assert all(cell.matches_paper for cell in result.cells)
