"""Benchmark: incremental replace-one-program re-analysis vs full rebuild.

Algorithm 1 adds summary-graph edges per ordered pair of programs, so
replacing one program of an ``n``-program workload invalidates only the
pairwise edge blocks that involve it — at most ``2n − 1`` of the ``n²``
program-pair blocks — plus that one program's unfolding.  A persistent
:class:`repro.analysis.Analyzer` session (:meth:`replace_program`) therefore
re-analyzes a one-program edit far faster than rebuilding the pipeline from
scratch.

The benchmark edits one ``FindBids_i`` program of Auction(n) back and forth
between two versions, timing (a) a fresh session per edit (full rebuild) and
(b) one warm session using ``replace_program`` (incremental), and gates a
>=3x speedup on the best-of-R per-edit times (single edits are
millisecond-scale, so one GC pause or CPU-steal spike must not fail the
gate).  Reports of both paths are checked for equality on every repetition.

The gate was >=5x before the compiled interference kernel
(``benchmarks/bench_kernel.py``): the kernel made the *rebuild* baseline
~3x faster, so the ratio compressed even though incremental edits also got
~2x faster in absolute terms — the per-edit floor is now the graph assembly
and Algorithm 2 run that both paths share, not block recomputation.

Run with:  PYTHONPATH=src python benchmarks/bench_incremental.py [--scale N]
           [--repetitions R] [--threshold X]
"""

from __future__ import annotations

import argparse
import sys
import time

from conftest import record_benchmark

from repro.analysis import Analyzer
from repro.btp.program import BTP, seq
from repro.btp.statement import Statement
from repro.summary.settings import ATTR_DEP_FK
from repro.workloads import auction_n
from repro.workloads.base import Workload


def _find_bids_variant(workload: Workload, name: str) -> BTP:
    """A modified version of one FindBids program (extra key-based read)."""
    original = workload.program(name)
    buyer = workload.schema.relation("Buyer")
    bids_relation = next(
        stmt.relation for stmt in _statements(original) if stmt.relation != "Buyer"
    )
    bids = workload.schema.relation(bids_relation)
    return BTP(
        name,
        seq(
            Statement.key_update("q1", buyer, reads=["calls"], writes=["calls"]),
            Statement.pred_select("q2", bids, predicate=["bid"], reads=["bid"]),
            Statement.key_select("q2b", bids, reads=["bid"]),
        ),
    )


def _statements(program: BTP):
    """All statements mentioned in a BTP, in syntax order."""
    from repro.btp.program import Choice, Loop, Opt, Seq, Stmt

    def walk(node):
        if isinstance(node, Stmt):
            yield node.statement
        elif isinstance(node, Seq):
            for part in node.parts:
                yield from walk(part)
        elif isinstance(node, (Choice,)):
            yield from walk(node.left)
            yield from walk(node.right)
        elif isinstance(node, (Opt, Loop)):
            yield from walk(node.body)

    return list(walk(program.root))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=24, help="Auction(n) scale")
    parser.add_argument("--repetitions", type=int, default=6)
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="required speedup of incremental replace vs full rebuild "
        "(recalibrated from 5.0: the compiled kernel sped the rebuild "
        "baseline up ~3x, compressing the ratio)",
    )
    args = parser.parse_args(argv)

    workload = auction_n(args.scale)
    target = workload.program_names[0]  # FindBids(1)
    original = workload.program(target)
    variant = _find_bids_variant(workload, target)
    settings = ATTR_DEP_FK

    session = Analyzer(workload)
    session.analyze(settings)  # warm the session once (not timed)
    blocks_before = session.cache_info()["block_computations"]

    incremental_best = float("inf")
    rebuild_best = float("inf")
    for repetition in range(args.repetitions):
        edited = variant if repetition % 2 == 0 else original

        started = time.perf_counter()
        session.replace_program(edited)
        incremental_report = session.analyze(settings)
        incremental_best = min(incremental_best, time.perf_counter() - started)

        started = time.perf_counter()
        fresh = Analyzer(workload)
        fresh.replace_program(edited)  # cold session: nothing cached to evict
        rebuild_report = fresh.analyze(settings)
        rebuild_best = min(rebuild_best, time.perf_counter() - started)

        if incremental_report.to_dict() != rebuild_report.to_dict():
            print(f"FAIL: reports differ on repetition {repetition}")
            return 1

    info = session.cache_info()
    ltp_count = info["edge_blocks"] ** 0.5
    recomputed = (info["block_computations"] - blocks_before) / args.repetitions
    speedup = rebuild_best / incremental_best
    print(
        f"Auction({args.scale}): {len(workload.programs)} programs, "
        f"{info['edge_blocks']} edge blocks ({ltp_count:.0f} LTPs); "
        f"replacing {target!r} recomputes ~{recomputed:.0f} blocks/edit"
    )
    print(
        f"full rebuild: {rebuild_best * 1e3:8.1f} ms/edit   "
        f"incremental: {incremental_best * 1e3:8.1f} ms/edit   "
        f"speedup: {speedup:.1f}x  (best of {args.repetitions})"
    )
    record_benchmark(
        "incremental",
        {
            "workload": f"Auction({args.scale})",
            "programs": len(workload.programs),
            "edge_blocks": info["edge_blocks"],
            "blocks_recomputed_per_edit": recomputed,
            "rebuild_seconds_per_edit": rebuild_best,
            "incremental_seconds_per_edit": incremental_best,
            "speedup": speedup,
            "threshold": args.threshold,
            "repetitions": args.repetitions,
        },
    )
    if speedup < args.threshold:
        print(f"FAIL: incremental speedup {speedup:.1f}x < {args.threshold:.1f}x")
        return 1
    print(f"PASS: incremental replace >= {args.threshold:.1f}x faster than rebuild")
    return 0


if __name__ == "__main__":
    sys.exit(main())
