"""Benchmark for Figure 8: Auction(n) scalability of robustness detection.

The paper's Figure 8 plots detection time and summary-graph size against
the scaling factor n.  Each benchmark case runs the complete pipeline —
``Unfold≤2`` → Algorithm 1 → Algorithm 2 — for one n and asserts the
closed-form edge count ``9n² + 8n`` (n counterflow) plus robustness.
"""

import pytest

from repro.btp.unfold import unfold
from repro.detection.typeii import is_robust_type2
from repro.experiments import expected
from repro.summary.construct import construct_summary_graph
from repro.summary.settings import ATTR_DEP_FK
from repro.workloads import auction_n

SCALES = [1, 2, 4, 8, 16, 32]


@pytest.mark.parametrize("n", SCALES)
def test_auction_n_detection(benchmark, n):
    workload = auction_n(n)

    def detect():
        ltps = unfold(workload.programs)
        graph = construct_summary_graph(ltps, workload.schema, ATTR_DEP_FK)
        return graph, is_robust_type2(graph)

    graph, robust = benchmark.pedantic(detect, rounds=3, iterations=1)
    assert robust  # Section 7.3: Auction(n) is robust for every n
    assert graph.edge_count == expected.auction_n_edges(n)
    assert graph.counterflow_count == expected.auction_n_counterflow(n)


@pytest.mark.parametrize("n", [4, 16])
def test_auction_n_construction_only(benchmark, n):
    """Isolates Algorithm 1 (the dominant cost as the graph grows)."""
    workload = auction_n(n)
    ltps = unfold(workload.programs)

    def construct():
        return construct_summary_graph(ltps, workload.schema, ATTR_DEP_FK)

    graph = benchmark(construct)
    assert graph.edge_count == expected.auction_n_edges(n)


@pytest.mark.parametrize("n", [4, 16])
def test_auction_n_cycle_test_only(benchmark, n):
    """Isolates Algorithm 2 given a prebuilt summary graph."""
    workload = auction_n(n)
    graph = construct_summary_graph(
        unfold(workload.programs), workload.schema, ATTR_DEP_FK
    )
    assert benchmark(is_robust_type2, graph)
