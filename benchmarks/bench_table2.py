"""Benchmark for Table 2: summary-graph construction per benchmark.

Regenerates the Table 2 characteristics (and asserts they match the paper)
while measuring the cost of ``Unfold≤2`` + Algorithm 1 for each workload.
"""

import pytest

from repro.experiments import expected
from repro.experiments.table2 import characterize, run_table2
from repro.summary.settings import ATTR_DEP_FK


@pytest.mark.parametrize("name", ["SmallBank", "TPC-C", "Auction"])
def test_summary_graph_construction(benchmark, workloads_by_name, name):
    workload = workloads_by_name[name]

    def build():
        return workload.summary_graph(ATTR_DEP_FK)

    graph = benchmark(build)
    paper = expected.TABLE2[name]
    assert len(graph) == paper["nodes"]
    assert graph.edge_count == paper["edges"]
    assert graph.counterflow_count == paper["counterflow"]


def test_table2_full(benchmark):
    result = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    assert all(row.matches_paper() for row in result.rows)


@pytest.mark.parametrize("name", ["SmallBank", "TPC-C", "Auction"])
def test_characterize_row(benchmark, workloads_by_name, name):
    row = benchmark(characterize, workloads_by_name[name])
    assert row.matches_paper()
