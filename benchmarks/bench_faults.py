"""Benchmark: fail-closed never fail-wrong — service behavior under faults.

PR 8's contract is that injected infrastructure failures may cost retries
and latency but can never change an answer.  This benchmark proves it in
three gated phases:

* **mixed-traffic parity** — the same ~200-request ``/v1/*`` stream
  (analyze / subsets / graph cycling three workloads and all four
  Section 7.2 settings, over a capacity-2 pool with a spill directory, so
  evictions, spills and rehydrations happen constantly) runs twice: once
  fault-free, once under a seeded plan that corrupts every 5th spill
  artifact, fails every 17th spill with ``ENOSPC``, stalls every 20th
  handler and kills 10% of process-pool worker batches.  Every completed
  request must return the fault-free payload **bit-for-bit**, no
  shared-memory segment may leak, and the faulted p99 latency must stay
  within ``--p99-factor`` (default 3x) of the fault-free p99;
* **kill recovery** — a forced process-backend analysis under a
  worker-kill plan must recover (pool rebuild, then serial degrade) to
  the exact fault-free report, leaving ``/dev/shm`` clean;
* **deadline discipline** — a deadline-bound service under an injected
  stall must answer the typed ``deadline_exceeded`` envelope, never hang.

Numbers land in ``BENCH_faults.json`` via :func:`conftest.record_benchmark`.

Run with:  PYTHONPATH=src python benchmarks/bench_faults.py [--requests R]
           [--p99-factor X]
"""

from __future__ import annotations

import argparse
import glob
import sys
import tempfile
import time
import warnings

from conftest import record_benchmark

from repro.analysis import Analyzer
from repro.faults import FaultPlan, FaultRule, install_plan
from repro.service import AnalysisService, ServiceError
from repro.summary import planes
from repro.summary.settings import ALL_SETTINGS

#: The chaos plan of the mixed-traffic phase (seeded: replays identically).
TRAFFIC_PLAN = FaultPlan(
    seed=2023,
    rules=(
        FaultRule(site="worker.kill", rate=0.10),
        FaultRule(site="spill.corrupt", every=5),
        FaultRule(site="disk.full", every=17),
        FaultRule(site="handler.stall", every=20, delay_seconds=0.002),
    ),
)

WORKLOADS = ("smallbank", "auction(2)", "auction(3)")


def _request_stream(requests: int) -> list[tuple[str, dict]]:
    """A deterministic mixed ``/v1/*`` stream over three workloads."""
    stream: list[tuple[str, dict]] = []
    for index in range(requests):
        workload = WORKLOADS[index % len(WORKLOADS)]
        setting = ALL_SETTINGS[index % len(ALL_SETTINGS)].label
        if index % 7 == 3:
            stream.append(("subsets", {"workload": workload, "setting": setting}))
        elif index % 7 == 5:
            stream.append(("graph", {"workload": workload, "setting": setting}))
        else:
            stream.append(("analyze", {"workload": workload, "setting": setting}))
    return stream


def _run_stream(
    stream: list[tuple[str, dict]], plan: FaultPlan | None
) -> tuple[list[dict], list[float], dict | None]:
    """Replay the stream on a fresh spill-backed service; returns payloads,
    per-request latencies and the injector's counter snapshot."""
    with tempfile.TemporaryDirectory(prefix="repro_bench_faults_") as cache_dir:
        service = AnalysisService(capacity=2, cache_dir=cache_dir)
        injector = install_plan(plan)
        payloads: list[dict] = []
        latencies: list[float] = []
        try:
            with warnings.catch_warnings():
                # Quarantine/degrade warnings are the *expected* fault
                # telemetry here; they must not spam the benchmark log.
                warnings.simplefilter("ignore", RuntimeWarning)
                for kind, body in stream:
                    started = time.perf_counter()
                    payloads.append(service.handle(kind, body))
                    latencies.append(time.perf_counter() - started)
        finally:
            install_plan(None)
        snapshot = injector.snapshot() if injector is not None else None
    return payloads, latencies, snapshot


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _kill_recovery_phase() -> dict:
    """Forced process backend under a worker-kill plan: the recovery ladder
    must land on the exact fault-free report with no shm residue."""
    reference = Analyzer("auction(3)").analyze(ALL_SETTINGS[0]).to_dict()
    session = Analyzer("auction(3)", backend="process")
    session._degrade_guard._cpu_count = 8  # the bench host may have 1 core
    plan = FaultPlan(seed=7, rules=(FaultRule(site="worker.kill", every=1),))
    injector = install_plan(plan)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = session.analyze(ALL_SETTINGS[0]).to_dict()
    finally:
        install_plan(None)
    info = session.fault_info()
    return {
        "bit_identical": report == reference,
        "recoveries": info["recoveries"],
        "degraded": info["degraded"],
        "worker_kills_fired": injector.snapshot()["fired"].get("worker.kill", 0),
        "shm_residue": sorted(glob.glob("/dev/shm/repro_*")),
        "live_segments": list(planes.live_segments()),
    }


def _deadline_phase() -> dict:
    """A stalled handler under a tight deadline must answer the typed 504
    envelope — and a clean retry must succeed."""
    service = AnalysisService(deadline_seconds=0.02)
    plan = FaultPlan(
        rules=(FaultRule(site="handler.stall", every=1, times=1,
                         delay_seconds=0.1),)
    )
    install_plan(plan)
    envelope = None
    try:
        service.handle("analyze", {"workload": "smallbank"})
    except ServiceError as error:
        envelope = error.envelope["error"]
    finally:
        install_plan(None)
    retry_ok = "robust" in service.handle("analyze", {"workload": "smallbank"})
    return {
        "typed_504": envelope is not None
        and envelope["type"] == "deadline_exceeded",
        "retry_succeeded": retry_ok,
        "deadline_exceeded_count": service.stats()["faults"]["deadline_exceeded"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests", type=int, default=200, help="mixed-traffic stream length"
    )
    parser.add_argument(
        "--p99-factor",
        type=float,
        default=3.0,
        help="max allowed faulted-over-fault-free p99 latency ratio",
    )
    args = parser.parse_args(argv)

    stream = _request_stream(args.requests)
    kinds = sorted({kind for kind, _ in stream})
    print(
        f"mixed traffic: {len(stream)} requests ({', '.join(kinds)}) over "
        f"{len(WORKLOADS)} workloads, capacity-2 pool with spill directory"
    )

    clean_payloads, clean_latencies, _ = _run_stream(stream, None)
    fault_payloads, fault_latencies, snapshot = _run_stream(stream, TRAFFIC_PLAN)

    wrong = sum(
        1 for clean, faulted in zip(clean_payloads, fault_payloads)
        if clean != faulted
    )
    clean_p99 = _p99(clean_latencies)
    fault_p99 = _p99(fault_latencies)
    ratio = fault_p99 / clean_p99 if clean_p99 > 0 else float("inf")
    shm_residue = sorted(glob.glob("/dev/shm/repro_*"))
    live = list(planes.live_segments())

    print(f"  wrong verdicts: {wrong}/{len(stream)}")
    print(f"  faults fired:   {snapshot['fired'] if snapshot else {}}")
    print(
        f"  p99 latency:    {clean_p99 * 1000:.2f} ms fault-free, "
        f"{fault_p99 * 1000:.2f} ms faulted "
        f"({ratio:.2f}x; gate {args.p99_factor:.1f}x)"
    )
    print(f"  shm residue:    {shm_residue or 'none'}")

    kill = _kill_recovery_phase()
    print(
        f"kill recovery: bit_identical={kill['bit_identical']} "
        f"recoveries={kill['recoveries']} degraded={kill['degraded']} "
        f"kills_fired={kill['worker_kills_fired']}"
    )
    deadline = _deadline_phase()
    print(
        f"deadline: typed_504={deadline['typed_504']} "
        f"retry_succeeded={deadline['retry_succeeded']}"
    )

    checks = {
        "zero_wrong_verdicts": wrong == 0,
        "zero_shm_leaks": not shm_residue and not live
        and not kill["shm_residue"] and not kill["live_segments"],
        "p99_within_factor": ratio <= args.p99_factor,
        "kill_recovery_bit_identical": kill["bit_identical"]
        and kill["worker_kills_fired"] > 0,
        "deadline_typed_504": deadline["typed_504"]
        and deadline["retry_succeeded"],
    }

    record_benchmark(
        "faults",
        {
            "requests": len(stream),
            "plan": TRAFFIC_PLAN.to_dict(),
            "faults_fired": snapshot["fired"] if snapshot else {},
            "wrong_verdicts": wrong,
            "clean_p99_seconds": clean_p99,
            "faulted_p99_seconds": fault_p99,
            "p99_ratio": ratio,
            "p99_factor_gate": args.p99_factor,
            "kill_recovery": {
                key: value for key, value in kill.items()
                if key not in ("shm_residue", "live_segments")
            },
            "deadline": deadline,
            "checks": checks,
            "passed": all(checks.values()),
        },
    )

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"\nFAIL: {', '.join(failed)}")
        return 1
    print(
        f"\nPASS: {len(stream)} faulted requests, zero wrong verdicts, "
        f"zero leaked segments, p99 {ratio:.2f}x <= {args.p99_factor:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
