"""Benchmarks for the MVRC execution engine and counterexample search
(the machinery behind the Section 7.2 false-negative analysis)."""

import random

import pytest

from repro.engine.executor import execute
from repro.engine.instantiate import Instantiator, TupleUniverse
from repro.engine.interleavings import random_unit_order, serial_unit_order
from repro.engine.search import find_counterexample
from repro.mvsched.dependencies import dependencies
from repro.mvsched.serialization import is_conflict_serializable


@pytest.fixture(scope="module")
def smallbank_setup(workloads_by_name):
    workload = workloads_by_name["SmallBank"]
    universe = TupleUniverse(workload.schema, {r.name: 2 for r in workload.schema})
    instantiator = Instantiator(universe)
    by_origin = {ltp.origin: ltp for ltp in workload.unfolded()}
    t0 = universe.existing("Account")[0]
    s0 = universe.existing("Savings")[0]
    c0 = universe.existing("Checking")[0]
    balance = instantiator.instantiate(by_origin["Balance"], [(t0,), (s0,), (c0,)])
    write_check = instantiator.instantiate(
        by_origin["WriteCheck"], [(t0,), (s0,), (c0,), (c0,)]
    )
    return workload, universe, (balance, write_check)


def test_execute_serial(benchmark, smallbank_setup):
    _, universe, transactions = smallbank_setup
    order = serial_unit_order(transactions)
    schedule = benchmark(execute, transactions, order, universe)
    assert schedule is not None


def test_execute_random_interleavings(benchmark, smallbank_setup):
    _, universe, transactions = smallbank_setup
    rng = random.Random(3)
    orders = [random_unit_order(transactions, rng) for _ in range(64)]

    def run_batch():
        produced = 0
        for order in orders:
            if execute(transactions, order, universe) is not None:
                produced += 1
        return produced

    produced = benchmark(run_batch)
    assert produced > 0


def test_dependency_computation(benchmark, smallbank_setup):
    _, universe, transactions = smallbank_setup
    schedule = execute(transactions, serial_unit_order(transactions), universe)
    deps = benchmark(dependencies, schedule)
    assert deps  # Balance and WriteCheck conflict on Checking


def test_serializability_check(benchmark, smallbank_setup):
    _, universe, transactions = smallbank_setup
    schedule = execute(transactions, serial_unit_order(transactions), universe)
    assert benchmark(is_conflict_serializable, schedule)


def test_counterexample_search_write_check(benchmark, workloads_by_name):
    """The exhaustive search that certifies {WriteCheck} non-robust."""
    workload = workloads_by_name["SmallBank"]
    subset = workload.subset(["WriteCheck"])

    def search():
        return find_counterexample(subset.programs, workload.schema, universe_size=1)

    result = benchmark.pedantic(search, rounds=3, iterations=1)
    assert result is not None


def test_exhaustive_search_robust_pair(benchmark, workloads_by_name):
    """Exhausting the space for the robust pair {Balance, DepositChecking}."""
    workload = workloads_by_name["SmallBank"]
    subset = workload.subset(["Balance", "DepositChecking"])

    def search():
        return find_counterexample(subset.programs, workload.schema, universe_size=1)

    result = benchmark.pedantic(search, rounds=3, iterations=1)
    assert result is None
