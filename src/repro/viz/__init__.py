"""Visualization of summary graphs (the paper's Figures 4, 11, 18, 19).

:func:`to_dot` emits Graphviz DOT text — counterflow edges dashed, edge
labels carrying the statement pairs, exactly like the paper's figures.
:func:`to_text` renders an adjacency listing for terminals without
Graphviz.
"""

from repro.viz.dot import to_dot
from repro.viz.textual import to_text

__all__ = ["to_dot", "to_text"]
