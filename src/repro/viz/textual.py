"""Plain-text rendering of summary graphs (adjacency listing)."""

from __future__ import annotations

from repro.summary.graph import SummaryGraph


def to_text(graph: SummaryGraph, show_statements: bool = True) -> str:
    """Render the summary graph as an indented adjacency listing.

    Counterflow edges are marked with ``-->`` (the paper draws them
    dashed), non-counterflow edges with ``->``.
    """
    lines = [graph.describe()]
    for program in graph.programs:
        outgoing = [edge for edge in graph.edges if edge.source == program.name]
        body = "; ".join(occ.name for occ in program.occurrences) or "ε"
        lines.append(f"{program.name}  [{body}]")
        grouped: dict[tuple[str, bool], list[str]] = {}
        for edge in outgoing:
            key = (edge.target, edge.counterflow)
            grouped.setdefault(key, []).append(f"{edge.source_stmt}→{edge.target_stmt}")
        for (target, counterflow), labels in sorted(grouped.items()):
            arrow = "-->" if counterflow else "->"
            if show_statements:
                unique = ", ".join(dict.fromkeys(labels))
                lines.append(f"  {arrow} {target}  ({unique})")
            else:
                lines.append(f"  {arrow} {target}")
    return "\n".join(lines)
