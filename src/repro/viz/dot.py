"""Graphviz DOT rendering of summary graphs.

The conventions match the paper's figures: one node per (unfolded) program,
solid edges for non-counterflow dependencies, dashed edges for counterflow
dependencies, and edge labels of the form ``q1→q3`` naming the statement
pair that admits the dependency.  Parallel edges between the same programs
are merged into one arrow whose label stacks the statement pairs.
"""

from __future__ import annotations

from repro.summary.graph import SummaryGraph


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: SummaryGraph,
    name: str = "SuG",
    include_labels: bool = True,
    max_label_pairs: int = 6,
) -> str:
    """Render the summary graph as Graphviz DOT text."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  node [shape=box];"]
    for program in graph.programs:
        label = program.name
        if program.is_empty:
            label += " (ε)"
        lines.append(f"  {_quote(program.name)} [label={_quote(label)}];")
    grouped: dict[tuple[str, str, bool], list[str]] = {}
    for edge in graph.edges:
        key = (edge.source, edge.target, edge.counterflow)
        grouped.setdefault(key, []).append(f"{edge.source_stmt}→{edge.target_stmt}")
    for (source, target, counterflow), labels in grouped.items():
        attrs = []
        if counterflow:
            attrs.append("style=dashed")
        if include_labels:
            unique = list(dict.fromkeys(labels))
            if len(unique) > max_label_pairs:
                shown = unique[:max_label_pairs] + [f"… +{len(unique) - max_label_pairs}"]
            else:
                shown = unique
            attrs.append(f"label={_quote(chr(10).join(shown))}")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(source)} -> {_quote(target)}{attr_text};")
    lines.append("}")
    return "\n".join(lines)
