"""Graphviz DOT rendering of summary graphs.

The conventions match the paper's figures: one node per (unfolded) program,
solid edges for non-counterflow dependencies, dashed edges for counterflow
dependencies, and edge labels of the form ``q1→q3`` naming the statement
pair that admits the dependency.  Parallel edges between the same programs
are merged into one arrow whose label stacks the statement pairs.

Passing a :class:`~repro.detection.CycleWitness` highlights the dangerous
cycle: walk edges render red (the distinguished edges bold), the programs
on the walk get a red border, and the graph label lists the witness's
statement anchors — the exact offending statements a repair would edit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.summary.graph import SummaryGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detection.witness import CycleWitness


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    graph: SummaryGraph,
    name: str = "SuG",
    include_labels: bool = True,
    max_label_pairs: int = 6,
    witness: "CycleWitness | None" = None,
) -> str:
    """Render the summary graph as Graphviz DOT text."""
    walk_edges = set(witness.edges) if witness is not None else set()
    bold_edges = set(witness.highlighted) if witness is not None else set()
    walk_programs = {edge.source for edge in walk_edges} | {
        edge.target for edge in walk_edges
    }
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  node [shape=box];"]
    if witness is not None:
        anchors = witness.statement_anchors()
        caption = f"dangerous cycle ({witness.reason})"
        if anchors:
            caption += "\noffending statements: " + ", ".join(
                f"{program}.{stmt}@{occurrence}"
                for program, stmt, occurrence in anchors
            )
        lines.append(f"  label={_quote(caption)};")
        lines.append("  labelloc=b;")
    for program in graph.programs:
        label = program.name
        if program.is_empty:
            label += " (ε)"
        attrs = [f"label={_quote(label)}"]
        if program.name in walk_programs:
            attrs.append("color=red")
        lines.append(f"  {_quote(program.name)} [{', '.join(attrs)}];")
    grouped: dict[tuple[str, str, bool], list[str]] = {}
    group_walk: dict[tuple[str, str, bool], str | None] = {}
    for edge in graph.edges:
        key = (edge.source, edge.target, edge.counterflow)
        grouped.setdefault(key, []).append(f"{edge.source_stmt}→{edge.target_stmt}")
        if edge in bold_edges:
            group_walk[key] = "bold"
        elif edge in walk_edges:
            group_walk.setdefault(key, "walk")
    for (source, target, counterflow), labels in grouped.items():
        attrs = []
        if counterflow:
            attrs.append("style=dashed")
        role = group_walk.get((source, target, counterflow))
        if role is not None:
            attrs.append("color=red")
            if role == "bold":
                attrs.append("penwidth=2")
        if include_labels:
            unique = list(dict.fromkeys(labels))
            if len(unique) > max_label_pairs:
                shown = unique[:max_label_pairs] + [f"… +{len(unique) - max_label_pairs}"]
            else:
                shown = unique
            attrs.append(f"label={_quote(chr(10).join(shown))}")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(source)} -> {_quote(target)}{attr_text};")
    lines.append("}")
    return "\n".join(lines)
