"""The repair advisor: witness-guided search for minimal edit sets.

Given a non-robust ``(workload, settings)`` verdict, the advisor explores
the lattice of edit sets breadth-first on edit count — so the first
solutions found are minimal — and *counterexample-guided*: each failed
candidate's own cycle witness derives the next round of edits (see
:mod:`repro.repair.candidates`), which keeps the branching factor at the
handful of edits that target actual evidence instead of the full
statement × catalog cross product.

Verification rides the incremental machinery of PRs 2–4: the advisor
:meth:`forks <repro.analysis.Analyzer.fork>` the session once per
candidate, seeds every cached pairwise edge block into the fork
(``blocks_loaded``), applies the edit set via
:meth:`~repro.analysis.Analyzer.replace_program` /
:meth:`~repro.analysis.Analyzer.add_program` — which evicts only the
``≤ 2n − 1`` blocks touching edited programs — and runs the cycle check
through the block-index detectors of
:mod:`repro.detection.blockindex`, so no summary graph is ever assembled
and the dangerous-pair scan reuses per-block aggregates carried across
forks.  ``RepairSet.blocks_recomputed`` records exactly how many blocks
each verification had to recompute (``benchmarks/bench_repair.py`` gates
this path ≥5× over a fresh analyzer per candidate).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.detection.blockindex import BLOCK_WITNESS_FINDERS
from repro.detection.typei import find_type1_violation
from repro.detection.typeii import find_type2_violation
from repro.detection.witness import CycleWitness
from repro.errors import ProgramError
from repro.obs.spans import span
from repro.repair.candidates import candidate_edits
from repro.repair.edits import (
    Repair,
    SplitProgram,
    apply_program_edits,
    ordered_repairs,
    repair_from_dict,
)
from repro.summary.settings import AnalysisSettings
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.session import Analyzer

#: Graph-based witness finder per detection-method name (kept for
#: callers holding an assembled graph; the advisor itself runs the
#: block-index finders of :data:`BLOCK_WITNESS_FINDERS`).
WITNESS_FINDERS = {
    "type-II": find_type2_violation,
    "type-I": find_type1_violation,
}


@dataclass(frozen=True)
class RepairSet:
    """One verified repair: an edit set whose workload is robust.

    ``blocks_recomputed`` counts the pairwise edge blocks the incremental
    verification had to recompute (only those touching edited programs);
    ``blocks_total`` is the full pair count of the repaired workload, for
    scale.
    """

    edits: tuple[Repair, ...]
    blocks_recomputed: int
    blocks_total: int

    @property
    def size(self) -> int:
        return len(self.edits)

    def describe(self) -> str:
        lines = [f"repair ({self.size} edit{'s' if self.size != 1 else ''}):"]
        lines.extend(f"  - {edit.describe()}" for edit in self.edits)
        lines.append(
            f"  verified incrementally: {self.blocks_recomputed} of "
            f"{self.blocks_total} edge blocks recomputed"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "edits": [edit.to_dict() for edit in self.edits],
            "blocks_recomputed": self.blocks_recomputed,
            "blocks_total": self.blocks_total,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairSet":
        return cls(
            edits=tuple(repair_from_dict(item) for item in data["edits"]),
            blocks_recomputed=int(data["blocks_recomputed"]),
            blocks_total=int(data["blocks_total"]),
        )

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class RepairReport:
    """The advisor's answer for one ``(workload, settings, method)`` query.

    ``repairs`` holds the verified minimal edit sets (all the same size,
    smallest found); ``witness`` is the baseline cycle witness the search
    started from (``None`` when ``already_robust``).  ``exhausted`` is
    ``True`` when the search space up to ``max_edits`` was fully explored
    — a ``repairs == ()`` report with ``exhausted=False`` hit the
    ``max_states`` safety valve instead.
    """

    workload: str
    settings: AnalysisSettings
    method: str
    max_edits: int
    already_robust: bool
    repairs: tuple[RepairSet, ...] = ()
    witness: CycleWitness | None = None
    candidates_checked: int = 0
    exhausted: bool = True
    abbreviations: Mapping[str, str] = field(default_factory=dict, compare=False)

    @property
    def repaired(self) -> bool:
        """True when a verified repair exists (or none was needed)."""
        return self.already_robust or bool(self.repairs)

    @property
    def best(self) -> RepairSet | None:
        """The first minimal repair, if any."""
        return self.repairs[0] if self.repairs else None

    def describe(self) -> str:
        head = (
            f"workload: {self.workload}   setting: {self.settings.label}   "
            f"method: {self.method}"
        )
        if self.already_robust:
            return f"{head}\nalready robust — no repairs needed"
        if not self.repairs:
            reason = (
                f"no repair within {self.max_edits} edit(s)"
                if self.exhausted
                else f"search budget exhausted after {self.candidates_checked} candidates"
            )
            lines = [head, reason]
            if self.witness is not None:
                lines.append(self.witness.describe())
            return "\n".join(lines)
        lines = [
            head,
            f"found {len(self.repairs)} minimal repair(s) of "
            f"{self.repairs[0].size} edit(s) "
            f"({self.candidates_checked} candidates verified):",
        ]
        lines.extend(repair.describe() for repair in self.repairs)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "settings": self.settings.label,
            "method": self.method,
            "max_edits": self.max_edits,
            "already_robust": self.already_robust,
            "repaired": self.repaired,
            "repairs": [repair.to_dict() for repair in self.repairs],
            "witness": self.witness.to_dict() if self.witness else None,
            "candidates_checked": self.candidates_checked,
            "exhausted": self.exhausted,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairReport":
        return cls(
            workload=data["workload"],
            settings=AnalysisSettings.from_label(data["settings"]),
            method=data["method"],
            max_edits=int(data["max_edits"]),
            already_robust=bool(data["already_robust"]),
            repairs=tuple(RepairSet.from_dict(item) for item in data["repairs"]),
            witness=(
                CycleWitness.from_dict(data["witness"]) if data.get("witness") else None
            ),
            candidates_checked=int(data.get("candidates_checked", 0)),
            exhausted=bool(data.get("exhausted", True)),
        )

    def __str__(self) -> str:
        return self.describe()


class RepairAdvisor:
    """One advise query: breadth-first, witness-guided, fork-verified."""

    def __init__(
        self,
        session: "Analyzer",
        settings: AnalysisSettings = AnalysisSettings(),
        *,
        method: str = "type-II",
        max_edits: int = 3,
        max_states: int = 400,
        max_results: int = 4,
    ):
        finder = BLOCK_WITNESS_FINDERS.get(method)
        if finder is None:
            raise ProgramError(
                f"unknown detection method {method!r}; repair advice supports "
                f"{sorted(BLOCK_WITNESS_FINDERS)}"
            )
        if max_edits < 1:
            raise ProgramError(f"max_edits must be >= 1, got {max_edits}")
        self.session = session
        self.settings = settings
        self.method = method
        self.finder = finder
        self.max_edits = max_edits
        self.max_states = max_states
        self.max_results = max_results
        #: The advisor-private base session every candidate forks from:
        #: taken once (under the session lock), it accumulates the block
        #: flags and aggregates the block-index detectors memoize, which
        #: then ride :meth:`~repro.analysis.Analyzer.fork` into every
        #: candidate — the user's session is never mutated.
        self._base: "Analyzer | None" = None
        #: Reachability indexes shared across candidate verifications
        #: (keyed by frozen program-level adjacency — most edits do not
        #: change which programs conflict, only how).
        self._reach_cache: dict = {}

    # -- verification ---------------------------------------------------------
    def _check(self, session: "Analyzer") -> CycleWitness | None:
        """Run the block-index cycle check over one session's store."""
        ltps = session.unfolded()
        store = session.edge_block_store(self.settings)
        store.register(ltps)
        return self.finder(
            store, [ltp.name for ltp in ltps], reach_cache=self._reach_cache
        )

    def _verify(
        self, edits: Iterable[Repair]
    ) -> tuple[CycleWitness | None, int, int, Workload]:
        """Apply one edit set on a fresh fork and run the cycle check.

        Returns ``(witness, blocks_recomputed, blocks_total, repaired
        workload)`` — witness ``None`` means robust.  Only blocks touching
        edited programs are recomputed: the fork starts with every
        baseline block loaded, the
        :meth:`~repro.analysis.Analyzer.replace_program` eviction is
        per-program, and detection runs block-indexed (no graph
        assembly).
        """
        with span("repair-candidate"):
            return self._verify_spanned(edits)

    def _verify_spanned(
        self, edits: Iterable[Repair]
    ) -> tuple[CycleWitness | None, int, int, Workload]:
        scratch = self._base.fork()
        grouped: dict[str, list[Repair]] = {}
        for edit in edits:
            grouped.setdefault(edit.program, []).append(edit)
        # Name order applies a split before any edit of its halves
        # ("OrderStatus" sorts before "OrderStatus.2"), so chained edit
        # sets discovered across search rounds replay deterministically.
        for program in sorted(grouped):
            program_edits = grouped[program]
            btp = scratch.workload.program(program)
            replacements = apply_program_edits(
                btp, scratch.schema, program_edits
            )
            scratch.replace_program(replacements[0], name=program)
            for extra in replacements[1:]:
                scratch.add_program(extra)
        witness = self._check(scratch)
        info = scratch.cache_info()
        total = len(scratch.unfolded()) ** 2
        return witness, info["block_computations"], total, scratch.workload

    @staticmethod
    def _compatible(edits: frozenset[Repair], candidate: Repair) -> bool:
        """Reject combinations the canonical application order cannot
        express: two splits of one program, or statement/FK edits combined
        with a split of the same program."""
        for existing in edits:
            if existing.program != candidate.program:
                continue
            if isinstance(existing, SplitProgram) or isinstance(candidate, SplitProgram):
                return False
        return True

    # -- the search -----------------------------------------------------------
    def run(self) -> RepairReport:
        # Warm the user session's blocks once (locked, memoized), then take
        # the advisor's private fork; everything after runs on forks.
        self.session.summary_graph(self.settings)
        self._base = self.session.fork()
        base_witness = self._check(self._base)
        report = dict(
            workload=self.session.workload.name,
            settings=self.settings,
            method=self.method,
            max_edits=self.max_edits,
            abbreviations=dict(self.session.workload.abbreviations),
        )
        if base_witness is None:
            return RepairReport(already_robust=True, **report)

        root_candidates = candidate_edits(
            self.session.workload, base_witness, self.settings
        )
        queue: deque[tuple[frozenset[Repair], tuple[Repair, ...]]] = deque(
            [(frozenset(), root_candidates)]
        )
        seen: set[frozenset[Repair]] = {frozenset()}
        solutions: list[RepairSet] = []
        solution_size: int | None = None
        checked = 0
        truncated = False

        while queue:
            edits, candidates = queue.popleft()
            if solution_size is not None and len(edits) + 1 > solution_size:
                break
            if len(edits) >= self.max_edits:
                continue
            for candidate in candidates:
                child = edits | {candidate}
                if child in seen or not self._compatible(edits, candidate):
                    continue
                seen.add(child)
                if checked >= self.max_states:
                    truncated = True
                    queue.clear()
                    break
                checked += 1
                try:
                    witness, recomputed, total, workload = self._verify(child)
                except ProgramError:
                    continue
                if witness is None:
                    solutions.append(
                        RepairSet(
                            edits=ordered_repairs(child),
                            blocks_recomputed=recomputed,
                            blocks_total=total,
                        )
                    )
                    solution_size = len(child)
                    if len(solutions) >= self.max_results:
                        queue.clear()
                        break
                elif len(child) < self.max_edits:
                    queue.append(
                        (child, candidate_edits(workload, witness, self.settings))
                    )

        return RepairReport(
            already_robust=False,
            repairs=tuple(solutions),
            witness=base_witness,
            candidates_checked=checked,
            exhausted=not truncated,
            **report,
        )
