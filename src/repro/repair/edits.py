"""The repair edit catalog: typed, serializable program transforms.

Each :class:`Repair` names one edit a developer could make to a BTP to
remove the dependencies that admit a dangerous cycle, following the
repairs the template-robustness line of work applies by hand
(Vandevoort et al. 2021/2022, and Section 7 of the source paper):

* :class:`PromotePredicateToKey` — turn a predicate-based statement into
  its key-based counterpart (``WHERE c_last = :x`` → ``WHERE c_id = :x``):
  key-based reads touch one tuple and can be protected by foreign keys,
  predicate reads never can;
* :class:`PromoteReadToUpdate` — turn a read into a U-read
  (``SELECT … FOR UPDATE`` modelled as an update writing what it reads):
  the read then sits in an atomic R-W chunk, which can never be the
  source of a counterflow dependency (Table 1's update rows);
* :class:`AddProtectingFK` — declare a foreign-key annotation
  ``q_target = f(q_source)`` whose target is an earlier key-based write:
  under the FK settings this rules the counterflow dependency out
  (Proposition 6.3 — both transactions would have dirtied the referenced
  tuple first);
* :class:`SplitProgram` — split a program at a top-level sequence point
  into two independently-committed programs, separating an incoming
  dependency from the counterflow edge it was dangerously adjacent to.

Edits are frozen dataclasses (hashable, so the advisor's lattice search
can dedup edit sets), serialize via :meth:`Repair.to_dict` /
:func:`repair_from_dict`, and compose: :func:`apply_repairs` applies any
edit set to a workload in a canonical order (statement promotions, then
foreign-key annotations, then splits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Iterable, Mapping, Sequence

from repro.btp.program import BTP, Choice, FKConstraint, Loop, Opt, ProgramNode, Seq, Stmt
from repro.btp.statement import Statement, StatementType
from repro.errors import ProgramError
from repro.schema import Relation, Schema
from repro.workloads.base import Workload

#: Canonical application order per program: statement promotions first
#: (predicate→key before read→update, so the two compose to a key-based
#: U-read whichever order the search discovered them in), then added
#: foreign-key annotations, then splits.
_KIND_ORDER = {
    "promote_predicate_to_key": 0,
    "promote_read_to_update": 1,
    "add_protecting_fk": 2,
    "split_program": 3,
}


def map_statement(node: ProgramNode, name: str, transform) -> ProgramNode:
    """Rewrite the single statement ``name`` inside an AST via ``transform``.

    The one AST-rewriting primitive shared by the repair catalog and the
    churn mutation catalog (:mod:`repro.churn.mutations`); a name that does
    not occur leaves the tree unchanged, so callers check existence first.
    """
    if isinstance(node, Stmt):
        if node.statement.name == name:
            return Stmt(transform(node.statement))
        return node
    if isinstance(node, Seq):
        return Seq(tuple(map_statement(part, name, transform) for part in node.parts))
    if isinstance(node, Choice):
        return Choice(
            map_statement(node.left, name, transform),
            map_statement(node.right, name, transform),
        )
    if isinstance(node, Opt):
        return Opt(map_statement(node.body, name, transform))
    if isinstance(node, Loop):
        return Loop(map_statement(node.body, name, transform))
    raise ProgramError(f"unknown node type {type(node).__name__}")


#: Backwards-compatible alias (the helper predates the public name).
_map_statement = map_statement


@dataclass(frozen=True)
class Repair:
    """Base class of all repair edits; ``program`` names the edited BTP."""

    program: str

    kind: ClassVar[str] = ""

    def apply_to(self, btp: BTP, schema: Schema) -> tuple[BTP, ...]:
        """The replacement program(s) for ``btp`` under this edit."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def _payload(self) -> dict[str, Any]:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "program": self.program, **self._payload()}

    def _statement_of(self, btp: BTP, name: str) -> Statement:
        stmt = btp.statements_by_name().get(name)
        if stmt is None:
            raise ProgramError(
                f"repair {self.kind}: program {btp.name!r} has no statement {name!r}"
            )
        return stmt

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class PromotePredicateToKey(Repair):
    """Promote a predicate-based statement to its key-based counterpart."""

    statement: str

    kind: ClassVar[str] = "promote_predicate_to_key"

    def apply_to(self, btp: BTP, schema: Schema) -> tuple[BTP, ...]:
        self._statement_of(btp, self.statement)

        def transform(stmt: Statement) -> Statement:
            if stmt.stype is StatementType.PRED_SELECT:
                return Statement(
                    stmt.name, StatementType.KEY_SELECT, stmt.relation,
                    None, stmt.read_set, None,
                )
            if stmt.stype is StatementType.PRED_UPDATE:
                return Statement(
                    stmt.name, StatementType.KEY_UPDATE, stmt.relation,
                    None, stmt.read_set, stmt.write_set,
                )
            if stmt.stype is StatementType.PRED_DELETE:
                return Statement(
                    stmt.name, StatementType.KEY_DELETE, stmt.relation,
                    None, None, stmt.write_set,
                )
            raise ProgramError(
                f"repair {self.kind}: statement {stmt.name!r} of {btp.name!r} is "
                f"{stmt.stype.value!r}, not predicate-based"
            )

        return (
            BTP(btp.name, map_statement(btp.root, self.statement, transform), btp.constraints),
        )

    def describe(self) -> str:
        return (
            f"promote predicate-based {self.statement} of {self.program} "
            "to a key-based statement"
        )

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class PromoteReadToUpdate(Repair):
    """Promote a read to a U-read: an update writing what it reads."""

    statement: str

    kind: ClassVar[str] = "promote_read_to_update"

    @staticmethod
    def _written(stmt: Statement, relation: Relation) -> frozenset[str]:
        # A U-read locks the tuple; model it as writing what it reads, or
        # (for reads of no attributes) the key — Figure 5 requires a
        # non-empty WriteSet on updates.
        if stmt.read_set:
            return stmt.read_set
        return frozenset(relation.key) or relation.attribute_set

    def apply_to(self, btp: BTP, schema: Schema) -> tuple[BTP, ...]:
        self._statement_of(btp, self.statement)

        def transform(stmt: Statement) -> Statement:
            relation = schema.relation(stmt.relation)
            if stmt.stype is StatementType.KEY_SELECT:
                return Statement(
                    stmt.name, StatementType.KEY_UPDATE, stmt.relation,
                    None, stmt.read_set, self._written(stmt, relation),
                )
            if stmt.stype is StatementType.PRED_SELECT:
                return Statement(
                    stmt.name, StatementType.PRED_UPDATE, stmt.relation,
                    stmt.pread_set, stmt.read_set, self._written(stmt, relation),
                )
            raise ProgramError(
                f"repair {self.kind}: statement {stmt.name!r} of {btp.name!r} is "
                f"{stmt.stype.value!r}, not a select"
            )

        return (
            BTP(btp.name, map_statement(btp.root, self.statement, transform), btp.constraints),
        )

    def describe(self) -> str:
        return f"promote read {self.statement} of {self.program} to a U-read (update)"

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class AddProtectingFK(Repair):
    """Declare ``target_statement = fk(source_statement)`` on a program.

    ``source_statement`` is the key-based read being protected and
    ``target_statement`` an earlier key-based write over ``range(fk)``:
    under the FK settings the annotation rules out counterflow
    dependencies whose other side carries the same protection.
    """

    fk: str
    source_statement: str
    target_statement: str

    kind: ClassVar[str] = "add_protecting_fk"

    def apply_to(self, btp: BTP, schema: Schema) -> tuple[BTP, ...]:
        fk = schema.foreign_key(self.fk)
        source = self._statement_of(btp, self.source_statement)
        target = self._statement_of(btp, self.target_statement)
        if source.relation != fk.source or target.relation != fk.target:
            raise ProgramError(
                f"repair {self.kind}: {fk.name} maps {fk.source!r} -> {fk.target!r}, "
                f"but {self.source_statement} is over {source.relation!r} and "
                f"{self.target_statement} over {target.relation!r}"
            )
        constraint = FKConstraint(
            self.fk, source=self.source_statement, target=self.target_statement
        )
        if constraint in btp.constraints:
            raise ProgramError(
                f"repair {self.kind}: {btp.name!r} already carries {constraint}"
            )
        return (BTP(btp.name, btp.root, btp.constraints + (constraint,)),)

    def describe(self) -> str:
        return (
            f"annotate {self.program} with "
            f"{self.target_statement} = {self.fk}({self.source_statement})"
        )

    def _payload(self) -> dict[str, Any]:
        return {
            "fk": self.fk,
            "source_statement": self.source_statement,
            "target_statement": self.target_statement,
        }


@dataclass(frozen=True)
class SplitProgram(Repair):
    """Split a program into two at a top-level sequence boundary.

    The head keeps every top-level part up to and including the one
    containing ``after_statement``; the tail commits separately as
    ``<program>.2``.  Foreign-key annotations spanning the split are
    dropped (they no longer relate statements of one transaction).
    """

    after_statement: str

    kind: ClassVar[str] = "split_program"

    def apply_to(self, btp: BTP, schema: Schema) -> tuple[BTP, ...]:
        if not isinstance(btp.root, Seq):
            raise ProgramError(
                f"repair {self.kind}: program {btp.name!r} has no top-level "
                "sequence to split"
            )
        boundary = None
        for index, part in enumerate(btp.root.parts):
            if any(stmt.name == self.after_statement for stmt in part.statements()):
                boundary = index
                break
        if boundary is None:
            raise ProgramError(
                f"repair {self.kind}: program {btp.name!r} has no statement "
                f"{self.after_statement!r}"
            )
        if boundary == len(btp.root.parts) - 1:
            raise ProgramError(
                f"repair {self.kind}: cannot split {btp.name!r} after its last "
                "top-level part"
            )
        pieces = (btp.root.parts[: boundary + 1], btp.root.parts[boundary + 1:])
        results = []
        for number, parts in enumerate(pieces, start=1):
            root = parts[0] if len(parts) == 1 else Seq(parts)
            names = {stmt.name for part in parts for stmt in part.statements()}
            constraints = tuple(
                constraint
                for constraint in btp.constraints
                if constraint.source in names and constraint.target in names
            )
            results.append(BTP(f"{btp.name}.{number}", root, constraints))
        return tuple(results)

    def describe(self) -> str:
        return (
            f"split {self.program} into two transactions after "
            f"{self.after_statement}"
        )

    def _payload(self) -> dict[str, Any]:
        return {"after_statement": self.after_statement}


#: Repair class per serialized ``kind``.
REPAIR_KINDS: dict[str, type[Repair]] = {
    cls.kind: cls
    for cls in (PromotePredicateToKey, PromoteReadToUpdate, AddProtectingFK, SplitProgram)
}


def repair_from_dict(data: Mapping[str, Any]) -> Repair:
    """Rebuild one edit from its :meth:`Repair.to_dict` payload."""
    kind = data.get("kind")
    repair_cls = REPAIR_KINDS.get(kind)
    if repair_cls is None:
        raise ProgramError(
            f"unknown repair kind {kind!r}; expected one of {sorted(REPAIR_KINDS)}"
        )
    fields = {key: value for key, value in data.items() if key != "kind"}
    try:
        return repair_cls(**fields)
    except TypeError as error:
        raise ProgramError(f"malformed {kind} repair: {error}") from None


def ordered_repairs(repairs: Iterable[Repair]) -> tuple[Repair, ...]:
    """Edits in canonical (program, kind, detail) order — the order they
    apply in and the order reports list them in."""
    return tuple(
        sorted(
            repairs,
            key=lambda repair: (
                repair.program,
                _KIND_ORDER[repair.kind],
                sorted(repair._payload().items()),
            ),
        )
    )


def apply_program_edits(
    btp: BTP, schema: Schema, edits: Sequence[Repair]
) -> tuple[BTP, ...]:
    """Apply one program's edits in canonical order; a split must be last
    and unique (splitting twice, or editing statements of an
    already-split program, is rejected)."""
    current: tuple[BTP, ...] = (btp,)
    for edit in ordered_repairs(edits):
        if edit.program != btp.name:
            raise ProgramError(
                f"repair {edit.kind} targets {edit.program!r}, not {btp.name!r}"
            )
        if len(current) != 1:
            raise ProgramError(
                f"cannot apply {edit.kind} to {btp.name!r}: the program was "
                "already split"
            )
        current = edit.apply_to(current[0], schema)
    return current


def apply_repairs(
    workload: Workload, repairs: Iterable[Repair], name: str | None = None
) -> Workload:
    """The repaired workload: every edit applied, all programs revalidated.

    The edit set may touch several programs, including the halves of its
    own splits (``"WriteCheck.2"`` after a ``split_program`` of
    ``WriteCheck``): groups apply in name order, which places a split
    before any edit of its halves — the same replay order the advisor's
    verification uses.  ``Workload.__post_init__`` revalidates every
    statement and constraint against the schema, so an inapplicable edit
    raises :class:`ProgramError` instead of producing a bogus workload.
    """
    grouped: dict[str, list[Repair]] = {}
    for repair in repairs:
        grouped.setdefault(repair.program, []).append(repair)
    programs: list[BTP] = list(workload.programs)
    for target in sorted(grouped):
        position = next(
            (index for index, btp in enumerate(programs) if btp.name == target),
            None,
        )
        if position is None:
            raise ProgramError(
                f"repairs target unknown program {target!r} of "
                f"workload {workload.name!r}"
            )
        programs[position:position + 1] = apply_program_edits(
            programs[position], workload.schema, grouped[target]
        )
    return Workload(
        name=name or f"{workload.name} (repaired)",
        schema=workload.schema,
        programs=tuple(programs),
        abbreviations=workload.abbreviations,
        sql=workload.sql,
    )
