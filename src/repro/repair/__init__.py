"""``repro.repair`` — the witness-guided robustness repair advisor.

When the pipeline answers "not robust", this package searches for
**minimal edit sets** — small program transforms from a typed catalog —
that make the workload robust, verifying every candidate incrementally
against the session's cached pairwise edge blocks::

    from repro import Analyzer

    session = Analyzer("smallbank")
    report = session.advise(max_edits=3)       # a RepairReport
    print(report)                              # the minimal edit sets
    repaired = apply_repairs(session.workload, report.best.edits)
    assert Analyzer(repaired).analyze().robust

The same surface is ``repro advise <workload> --json`` on the CLI and
``POST /v1/advise`` on the service.  See :mod:`repro.repair.edits` for
the catalog, :mod:`repro.repair.candidates` for how cycle-witness
anchors derive candidates, and :mod:`repro.repair.advisor` for the
lattice search.
"""

from repro.repair.advisor import (
    RepairAdvisor,
    RepairReport,
    RepairSet,
    WITNESS_FINDERS,
)
from repro.repair.candidates import candidate_edits
from repro.repair.edits import (
    REPAIR_KINDS,
    AddProtectingFK,
    PromotePredicateToKey,
    PromoteReadToUpdate,
    Repair,
    SplitProgram,
    apply_repairs,
    ordered_repairs,
    repair_from_dict,
)

__all__ = [
    "RepairAdvisor",
    "RepairReport",
    "RepairSet",
    "WITNESS_FINDERS",
    "Repair",
    "PromotePredicateToKey",
    "PromoteReadToUpdate",
    "AddProtectingFK",
    "SplitProgram",
    "REPAIR_KINDS",
    "repair_from_dict",
    "ordered_repairs",
    "apply_repairs",
    "candidate_edits",
]
