"""Witness-guided candidate derivation.

A cycle witness names the exact statement occurrences whose dependencies
close a dangerous cycle (PR 5's witness anchors).  Only a handful of
catalog edits can remove those dependencies, so instead of enumerating
every edit of every statement, the advisor derives candidates *from the
evidence*:

* every **counterflow edge** on the walk is admitted by an R- or
  PR-operation at its source (Lemma 4.1) — promoting that read (predicate
  → key, read → U-read) or protecting it with a foreign key removes the
  edge;
* the **dangerous adjacency** of a type-II witness sits at one program
  (``e2`` enters where the counterflow ``e3`` leaves) — splitting that
  program between the two anchored statements separates them into
  independently committed transactions.

Candidates resolve through the witness's statement anchors alone (no
summary graph needed — the advisor's block-index verification never
assembles one), and are recomputed per search state from *that state's*
witness, so the lattice search composes edits naturally: once a predicate
read is promoted to a key-based read, the next round's witness (if any)
exposes the foreign-key candidates that now apply to it.
"""

from __future__ import annotations

from repro.btp.program import BTP, Seq
from repro.btp.statement import Statement, StatementType
from repro.detection.witness import CycleWitness, WitnessAnchor
from repro.repair.edits import (
    AddProtectingFK,
    PromotePredicateToKey,
    PromoteReadToUpdate,
    Repair,
    SplitProgram,
)
from repro.summary.settings import AnalysisSettings
from repro.workloads.base import Workload

#: FK-annotation targets that protect a later read (the write types of
#: :func:`repro.summary.conditions.protecting_fks`).
_WRITE_TARGETS = frozenset(
    {StatementType.KEY_UPDATE, StatementType.KEY_DELETE, StatementType.INSERT}
)


def _statement_index(btp: BTP) -> dict[str, int]:
    """Syntactic position of each statement in the program."""
    return {stmt.name: index for index, stmt in enumerate(btp.statements())}


def _resolve(workload: Workload, program: str, statement: str) -> Statement | None:
    """The BTP statement an anchor names, if the program still exists."""
    if program not in workload.program_names:
        return None
    return workload.program(program).statements_by_name().get(statement)


def _fk_candidates(
    workload: Workload, program: str, stmt: Statement
) -> list[Repair]:
    """Protecting-FK annotations applicable to one key-based statement.

    For every schema foreign key out of the statement's relation, propose
    ``target = f(stmt)`` where ``target`` is the nearest earlier key-based
    write over ``range(f)`` in the same program — the shape
    :func:`~repro.summary.conditions.protecting_fks` recognises.
    """
    btp = workload.program(program)
    order = _statement_index(btp)
    position = order[stmt.name]
    existing = {(c.fk, c.source, c.target) for c in btp.constraints}
    candidates: list[Repair] = []
    for fk in workload.schema.foreign_keys_from(stmt.relation):
        best: str | None = None
        for other in btp.statements():
            if (
                other.relation == fk.target
                and other.stype in _WRITE_TARGETS
                and order[other.name] < position
            ):
                best = other.name
        if best is not None and (fk.name, stmt.name, best) not in existing:
            candidates.append(
                AddProtectingFK(
                    program=program,
                    fk=fk.name,
                    source_statement=stmt.name,
                    target_statement=best,
                )
            )
    return candidates


def _read_candidates(
    workload: Workload,
    settings: AnalysisSettings,
    anchor: WitnessAnchor,
    stmt: Statement,
    written_side: tuple[str, Statement] | None,
) -> list[Repair]:
    """Edits that can remove a counterflow edge admitted by ``stmt``."""
    program = anchor.source_program
    candidates: list[Repair] = []
    if stmt.stype.is_predicate_based:
        candidates.append(PromotePredicateToKey(program=program, statement=stmt.name))
    if stmt.stype in (StatementType.KEY_SELECT, StatementType.PRED_SELECT):
        candidates.append(PromoteReadToUpdate(program=program, statement=stmt.name))
    if settings.use_foreign_keys and stmt.stype is StatementType.KEY_SELECT:
        # Protection needs a shared FK on *both* sides of the edge; offer
        # each side's annotation separately and let the lattice search
        # combine them when both are missing.
        candidates.extend(_fk_candidates(workload, program, stmt))
        if written_side is not None:
            target_program, target_stmt = written_side
            if target_stmt.stype in _WRITE_TARGETS:
                candidates.extend(
                    _fk_candidates(workload, target_program, target_stmt)
                )
    return candidates


def _split_candidates(workload: Workload, witness: CycleWitness) -> list[Repair]:
    """Split the dangerous joint program between the adjacent statements.

    For a type-II witness the highlighted edges are ``(e1, e2, e3)`` with
    ``e2`` entering the program the counterflow ``e3`` leaves; when the
    two anchored statements sit in different top-level parts of that BTP,
    splitting between them removes the adjacency.
    """
    if len(witness.highlighted) != 3 or not witness.anchors:
        return []
    _, e2, e3 = witness.highlighted
    if e2.target != e3.source:
        return []
    anchored = dict(witness.anchored_edges())
    anchor3 = anchored.get(e3)
    if anchor3 is None:
        return []
    origin = anchor3.source_program
    if origin not in workload.program_names:
        return []
    btp = workload.program(origin)
    if not isinstance(btp.root, Seq):
        return []
    order = _statement_index(btp)
    first = order.get(e3.source_stmt)
    second = order.get(e2.target_stmt)
    if first is None or second is None or first == second:
        return []
    earlier, later = min(first, second), max(first, second)
    # Split after the top-level part holding the earlier statement, when
    # the later statement lives in a strictly later part.
    part_of: dict[str, int] = {}
    for index, part in enumerate(btp.root.parts):
        for stmt in part.statements():
            part_of[stmt.name] = index
    names = list(order)
    if part_of[names[earlier]] >= part_of[names[later]]:
        return []
    return [SplitProgram(program=origin, after_statement=names[earlier])]


def candidate_edits(
    workload: Workload,
    witness: CycleWitness,
    settings: AnalysisSettings,
) -> tuple[Repair, ...]:
    """All catalog edits that target this witness's evidence, deduplicated
    in deterministic walk order."""
    seen: dict[Repair, None] = {}

    def add(candidates: list[Repair]) -> None:
        for candidate in candidates:
            seen.setdefault(candidate)

    for edge, anchor in witness.anchored_edges():
        if not edge.counterflow or anchor is None:
            continue
        stmt = _resolve(workload, anchor.source_program, anchor.source_stmt)
        if stmt is None:
            continue
        written = _resolve(workload, anchor.target_program, anchor.target_stmt)
        written_side = (
            (anchor.target_program, written) if written is not None else None
        )
        add(_read_candidates(workload, settings, anchor, stmt, written_side))
    add(_split_candidates(workload, witness))
    return tuple(seen)
