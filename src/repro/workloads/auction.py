"""The Auction running example (Section 2) and Auction(n) (Section 7.3).

The schema has three relations — Buyer(id, calls), Bids(buyerId, bid),
Log(id, buyerId, bid) — with foreign keys f1: Bids(buyerId) → Buyer(id) and
f2: Log(buyerId) → Buyer(id).  FindBids returns all bids above a threshold;
PlaceBid raises a buyer's bid (conditionally) and logs it.  The BTPs and
statement details are Figure 1/2 verbatim; PlaceBid carries the annotations
q3 = f1(q4), q3 = f1(q5) and q3 = f2(q6).

Auction(n) stores the bids of each of n items in its own relation Bids_i and
has per-item programs FindBids_i / PlaceBid_i, all still updating the shared
Buyer relation; its summary graph has 3n nodes and 9n² + 8n edges (n of them
counterflow) — the closed form reported in Table 2.
"""

from __future__ import annotations

from functools import lru_cache

from repro.btp.program import BTP, FKConstraint, optional, seq
from repro.btp.statement import Statement
from repro.schema import ForeignKey, Relation, Schema
from repro.workloads.base import Workload

FINDBIDS_SQL = """
UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
SELECT bid FROM Bids WHERE bid >= :T;
COMMIT;
"""

PLACEBID_SQL = """
UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
SELECT bid INTO :C FROM Bids WHERE buyerId = :B;
IF :C < :V THEN
    UPDATE Bids SET bid = :V WHERE buyerId = :B;
END IF;
:logId = uniqueLogId();
INSERT INTO Log VALUES (:logId, :B, :V);
COMMIT;
"""


def _auction_schema(items: int) -> Schema:
    """The Auction schema, with ``items`` separate Bids relations for n > 1."""
    buyer = Relation("Buyer", ["id", "calls"], key=["id"])
    log = Relation("Log", ["id", "buyerId", "bid"], key=["id"])
    if items == 1:
        bids_relations = [Relation("Bids", ["buyerId", "bid"], key=["buyerId"])]
        bids_fks = [ForeignKey("f1", "Bids", "Buyer", {"buyerId": "id"})]
    else:
        bids_relations = [
            Relation(f"Bids{i}", ["buyerId", "bid"], key=["buyerId"])
            for i in range(1, items + 1)
        ]
        bids_fks = [
            ForeignKey(f"f1_{i}", f"Bids{i}", "Buyer", {"buyerId": "id"})
            for i in range(1, items + 1)
        ]
    log_fk = ForeignKey("f2", "Log", "Buyer", {"buyerId": "id"})
    return Schema([buyer, *bids_relations, log], [*bids_fks, log_fk])


def _find_bids(schema: Schema, bids_name: str, suffix: str = "") -> BTP:
    buyer = schema.relation("Buyer")
    bids = schema.relation(bids_name)
    q1 = Statement.key_update("q1", buyer, reads=["calls"], writes=["calls"])
    q2 = Statement.pred_select("q2", bids, predicate=["bid"], reads=["bid"])
    return BTP(f"FindBids{suffix}", seq(q1, q2))


def _place_bid(schema: Schema, bids_name: str, fk_name: str, suffix: str = "") -> BTP:
    buyer = schema.relation("Buyer")
    bids = schema.relation(bids_name)
    log = schema.relation("Log")
    q3 = Statement.key_update("q3", buyer, reads=["calls"], writes=["calls"])
    q4 = Statement.key_select("q4", bids, reads=["bid"])
    q5 = Statement.key_update("q5", bids, reads=[], writes=["bid"])
    q6 = Statement.insert("q6", log)
    return BTP(
        f"PlaceBid{suffix}",
        seq(q3, q4, optional(q5), q6),
        constraints=[
            FKConstraint(fk_name, source="q4", target="q3"),
            FKConstraint(fk_name, source="q5", target="q3"),
            FKConstraint("f2", source="q6", target="q3"),
        ],
    )


@lru_cache(maxsize=None)
def auction() -> Workload:
    """The two-program Auction benchmark of Section 2."""
    schema = _auction_schema(1)
    return Workload(
        name="Auction",
        schema=schema,
        programs=(_find_bids(schema, "Bids"), _place_bid(schema, "Bids", "f1")),
        abbreviations={"FindBids": "FB", "PlaceBid": "PB"},
        sql={"FindBids": FINDBIDS_SQL, "PlaceBid": PLACEBID_SQL},
    )


@lru_cache(maxsize=None)
def auction_n(items: int) -> Workload:
    """Auction(n): 2·n programs over n per-item Bids relations (Section 7.3).

    ``auction_n(1)`` is the Auction benchmark up to relation naming.
    """
    if items < 1:
        raise ValueError("Auction(n) requires n >= 1")
    schema = _auction_schema(items)
    programs = []
    abbreviations = {}
    for i in range(1, items + 1):
        bids_name = "Bids" if items == 1 else f"Bids{i}"
        fk_name = "f1" if items == 1 else f"f1_{i}"
        suffix = "" if items == 1 else str(i)
        programs.append(_find_bids(schema, bids_name, suffix))
        programs.append(_place_bid(schema, bids_name, fk_name, suffix))
        abbreviations[f"FindBids{suffix}"] = f"FB{suffix}"
        abbreviations[f"PlaceBid{suffix}"] = f"PB{suffix}"
    return Workload(
        name=f"Auction({items})",
        schema=schema,
        programs=tuple(programs),
        abbreviations=abbreviations,
    )
