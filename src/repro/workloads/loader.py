"""Loading user workloads from a single text file.

The format keeps the paper's notation.  Line comments start with ``#``::

    WORKLOAD Auction

    TABLE Buyer (id*, calls)              # '*' marks primary-key attributes
    TABLE Bids (buyerId*, bid)
    TABLE Log (id*, buyerId, bid)
    FK f1: Bids(buyerId) -> Buyer(id)
    FK f2: Log(buyerId) -> Buyer(id)

    PROGRAM FindBids
    UPDATE Buyer SET calls = calls + 1 WHERE id = :B;
    SELECT bid FROM Bids WHERE bid >= :T;
    COMMIT;
    END

    PROGRAM PlaceBid
    ...
    END

    ANNOTATE PlaceBid: q3 = f1(q4)        # the paper's q_target = f(q_source)

Programs are written in the Appendix A SQL fragment and translated through
:mod:`repro.sqlfront`; statements are named ``q1, q2, …`` per program in
order of appearance (inspect them with ``repro analyze <file>``, or
``repro analyze <file> --json`` for machine-readable output), and
``ANNOTATE`` lines attach foreign-key constraints using those names.
Programmatic use goes through ``Analyzer(path)`` or
``Workload.resolve(path)``, both of which route here for files and text.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.btp.program import BTP, FKConstraint
from repro.errors import SqlError
from repro.schema import ForeignKey, Relation, Schema
from repro.sqlfront.translate import parse_program
from repro.workloads.base import Workload

_TABLE_RE = re.compile(r"^TABLE\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE)
_FK_RE = re.compile(
    r"^FK\s+(\w+)\s*:\s*(\w+)\s*\(([^)]*)\)\s*->\s*(\w+)\s*\(([^)]*)\)\s*$",
    re.IGNORECASE,
)
_PROGRAM_RE = re.compile(r"^PROGRAM\s+(\w+)\s*$", re.IGNORECASE)
_ANNOTATE_RE = re.compile(
    r"^ANNOTATE\s+(\w+)\s*:\s*(\w+)\s*=\s*(\w+)\s*\(\s*(\w+)\s*\)\s*$",
    re.IGNORECASE,
)
_WORKLOAD_RE = re.compile(r"^WORKLOAD\s+(.+?)\s*$", re.IGNORECASE)
_END_RE = re.compile(r"^END\s*$", re.IGNORECASE)


def _strip_comment(line: str) -> str:
    position = line.find("#")
    return line if position < 0 else line[:position]


def _split_names(text: str, line_no: int) -> list[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        raise SqlError("expected a comma-separated attribute list", line_no)
    return names


class _Loader:
    def __init__(self, text: str, default_name: str):
        self.lines = text.splitlines()
        self.name = default_name
        self.relations: list[Relation] = []
        self.foreign_keys: list[ForeignKey] = []
        self.program_sql: dict[str, str] = {}
        self.annotations: dict[str, list[FKConstraint]] = {}

    def load(self) -> Workload:
        index = 0
        while index < len(self.lines):
            raw = self.lines[index]
            line = _strip_comment(raw).strip()
            if not line:
                index += 1
                continue
            if match := _WORKLOAD_RE.match(line):
                self.name = match.group(1)
            elif match := _TABLE_RE.match(line):
                self._add_table(match, index + 1)
            elif match := _FK_RE.match(line):
                self._add_foreign_key(match, index + 1)
            elif match := _PROGRAM_RE.match(line):
                index = self._read_program(match.group(1), index)
            elif match := _ANNOTATE_RE.match(line):
                self._add_annotation(match, index + 1)
            else:
                raise SqlError(f"unrecognized workload line: {line!r}", index + 1)
            index += 1
        return self._build()

    def _add_table(self, match: re.Match, line_no: int) -> None:
        name = match.group(1)
        attributes = []
        key = []
        for item in _split_names(match.group(2), line_no):
            if item.endswith("*"):
                item = item[:-1].strip()
                key.append(item)
            attributes.append(item)
        self.relations.append(Relation(name, attributes, key=key))

    def _add_foreign_key(self, match: re.Match, line_no: int) -> None:
        fk_name, source, source_cols, target, target_cols = match.groups()
        sources = _split_names(source_cols, line_no)
        targets = _split_names(target_cols, line_no)
        if len(sources) != len(targets):
            raise SqlError(
                f"foreign key {fk_name!r}: column count mismatch", line_no
            )
        self.foreign_keys.append(
            ForeignKey(fk_name, source, target, dict(zip(sources, targets)))
        )

    def _read_program(self, name: str, start_index: int) -> int:
        if name in self.program_sql:
            raise SqlError(f"duplicate program {name!r}", start_index + 1)
        body: list[str] = []
        index = start_index + 1
        while index < len(self.lines):
            line = _strip_comment(self.lines[index]).strip()
            if _END_RE.match(line):
                self.program_sql[name] = "\n".join(body)
                return index
            body.append(self.lines[index])
            index += 1
        raise SqlError(f"program {name!r}: missing END", start_index + 1)

    def _add_annotation(self, match: re.Match, line_no: int) -> None:
        program, target, fk, source = match.groups()
        self.annotations.setdefault(program, []).append(
            FKConstraint(fk, source=source, target=target)
        )

    def _build(self) -> Workload:
        if not self.relations:
            raise SqlError("workload file declares no tables")
        if not self.program_sql:
            raise SqlError("workload file declares no programs")
        schema = Schema(self.relations, self.foreign_keys)
        for program_name in self.annotations:
            if program_name not in self.program_sql:
                raise SqlError(
                    f"ANNOTATE references unknown program {program_name!r}"
                )
        programs = []
        for program_name, sql in self.program_sql.items():
            parsed = parse_program(sql, schema, program_name)
            constraints = self.annotations.get(program_name, [])
            programs.append(BTP(parsed.name, parsed.root, constraints=constraints))
        return Workload(
            name=self.name,
            schema=schema,
            programs=tuple(programs),
            sql=dict(self.program_sql),
        )


def load_workload(source: str | Path, name: str = "workload") -> Workload:
    """Load a workload from file contents or a path.

    ``source`` may be a :class:`~pathlib.Path`, a path string, or the
    workload text itself.  A string containing a newline is always treated
    as text; a single-line string is treated as a file name and must exist
    — a missing file raises :class:`FileNotFoundError` instead of being
    silently (mis)parsed as workload content.  (``Analyzer("my.workload")``
    and ``Workload.resolve`` route through here, so CLI typos surface as a
    clear file error.)
    """
    if isinstance(source, Path):
        if not source.exists():
            raise FileNotFoundError(f"workload file not found: {source}")
        return _Loader(source.read_text(), source.stem).load()
    if "\n" in source:
        return _Loader(source, name).load()
    path = Path(source)
    if path.exists():
        return _Loader(path.read_text(), path.stem).load()
    raise FileNotFoundError(
        f"workload file not found: {source!r} "
        "(raw workload text must contain newlines)"
    )
