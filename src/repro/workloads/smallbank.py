"""The SmallBank benchmark (Appendix E.1).

Three relations — Account(Name, CustomerId), Savings(CustomerId, Balance),
Checking(CustomerId, Balance) — and five linear programs: Amalgamate,
Balance, DepositChecking, TransactSavings, WriteCheck.  Statement details
are Figure 10 verbatim (statements q1…q16, numbered across programs).
Account(CustomerId) references both Savings(CustomerId) and
Checking(CustomerId); the corresponding annotations never block counterflow
edges (the referenced statements are not writes preceding the reads), which
is why all four analysis settings coincide on SmallBank (Figures 6/7).
"""

from __future__ import annotations

from functools import lru_cache

from repro.btp.program import BTP, FKConstraint, seq
from repro.btp.statement import Statement
from repro.schema import ForeignKey, Relation, Schema
from repro.workloads.base import Workload

AMALGAMATE_SQL = """
SELECT CustomerId INTO :x1 FROM Account WHERE Name = :N1;
SELECT CustomerId INTO :x2 FROM Account WHERE Name = :N2;
UPDATE Savings SET Balance = 0 WHERE CustomerId = :x1 RETURNING Balance INTO :a;
UPDATE Checking SET Balance = 0 WHERE CustomerId = :x1 RETURNING Balance INTO :b;
UPDATE Checking SET Balance = Balance + :a + :b WHERE CustomerId = :x2;
COMMIT;
"""

BALANCE_SQL = """
SELECT CustomerId INTO :x FROM Account WHERE Name = :N;
SELECT Balance INTO :a FROM Savings WHERE CustomerId = :x;
SELECT Balance + :a FROM Checking WHERE CustomerId = :x;
COMMIT;
"""

DEPOSIT_CHECKING_SQL = """
SELECT CustomerId INTO :x FROM Account WHERE Name = :N;
UPDATE Checking SET Balance = Balance + :V WHERE CustomerId = :x;
COMMIT;
"""

TRANSACT_SAVINGS_SQL = """
SELECT CustomerId INTO :x FROM Account WHERE Name = :N;
UPDATE Savings SET Balance = Balance + :V WHERE CustomerId = :x;
COMMIT;
"""

WRITE_CHECK_SQL = """
SELECT CustomerId INTO :x FROM Account WHERE Name = :N;
SELECT Balance INTO :a FROM Savings WHERE CustomerId = :x;
SELECT Balance INTO :b FROM Checking WHERE CustomerId = :x;
IF :a + :b < :V THEN
    :V = :V + 1;
END IF;
UPDATE Checking SET Balance = Balance - :V WHERE CustomerId = :x;
COMMIT;
"""


@lru_cache(maxsize=None)
def smallbank() -> Workload:
    """The five-program SmallBank workload of Figure 10."""
    account = Relation("Account", ["Name", "CustomerId"], key=["Name"])
    savings = Relation("Savings", ["CustomerId", "Balance"], key=["CustomerId"])
    checking = Relation("Checking", ["CustomerId", "Balance"], key=["CustomerId"])
    schema = Schema(
        [account, savings, checking],
        [
            ForeignKey("fS", "Account", "Savings", {"CustomerId": "CustomerId"}),
            ForeignKey("fC", "Account", "Checking", {"CustomerId": "CustomerId"}),
        ],
    )

    amalgamate = BTP(
        "Amalgamate",
        seq(
            Statement.key_select("q1", account, reads=["CustomerId"]),
            Statement.key_select("q2", account, reads=["CustomerId"]),
            Statement.key_update("q3", savings, reads=["Balance"], writes=["Balance"]),
            Statement.key_update("q4", checking, reads=["Balance"], writes=["Balance"]),
            Statement.key_update("q5", checking, reads=["Balance"], writes=["Balance"]),
        ),
        constraints=[
            FKConstraint("fS", source="q1", target="q3"),
            FKConstraint("fC", source="q1", target="q4"),
            FKConstraint("fC", source="q2", target="q5"),
        ],
    )
    balance = BTP(
        "Balance",
        seq(
            Statement.key_select("q6", account, reads=["CustomerId"]),
            Statement.key_select("q7", savings, reads=["Balance"]),
            Statement.key_select("q8", checking, reads=["Balance"]),
        ),
        constraints=[
            FKConstraint("fS", source="q6", target="q7"),
            FKConstraint("fC", source="q6", target="q8"),
        ],
    )
    deposit_checking = BTP(
        "DepositChecking",
        seq(
            Statement.key_select("q9", account, reads=["CustomerId"]),
            Statement.key_update("q10", checking, reads=["Balance"], writes=["Balance"]),
        ),
        constraints=[FKConstraint("fC", source="q9", target="q10")],
    )
    transact_savings = BTP(
        "TransactSavings",
        seq(
            Statement.key_select("q11", account, reads=["CustomerId"]),
            Statement.key_update("q12", savings, reads=["Balance"], writes=["Balance"]),
        ),
        constraints=[FKConstraint("fS", source="q11", target="q12")],
    )
    write_check = BTP(
        "WriteCheck",
        seq(
            Statement.key_select("q13", account, reads=["CustomerId"]),
            Statement.key_select("q14", savings, reads=["Balance"]),
            Statement.key_select("q15", checking, reads=["Balance"]),
            Statement.key_update("q16", checking, reads=["Balance"], writes=["Balance"]),
        ),
        constraints=[
            FKConstraint("fS", source="q13", target="q14"),
            FKConstraint("fC", source="q13", target="q15"),
            FKConstraint("fC", source="q13", target="q16"),
        ],
    )

    return Workload(
        name="SmallBank",
        schema=schema,
        programs=(amalgamate, balance, deposit_checking, transact_savings, write_check),
        abbreviations={
            "Amalgamate": "Am",
            "Balance": "Bal",
            "DepositChecking": "DC",
            "TransactSavings": "TS",
            "WriteCheck": "WC",
        },
        sql={
            "Amalgamate": AMALGAMATE_SQL,
            "Balance": BALANCE_SQL,
            "DepositChecking": DEPOSIT_CHECKING_SQL,
            "TransactSavings": TRANSACT_SAVINGS_SQL,
            "WriteCheck": WRITE_CHECK_SQL,
        },
    )
