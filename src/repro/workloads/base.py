"""The :class:`Workload` container tying schema, programs and SQL together."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.api import RobustnessReport
from repro.errors import ProgramError
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.settings import AnalysisSettings

#: Anything :meth:`Workload.resolve` accepts as a workload description.
WorkloadSource = Union["Workload", str, Path, Sequence[BTP]]


@dataclass(frozen=True)
class Workload:
    """A benchmark: a schema plus a set of transaction programs.

    ``abbreviations`` maps program names to the short labels of the paper's
    Figures 6/7 (e.g. ``"Balance" -> "Bal"``); ``sql`` holds each program's
    source text in the Appendix A SQL fragment, when available.
    """

    name: str
    schema: Schema
    programs: tuple[BTP, ...]
    abbreviations: Mapping[str, str] = field(default_factory=dict)
    sql: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [program.name for program in self.programs]
        if len(set(names)) != len(names):
            raise ProgramError(f"workload {self.name!r}: duplicate program names {names!r}")
        for program in self.programs:
            program.validate_against(self.schema)

    @classmethod
    def resolve(
        cls,
        source: WorkloadSource,
        *,
        schema: Schema | None = None,
        name: str | None = None,
    ) -> "Workload":
        """Turn any workload description into a :class:`Workload`.

        Accepted sources (the single entry point behind the CLI and the
        :class:`repro.analysis.Analyzer` session):

        * a :class:`Workload` instance — returned unchanged;
        * a built-in name (``"smallbank"``, ``"tpcc"``, ``"auction"``) or a
          scaled instance (``"auction(5)"``);
        * a :class:`~pathlib.Path` or path string naming a workload file;
        * raw workload-file text (any string containing a newline);
        * a sequence of :class:`BTP` programs together with ``schema=``.
        """
        from repro.workloads.loader import load_workload
        from repro.workloads.registry import get_workload

        if schema is not None:
            if isinstance(source, (Workload, str, Path)):
                raise TypeError(
                    "schema= is only valid with a sequence of BTP programs, "
                    f"not with a {type(source).__name__} source"
                )
            return cls(name or "adhoc", schema, tuple(source))
        if isinstance(source, Workload):
            return source
        if isinstance(source, Path):
            return load_workload(source)
        if isinstance(source, str):
            if "\n" in source:
                return load_workload(source, name or "workload")
            if Path(source).is_file():
                return load_workload(source)
            if "/" in source or Path(source).suffix:
                # looks like a file name, not a built-in workload name
                raise FileNotFoundError(f"workload file not found: {source!r}")
            try:
                return get_workload(source)
            except ValueError as error:
                raise ValueError(f"{error} (and no such workload file exists)") from None
        raise TypeError(
            "cannot resolve a workload from "
            f"{type(source).__name__}; pass a Workload, a built-in name, a file "
            "path, workload text, or a sequence of BTPs with schema=..."
        )

    def with_programs(
        self, programs: Sequence[BTP], validate: Sequence[BTP] = ()
    ) -> "Workload":
        """A copy with a new program tuple, validating only ``validate``.

        The incremental-edit fast path behind
        :meth:`repro.analysis.Analyzer.replace_program`: a plain
        ``dataclasses.replace`` re-validates *every* program against the
        schema, which dominates the cost of swapping one program in a
        large workload.  Programs not listed in ``validate`` must already
        have been validated against this workload's schema (they were —
        they come from an existing workload); duplicate-name checking
        still covers the full tuple.
        """
        programs = tuple(programs)
        names = [program.name for program in programs]
        if len(set(names)) != len(names):
            raise ProgramError(
                f"workload {self.name!r}: duplicate program names {names!r}"
            )
        for program in validate:
            program.validate_against(self.schema)
        # Clone field-by-field from the dataclass definition (not a
        # hard-coded list) so a future Workload field cannot silently be
        # dropped; __post_init__ is deliberately bypassed — it would
        # re-validate every unchanged program, which is the cost this
        # fast path exists to avoid.
        clone = object.__new__(Workload)
        for spec in dataclasses.fields(Workload):
            object.__setattr__(
                clone,
                spec.name,
                programs if spec.name == "programs" else getattr(self, spec.name),
            )
        return clone

    @property
    def program_names(self) -> tuple[str, ...]:
        return tuple(program.name for program in self.programs)

    def program(self, name: str) -> BTP:
        """Look up a program by name."""
        for program in self.programs:
            if program.name == name:
                return program
        raise ProgramError(f"workload {self.name!r}: unknown program {name!r}")

    def subset(self, names: Sequence[str]) -> "Workload":
        """The sub-workload restricted to the given program names."""
        return Workload(
            name=f"{self.name}[{','.join(sorted(names))}]",
            schema=self.schema,
            programs=tuple(self.program(name) for name in names),
            abbreviations=self.abbreviations,
            sql={name: text for name, text in self.sql.items() if name in set(names)},
        )

    def unfolded(self, max_loop_iterations: int = 2):
        """``Unfold≤k`` of all programs."""
        return unfold(self.programs, max_loop_iterations)

    def summary_graph(
        self,
        settings: AnalysisSettings = AnalysisSettings(),
        max_loop_iterations: int = 2,
    ) -> SummaryGraph:
        """Algorithm 1 over the unfolded programs."""
        return construct_summary_graph(
            self.unfolded(max_loop_iterations), self.schema, settings
        )

    def analyze(
        self,
        settings: AnalysisSettings = AnalysisSettings(),
        max_loop_iterations: int = 2,
    ) -> RobustnessReport:
        """Full robustness analysis (both detection methods).

        One-shot convenience; for repeated analyses of the same workload,
        hold a :class:`repro.analysis.Analyzer` session instead.
        """
        from repro.analysis.session import Analyzer  # deferred: import cycle

        return Analyzer(self, max_loop_iterations=max_loop_iterations).analyze(settings)

    def abbreviate(self, program_name: str) -> str:
        """The Figure 6/7 short label for a program (name itself if none)."""
        return dict(self.abbreviations).get(program_name, program_name)

    def __str__(self) -> str:
        return f"workload {self.name}: {len(self.programs)} programs"
