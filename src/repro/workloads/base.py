"""The :class:`Workload` container tying schema, programs and SQL together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.api import RobustnessReport, analyze
from repro.errors import ProgramError
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.settings import AnalysisSettings


@dataclass(frozen=True)
class Workload:
    """A benchmark: a schema plus a set of transaction programs.

    ``abbreviations`` maps program names to the short labels of the paper's
    Figures 6/7 (e.g. ``"Balance" -> "Bal"``); ``sql`` holds each program's
    source text in the Appendix A SQL fragment, when available.
    """

    name: str
    schema: Schema
    programs: tuple[BTP, ...]
    abbreviations: Mapping[str, str] = field(default_factory=dict)
    sql: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [program.name for program in self.programs]
        if len(set(names)) != len(names):
            raise ProgramError(f"workload {self.name!r}: duplicate program names {names!r}")
        for program in self.programs:
            program.validate_against(self.schema)

    @property
    def program_names(self) -> tuple[str, ...]:
        return tuple(program.name for program in self.programs)

    def program(self, name: str) -> BTP:
        """Look up a program by name."""
        for program in self.programs:
            if program.name == name:
                return program
        raise ProgramError(f"workload {self.name!r}: unknown program {name!r}")

    def subset(self, names: Sequence[str]) -> "Workload":
        """The sub-workload restricted to the given program names."""
        return Workload(
            name=f"{self.name}[{','.join(sorted(names))}]",
            schema=self.schema,
            programs=tuple(self.program(name) for name in names),
            abbreviations=self.abbreviations,
            sql={name: text for name, text in self.sql.items() if name in set(names)},
        )

    def unfolded(self, max_loop_iterations: int = 2):
        """``Unfold≤k`` of all programs."""
        return unfold(self.programs, max_loop_iterations)

    def summary_graph(
        self,
        settings: AnalysisSettings = AnalysisSettings(),
        max_loop_iterations: int = 2,
    ) -> SummaryGraph:
        """Algorithm 1 over the unfolded programs."""
        return construct_summary_graph(
            self.unfolded(max_loop_iterations), self.schema, settings
        )

    def analyze(
        self,
        settings: AnalysisSettings = AnalysisSettings(),
        max_loop_iterations: int = 2,
    ) -> RobustnessReport:
        """Full robustness analysis (both detection methods)."""
        return analyze(self.programs, self.schema, settings, max_loop_iterations)

    def abbreviate(self, program_name: str) -> str:
        """The Figure 6/7 short label for a program (name itself if none)."""
        return dict(self.abbreviations).get(program_name, program_name)

    def __str__(self) -> str:
        return f"workload {self.name}: {len(self.programs)} programs"
