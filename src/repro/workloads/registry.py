"""Name-based lookup of the built-in workloads (used by the CLI)."""

from __future__ import annotations

from typing import Callable

from repro.workloads.auction import auction, auction_n
from repro.workloads.base import Workload
from repro.workloads.smallbank import smallbank
from repro.workloads.tpcc import tpcc

#: The fixed-size built-in workloads by canonical name.
WORKLOADS: dict[str, Callable[[], Workload]] = {
    "smallbank": smallbank,
    "tpcc": tpcc,
    "auction": auction,
}


def get_workload(name: str) -> Workload:
    """Resolve a workload by name; ``auction(n)`` scales the Auction benchmark."""
    key = name.strip().lower().replace("-", "")
    if key in WORKLOADS:
        return WORKLOADS[key]()
    if key.startswith("auction(") and key.endswith(")"):
        inner = key[len("auction("):-1]
        try:
            return auction_n(int(inner))
        except ValueError:
            raise ValueError(f"bad Auction scaling factor {inner!r}") from None
    raise ValueError(
        f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)} or 'auction(N)'"
    )
