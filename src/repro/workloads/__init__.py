"""The paper's benchmarks: SmallBank, TPC-C, Auction and Auction(n).

Every workload bundles a schema, a set of BTPs (hand-transcribed from the
paper's Figures 2, 10 and 17), the foreign-key annotations, the program
abbreviations used in Figures 6/7, and SQL source text in the Appendix A
fragment that the SQL front-end translates back into the same BTPs
(an integration test keeps the two in sync).
"""

from repro.workloads.auction import auction, auction_n
from repro.workloads.base import Workload
from repro.workloads.loader import load_workload
from repro.workloads.registry import WORKLOADS, get_workload
from repro.workloads.smallbank import smallbank
from repro.workloads.tpcc import tpcc

__all__ = [
    "Workload",
    "auction",
    "auction_n",
    "smallbank",
    "tpcc",
    "WORKLOADS",
    "get_workload",
    "load_workload",
]
