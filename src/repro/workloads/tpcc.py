"""The TPC-C benchmark (Appendix E.2).

Nine relations, twelve foreign keys, five programs (Delivery, NewOrder,
OrderStatus, Payment, StockLevel).  Statement details q1…q29 are Figure 17
verbatim — including its deliberate deviations from a mechanical Appendix A
translation (insert WriteSets list only the columns the SQL supplies, and
``ReadSet(q23)`` omits ``c_payment_cnt``); the SQL text below is phrased so
the front-end reproduces exactly those sets.

Foreign-key annotations are not spelled out in the paper; the set used here
is derived from TPC-C semantics and documented choice by choice:

* NewOrder is always placed by a home customer for the home district, so its
  Customer/District/Orders/New_Order/Order_Line statements all reference the
  single district/warehouse of the transaction (f1, f2, f5, f6, f7, f8) and
  each order line references the one inserted order and its item (f8, f9,
  f11).  Stock and Order_Line rows may live at a *remote* supply warehouse,
  so no f10/f12 annotations are added.
* Payment is modelled as a home-district payment (the paying customer
  belongs to the district being updated), giving f2 annotations on the
  customer statements, f1 between district and warehouse, and f3/f4 for the
  History insert.  Without the f2 annotations the counterflow edge
  q24 → q25 (read then write of c_data inside Payment) cannot be excluded
  and no subset containing Payment is detected robust — the published
  Figure 6/7 results therefore imply the authors made the same assumption.
* Delivery processes one order per iteration: the deleted New_Order row,
  the Orders row, its Order_Line rows and the paying customer all belong
  together (f5, f7, f8).  The predicate read q1 may range over many
  New_Order rows, so it is *not* annotated.
* OrderStatus reads the orders of one customer (f7).  StockLevel has no
  usable annotations.
"""

from __future__ import annotations

from functools import lru_cache

from repro.btp.program import BTP, FKConstraint, choice, loop, optional, seq
from repro.btp.statement import Statement
from repro.schema import ForeignKey, Relation, Schema
from repro.workloads.base import Workload

S_DISTS = tuple(f"s_dist_{i:02d}" for i in range(1, 11))


@lru_cache(maxsize=None)
def tpcc_schema() -> Schema:
    """The nine-relation TPC-C schema with foreign keys f1…f12."""
    warehouse = Relation(
        "Warehouse",
        [
            "w_id", "w_name", "w_street_1", "w_street_2", "w_city",
            "w_state", "w_zip", "w_tax", "w_ytd",
        ],
        key=["w_id"],
    )
    district = Relation(
        "District",
        [
            "d_id", "d_w_id", "d_name", "d_street_1", "d_street_2", "d_city",
            "d_state", "d_zip", "d_tax", "d_ytd", "d_next_o_id",
        ],
        key=["d_id", "d_w_id"],
    )
    customer = Relation(
        "Customer",
        [
            "c_id", "c_d_id", "c_w_id", "c_first", "c_middle", "c_last",
            "c_street_1", "c_street_2", "c_city", "c_state", "c_zip",
            "c_phone", "c_since", "c_credit", "c_credit_lim", "c_discount",
            "c_balance", "c_ytd_payment", "c_payment_cnt", "c_delivery_cnt",
            "c_data",
        ],
        key=["c_id", "c_d_id", "c_w_id"],
    )
    history = Relation(
        "History",
        [
            "h_c_id", "h_c_d_id", "h_c_w_id", "h_d_id", "h_w_id",
            "h_date", "h_amount", "h_data",
        ],
        key=[],
    )
    new_order = Relation(
        "New_Order", ["no_o_id", "no_d_id", "no_w_id"], key=["no_o_id", "no_d_id", "no_w_id"]
    )
    orders = Relation(
        "Orders",
        [
            "o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_id",
            "o_carrier_id", "o_ol_cnt", "o_all_local",
        ],
        key=["o_id", "o_d_id", "o_w_id"],
    )
    order_line = Relation(
        "Order_Line",
        [
            "ol_o_id", "ol_d_id", "ol_w_id", "ol_number", "ol_i_id",
            "ol_supply_w_id", "ol_delivery_d", "ol_quantity", "ol_amount",
            "ol_dist_info",
        ],
        key=["ol_o_id", "ol_d_id", "ol_w_id", "ol_number"],
    )
    item = Relation("Item", ["i_id", "i_im_id", "i_name", "i_price", "i_data"], key=["i_id"])
    stock = Relation(
        "Stock",
        [
            "s_i_id", "s_w_id", "s_quantity", *S_DISTS,
            "s_ytd", "s_order_cnt", "s_remote_cnt", "s_data",
        ],
        key=["s_i_id", "s_w_id"],
    )
    foreign_keys = [
        ForeignKey("f1", "District", "Warehouse", {"d_w_id": "w_id"}),
        ForeignKey("f2", "Customer", "District", {"c_d_id": "d_id", "c_w_id": "d_w_id"}),
        ForeignKey(
            "f3", "History", "Customer",
            {"h_c_id": "c_id", "h_c_d_id": "c_d_id", "h_c_w_id": "c_w_id"},
        ),
        ForeignKey("f4", "History", "District", {"h_d_id": "d_id", "h_w_id": "d_w_id"}),
        ForeignKey(
            "f5", "New_Order", "Orders",
            {"no_o_id": "o_id", "no_d_id": "o_d_id", "no_w_id": "o_w_id"},
        ),
        ForeignKey("f6", "Orders", "District", {"o_d_id": "d_id", "o_w_id": "d_w_id"}),
        ForeignKey(
            "f7", "Orders", "Customer",
            {"o_c_id": "c_id", "o_d_id": "c_d_id", "o_w_id": "c_w_id"},
        ),
        ForeignKey(
            "f8", "Order_Line", "Orders",
            {"ol_o_id": "o_id", "ol_d_id": "o_d_id", "ol_w_id": "o_w_id"},
        ),
        ForeignKey("f9", "Order_Line", "Item", {"ol_i_id": "i_id"}),
        ForeignKey("f10", "Order_Line", "Warehouse", {"ol_supply_w_id": "w_id"}),
        ForeignKey("f11", "Stock", "Item", {"s_i_id": "i_id"}),
        ForeignKey("f12", "Stock", "Warehouse", {"s_w_id": "w_id"}),
    ]
    return Schema(
        [warehouse, district, customer, history, new_order, orders, order_line, item, stock],
        foreign_keys,
    )


def _delivery(schema: Schema) -> BTP:
    new_order = schema.relation("New_Order")
    orders = schema.relation("Orders")
    order_line = schema.relation("Order_Line")
    customer = schema.relation("Customer")
    q1 = Statement.pred_select(
        "q1", new_order, predicate=["no_d_id", "no_w_id"], reads=["no_o_id"]
    )
    q2 = Statement.key_delete("q2", new_order)
    q3 = Statement.key_select("q3", orders, reads=["o_c_id"])
    q4 = Statement.key_update("q4", orders, reads=[], writes=["o_carrier_id"])
    q5 = Statement.pred_update(
        "q5", order_line,
        predicate=["ol_d_id", "ol_o_id", "ol_w_id"], reads=[], writes=["ol_delivery_d"],
    )
    q6 = Statement.pred_select(
        "q6", order_line, predicate=["ol_d_id", "ol_o_id", "ol_w_id"], reads=["ol_amount"]
    )
    q7 = Statement.key_update(
        "q7", customer,
        reads=["c_balance", "c_delivery_cnt"], writes=["c_balance", "c_delivery_cnt"],
    )
    return BTP(
        "Delivery",
        loop(seq(q1, q2, q3, q4, q5, q6, q7)),
        constraints=[
            FKConstraint("f5", source="q2", target="q3"),
            FKConstraint("f5", source="q2", target="q4"),
            FKConstraint("f7", source="q3", target="q7"),
            FKConstraint("f7", source="q4", target="q7"),
            FKConstraint("f8", source="q5", target="q3"),
            FKConstraint("f8", source="q5", target="q4"),
            FKConstraint("f8", source="q6", target="q3"),
            FKConstraint("f8", source="q6", target="q4"),
        ],
    )


def _new_order(schema: Schema) -> BTP:
    customer = schema.relation("Customer")
    warehouse = schema.relation("Warehouse")
    district = schema.relation("District")
    orders = schema.relation("Orders")
    new_order = schema.relation("New_Order")
    item = schema.relation("Item")
    stock = schema.relation("Stock")
    order_line = schema.relation("Order_Line")
    q8 = Statement.key_select("q8", customer, reads=["c_credit", "c_discount", "c_last"])
    q9 = Statement.key_select("q9", warehouse, reads=["w_tax"])
    q10 = Statement.key_update(
        "q10", district, reads=["d_next_o_id", "d_tax"], writes=["d_next_o_id"]
    )
    q11 = Statement.insert(
        "q11", orders,
        columns=["o_all_local", "o_c_id", "o_d_id", "o_entry_id", "o_id", "o_ol_cnt", "o_w_id"],
    )
    q12 = Statement.insert("q12", new_order)
    q13 = Statement.key_select("q13", item, reads=["i_data", "i_name", "i_price"])
    q14 = Statement.key_update(
        "q14", stock,
        reads=["s_data", *S_DISTS, "s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"],
        writes=["s_order_cnt", "s_quantity", "s_remote_cnt", "s_ytd"],
    )
    q15 = Statement.insert(
        "q15", order_line,
        columns=[
            "ol_amount", "ol_d_id", "ol_dist_info", "ol_i_id", "ol_number",
            "ol_o_id", "ol_quantity", "ol_supply_w_id", "ol_w_id",
        ],
    )
    return BTP(
        "NewOrder",
        seq(q8, q9, q10, q11, q12, loop(seq(q13, q14, q15))),
        constraints=[
            FKConstraint("f2", source="q8", target="q10"),
            FKConstraint("f1", source="q10", target="q9"),
            FKConstraint("f6", source="q11", target="q10"),
            FKConstraint("f7", source="q11", target="q8"),
            FKConstraint("f5", source="q12", target="q11"),
            FKConstraint("f8", source="q15", target="q11"),
            FKConstraint("f9", source="q15", target="q13"),
            FKConstraint("f11", source="q14", target="q13"),
        ],
    )


def _order_status(schema: Schema) -> BTP:
    customer = schema.relation("Customer")
    orders = schema.relation("Orders")
    order_line = schema.relation("Order_Line")
    q16 = Statement.pred_select(
        "q16", customer,
        predicate=["c_d_id", "c_last", "c_w_id"],
        reads=["c_balance", "c_first", "c_id", "c_middle"],
    )
    q17 = Statement.key_select(
        "q17", customer, reads=["c_balance", "c_first", "c_last", "c_middle"]
    )
    q18 = Statement.pred_select(
        "q18", orders,
        predicate=["o_c_id", "o_d_id", "o_w_id"],
        reads=["o_carrier_id", "o_entry_id", "o_id"],
    )
    q19 = Statement.pred_select(
        "q19", order_line,
        predicate=["ol_d_id", "ol_o_id", "ol_w_id"],
        reads=["ol_amount", "ol_delivery_d", "ol_i_id", "ol_quantity", "ol_supply_w_id"],
    )
    return BTP(
        "OrderStatus",
        seq(choice(q16, q17), q18, q19),
        constraints=[FKConstraint("f7", source="q18", target="q17")],
    )


def _payment(schema: Schema) -> BTP:
    warehouse = schema.relation("Warehouse")
    district = schema.relation("District")
    customer = schema.relation("Customer")
    history = schema.relation("History")
    q20 = Statement.key_update(
        "q20", warehouse,
        reads=["w_city", "w_name", "w_state", "w_street_1", "w_street_2", "w_ytd", "w_zip"],
        writes=["w_ytd"],
    )
    q21 = Statement.key_update(
        "q21", district,
        reads=["d_city", "d_name", "d_state", "d_street_1", "d_street_2", "d_ytd", "d_zip"],
        writes=["d_ytd"],
    )
    q22 = Statement.pred_select(
        "q22", customer, predicate=["c_d_id", "c_last", "c_w_id"], reads=["c_id"]
    )
    q23 = Statement.key_update(
        "q23", customer,
        reads=[
            "c_balance", "c_city", "c_credit", "c_credit_lim", "c_discount", "c_first",
            "c_last", "c_middle", "c_phone", "c_since", "c_state", "c_street_1",
            "c_street_2", "c_ytd_payment", "c_zip",
        ],
        writes=["c_balance", "c_payment_cnt", "c_ytd_payment"],
    )
    q24 = Statement.key_select("q24", customer, reads=["c_data"])
    q25 = Statement.key_update("q25", customer, reads=[], writes=["c_data"])
    q26 = Statement.insert("q26", history)
    return BTP(
        "Payment",
        seq(q20, q21, optional(q22), q23, optional(seq(q24, q25)), q26),
        constraints=[
            FKConstraint("f1", source="q21", target="q20"),
            FKConstraint("f2", source="q22", target="q21"),
            FKConstraint("f2", source="q23", target="q21"),
            FKConstraint("f2", source="q24", target="q21"),
            FKConstraint("f2", source="q25", target="q21"),
            FKConstraint("f3", source="q26", target="q23"),
            FKConstraint("f4", source="q26", target="q21"),
        ],
    )


def _stock_level(schema: Schema) -> BTP:
    district = schema.relation("District")
    order_line = schema.relation("Order_Line")
    stock = schema.relation("Stock")
    q27 = Statement.key_select("q27", district, reads=["d_next_o_id"])
    q28 = Statement.pred_select(
        "q28", order_line, predicate=["ol_d_id", "ol_o_id", "ol_w_id"], reads=["ol_i_id"]
    )
    q29 = Statement.pred_select(
        "q29", stock, predicate=["s_quantity", "s_w_id"], reads=["s_i_id"]
    )
    return BTP("StockLevel", seq(q27, q28, q29))


DELIVERY_SQL = """
REPEAT
    SELECT no_o_id INTO :no_o_id FROM new_order
        WHERE no_d_id = :d_id AND no_w_id = :w_id;
    DELETE FROM new_order
        WHERE no_o_id = :no_o_id AND no_d_id = :d_id AND no_w_id = :w_id;
    SELECT o_c_id INTO :c_id FROM orders
        WHERE o_id = :no_o_id AND o_d_id = :d_id AND o_w_id = :w_id;
    UPDATE orders SET o_carrier_id = :o_carrier_id
        WHERE o_id = :no_o_id AND o_d_id = :d_id AND o_w_id = :w_id;
    UPDATE order_line SET ol_delivery_d = :datetime
        WHERE ol_o_id = :no_o_id AND ol_d_id = :d_id AND ol_w_id = :w_id;
    SELECT ol_amount FROM order_line
        WHERE ol_o_id = :no_o_id AND ol_d_id = :d_id AND ol_w_id = :w_id;
    UPDATE customer SET c_balance = c_balance + :ol_total,
                        c_delivery_cnt = c_delivery_cnt + 1
        WHERE c_id = :c_id AND c_d_id = :d_id AND c_w_id = :w_id;
END REPEAT;
COMMIT;
"""

NEW_ORDER_SQL = """
SELECT c_discount, c_last, c_credit INTO :c_discount, :c_last, :c_credit
    FROM customer WHERE c_w_id = :w_id AND c_d_id = :d_id AND c_id = :c_id;
SELECT w_tax INTO :w_tax FROM warehouse WHERE w_id = :w_id;
UPDATE district SET d_next_o_id = d_next_o_id + 1
    WHERE d_id = :d_id AND d_w_id = :w_id
    RETURNING d_next_o_id, d_tax INTO :o_id, :d_tax;
INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_entry_id, o_ol_cnt, o_all_local)
    VALUES (:o_id, :d_id, :w_id, :c_id, :datetime, :o_ol_cnt, :o_all_local);
INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES (:o_id, :d_id, :w_id);
REPEAT
    SELECT i_price, i_name, i_data INTO :i_price, :i_name, :i_data
        FROM item WHERE i_id = :ol_i_id;
    UPDATE stock SET s_quantity = :ol_quantity, s_ytd = :s_ytd,
                     s_order_cnt = :s_order_cnt, s_remote_cnt = :s_remote_cnt
        WHERE s_i_id = :ol_i_id AND s_w_id = :ol_supply_w_id
        RETURNING s_quantity, s_ytd, s_order_cnt, s_remote_cnt, s_data,
                  s_dist_01, s_dist_02, s_dist_03, s_dist_04, s_dist_05,
                  s_dist_06, s_dist_07, s_dist_08, s_dist_09, s_dist_10
        INTO :s_quantity, :s_ytd, :s_order_cnt, :s_remote_cnt, :s_data,
             :s_dist_01, :s_dist_02, :s_dist_03, :s_dist_04, :s_dist_05,
             :s_dist_06, :s_dist_07, :s_dist_08, :s_dist_09, :s_dist_10;
    INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id,
                            ol_supply_w_id, ol_quantity, ol_amount, ol_dist_info)
        VALUES (:o_id, :d_id, :w_id, :ol_number, :ol_i_id,
                :ol_supply_w_id, :ol_quantity, :ol_amount, :ol_dist_info);
END REPEAT;
COMMIT;
"""

ORDER_STATUS_SQL = """
IF <selection of customer by name instead of id> THEN
    SELECT c_balance, c_first, c_middle, c_id
        INTO :c_balance, :c_first, :c_middle, :c_id
        FROM customer WHERE c_last = :c_last AND c_d_id = :d_id AND c_w_id = :w_id;
ELSE
    SELECT c_balance, c_first, c_middle, c_last
        INTO :c_balance, :c_first, :c_middle, :c_last
        FROM customer WHERE c_id = :c_id AND c_d_id = :d_id AND c_w_id = :w_id;
END IF;
SELECT o_id, o_carrier_id, o_entry_id INTO :o_id, :o_carrier_id, :entdate
    FROM orders WHERE o_w_id = :w_id AND o_d_id = :d_id AND o_c_id = :c_id;
SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, ol_delivery_d
    FROM order_line WHERE ol_o_id = :o_id AND ol_d_id = :d_id AND ol_w_id = :w_id;
COMMIT;
"""

PAYMENT_SQL = """
UPDATE warehouse SET w_ytd = w_ytd + :h_amount
    WHERE w_id = :w_id
    RETURNING w_street_1, w_street_2, w_city, w_state, w_zip, w_name
    INTO :w_street_1, :w_street_2, :w_city, :w_state, :w_zip, :w_name;
UPDATE district SET d_ytd = d_ytd + :h_amount
    WHERE d_w_id = :w_id AND d_id = :d_id
    RETURNING d_street_1, d_street_2, d_city, d_state, d_zip, d_name
    INTO :d_street_1, :d_street_2, :d_city, :d_state, :d_zip, :d_name;
IF <selection of customer by name instead of id> THEN
    SELECT c_id INTO :c_id FROM customer
        WHERE c_w_id = :c_w_id AND c_d_id = :c_d_id AND c_last = :c_last;
END IF;
UPDATE customer SET c_balance = c_balance - :h_amount,
                    c_ytd_payment = c_ytd_payment + :h_amount,
                    c_payment_cnt = :c_payment_cnt_new
    WHERE c_w_id = :c_w_id AND c_d_id = :c_d_id AND c_id = :c_id
    RETURNING c_first, c_middle, c_last, c_street_1, c_street_2, c_city,
              c_state, c_zip, c_phone, c_credit, c_credit_lim, c_discount,
              c_balance, c_since
    INTO :c_first, :c_middle, :c_last, :c_street_1, :c_street_2, :c_city,
         :c_state, :c_zip, :c_phone, :c_credit, :c_credit_lim, :c_discount,
         :c_balance, :c_since;
IF <c_credit is BC> THEN
    SELECT c_data INTO :c_data FROM customer
        WHERE c_w_id = :c_w_id AND c_d_id = :c_d_id AND c_id = :c_id;
    UPDATE customer SET c_data = :c_new_data
        WHERE c_w_id = :c_w_id AND c_d_id = :c_d_id AND c_id = :c_id;
END IF;
INSERT INTO history (h_c_d_id, h_c_w_id, h_c_id, h_d_id, h_w_id, h_date, h_amount, h_data)
    VALUES (:c_d_id, :c_w_id, :c_id, :d_id, :w_id, :datetime, :h_amount, :h_data);
COMMIT;
"""

STOCK_LEVEL_SQL = """
SELECT d_next_o_id INTO :o_id FROM district
    WHERE d_w_id = :w_id AND d_id = :d_id;
SELECT ol_i_id FROM order_line
    WHERE ol_w_id = :w_id AND ol_d_id = :d_id
      AND ol_o_id < :o_id AND ol_o_id >= :o_id - 20;
SELECT s_i_id FROM stock
    WHERE s_w_id = :w_id AND s_quantity < :threshold;
COMMIT;
"""


@lru_cache(maxsize=None)
def tpcc() -> Workload:
    """The five-program TPC-C workload of Figure 17."""
    schema = tpcc_schema()
    return Workload(
        name="TPC-C",
        schema=schema,
        programs=(
            _delivery(schema),
            _new_order(schema),
            _order_status(schema),
            _payment(schema),
            _stock_level(schema),
        ),
        abbreviations={
            "Delivery": "Del",
            "NewOrder": "NO",
            "OrderStatus": "OS",
            "Payment": "Pay",
            "StockLevel": "SL",
        },
        sql={
            "Delivery": DELIVERY_SQL,
            "NewOrder": NEW_ORDER_SQL,
            "OrderStatus": ORDER_STATUS_SQL,
            "Payment": PAYMENT_SQL,
            "StockLevel": STOCK_LEVEL_SQL,
        },
    )
