"""Basic transaction programs (BTPs) — Section 5 of the paper.

A BTP abstracts a SQL transaction program down to exactly the information the
robustness analysis needs: for every statement its *type* (insert, key-based
or predicate-based selection/update/deletion), the *relation* it is over, and
the attribute sets it predicate-reads, reads, and writes.  Control flow is
kept as an AST over sequencing ``P;P``, branching ``(P|P)`` and ``(P|ε)``,
and iteration ``loop(P)``.

Linear transaction programs (LTPs, Section 6.1) are loop- and branch-free
BTPs; :func:`unfold` produces the finite set ``Unfold≤2(P)`` of LTPs that is
sufficient for robustness detection (Proposition 6.1).
"""

from repro.btp.program import (
    BTP,
    Choice,
    FKConstraint,
    Loop,
    Opt,
    ProgramNode,
    Seq,
    Stmt,
    choice,
    loop,
    optional,
    seq,
)
from repro.btp.statement import Statement, StatementType
from repro.btp.ltp import FKInstance, LTP, StatementOccurrence
from repro.btp.unfold import unfold, unfold_program

__all__ = [
    "Statement",
    "StatementType",
    "BTP",
    "ProgramNode",
    "Stmt",
    "Seq",
    "Choice",
    "Opt",
    "Loop",
    "FKConstraint",
    "seq",
    "choice",
    "optional",
    "loop",
    "LTP",
    "StatementOccurrence",
    "FKInstance",
    "unfold",
    "unfold_program",
]
