"""The BTP program AST and foreign-key annotations (Section 5.1).

The grammar is ``P ← loop(P) | (P | P) | (P | ε) | P;P | q``.  AST nodes are
immutable; statements may appear only once per program (their names act as
identifiers, exactly as ``q1 … q29`` do in the paper's figures), which makes
foreign-key annotations of the form ``q_target = f(q_source)`` unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.btp.statement import Statement, StatementType
from repro.errors import ProgramError
from repro.schema import Schema


class ProgramNode:
    """Base class for BTP AST nodes."""

    def statements(self) -> Iterator[Statement]:
        """Yield every statement in the subtree, in syntactic order."""
        raise NotImplementedError

    def enclosing_loops(self) -> dict[str, tuple[int, ...]]:
        """Map each statement name to the ids of loops enclosing it."""
        result: dict[str, tuple[int, ...]] = {}
        self._collect_loops(result, ())
        return result

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Stmt(ProgramNode):
    """A leaf node wrapping a single statement ``q``."""

    statement: Statement

    def statements(self) -> Iterator[Statement]:
        yield self.statement

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        result[self.statement.name] = loops

    def __str__(self) -> str:
        return self.statement.name


@dataclass(frozen=True)
class Seq(ProgramNode):
    """Sequential composition ``P1; P2; …; Pk``."""

    parts: tuple[ProgramNode, ...]

    def statements(self) -> Iterator[Statement]:
        for part in self.parts:
            yield from part.statements()

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        for part in self.parts:
            part._collect_loops(result, loops)

    def __str__(self) -> str:
        return "; ".join(str(part) for part in self.parts)


@dataclass(frozen=True)
class Choice(ProgramNode):
    """Branching ``(P1 | P2)`` — exactly one alternative executes."""

    left: ProgramNode
    right: ProgramNode

    def statements(self) -> Iterator[Statement]:
        yield from self.left.statements()
        yield from self.right.statements()

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        self.left._collect_loops(result, loops)
        self.right._collect_loops(result, loops)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Opt(ProgramNode):
    """Optional execution ``(P | ε)``."""

    body: ProgramNode

    def statements(self) -> Iterator[Statement]:
        yield from self.body.statements()

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        self.body._collect_loops(result, loops)

    def __str__(self) -> str:
        return f"({self.body} | ε)"


@dataclass(frozen=True)
class Loop(ProgramNode):
    """Iteration ``loop(P)`` — the body repeats a finite number of times."""

    body: ProgramNode

    def statements(self) -> Iterator[Statement]:
        yield from self.body.statements()

    def _collect_loops(self, result: dict[str, tuple[int, ...]], loops: tuple[int, ...]) -> None:
        self.body._collect_loops(result, loops + (id(self),))

    def __str__(self) -> str:
        return f"loop({self.body})"


def _as_node(part: ProgramNode | Statement) -> ProgramNode:
    if isinstance(part, Statement):
        return Stmt(part)
    if isinstance(part, ProgramNode):
        return part
    raise ProgramError(f"expected a Statement or ProgramNode, got {type(part).__name__}")


def seq(*parts: ProgramNode | Statement) -> ProgramNode:
    """Build ``P1; …; Pk``; a single part is returned unchanged."""
    if not parts:
        raise ProgramError("seq() requires at least one part")
    nodes = tuple(_as_node(part) for part in parts)
    if len(nodes) == 1:
        return nodes[0]
    return Seq(nodes)


def choice(left: ProgramNode | Statement, right: ProgramNode | Statement) -> Choice:
    """Build ``(P1 | P2)``."""
    return Choice(_as_node(left), _as_node(right))


def optional(body: ProgramNode | Statement) -> Opt:
    """Build ``(P | ε)``."""
    return Opt(_as_node(body))


def loop(body: ProgramNode | Statement) -> Loop:
    """Build ``loop(P)``."""
    return Loop(_as_node(body))


@dataclass(frozen=True)
class FKConstraint:
    """A foreign-key annotation ``q_target = f(q_source)`` on a BTP.

    ``source`` names the statement over ``dom(f)`` (the referencing side)
    and ``target`` the statement over ``range(f)`` (the referenced side);
    the paper requires the target to be key-based.  For instance the
    running example annotates PlaceBid with ``q3 = f1(q4)``: here
    ``fk="f1"``, ``source="q4"`` (over Bids) and ``target="q3"``
    (over Buyer).
    """

    fk: str
    source: str
    target: str

    def __str__(self) -> str:
        return f"{self.target} = {self.fk}({self.source})"


#: Statement types acceptable as the *target* of a foreign-key constraint
#: ("key-based" in the sense of Section 5.1: they access exactly one tuple).
KEY_BASED_TARGETS = frozenset(
    {
        StatementType.INSERT,
        StatementType.KEY_SELECT,
        StatementType.KEY_UPDATE,
        StatementType.KEY_DELETE,
    }
)


@dataclass(frozen=True)
class BTP:
    """A named basic transaction program with foreign-key annotations."""

    name: str
    root: ProgramNode
    constraints: tuple[FKConstraint, ...] = ()

    def __init__(
        self,
        name: str,
        root: ProgramNode | Statement,
        constraints: Iterable[FKConstraint] = (),
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "root", _as_node(root))
        object.__setattr__(self, "constraints", tuple(constraints))
        if not name:
            raise ProgramError("program name must be a non-empty string")
        self._validate()

    def _validate(self) -> None:
        names = [stmt.name for stmt in self.root.statements()]
        if len(set(names)) != len(names):
            raise ProgramError(
                f"program {self.name!r}: statement names must be unique, got {names!r}"
            )
        by_name = self.statements_by_name()
        for constraint in self.constraints:
            for role, stmt_name in (("source", constraint.source), ("target", constraint.target)):
                if stmt_name not in by_name:
                    raise ProgramError(
                        f"program {self.name!r}: constraint {constraint} references unknown "
                        f"{role} statement {stmt_name!r}"
                    )
            target = by_name[constraint.target]
            if target.stype not in KEY_BASED_TARGETS:
                raise ProgramError(
                    f"program {self.name!r}: constraint {constraint} target must be key-based, "
                    f"got {target.stype.value!r}"
                )

    def statements(self) -> tuple[Statement, ...]:
        """All statements of the program in syntactic order."""
        return tuple(self.root.statements())

    def statements_by_name(self) -> dict[str, Statement]:
        """Statement lookup by name."""
        return {stmt.name: stmt for stmt in self.root.statements()}

    @property
    def is_linear(self) -> bool:
        """True when the program contains no loops or branching (an LTP)."""
        return _is_linear(self.root)

    def validate_against(self, schema: Schema) -> None:
        """Check all statements and constraints against a schema."""
        for stmt in self.root.statements():
            stmt.validate_against(schema.relation(stmt.relation))
        by_name = self.statements_by_name()
        for constraint in self.constraints:
            fk = schema.foreign_key(constraint.fk)
            source = by_name[constraint.source]
            target = by_name[constraint.target]
            if source.relation != fk.source:
                raise ProgramError(
                    f"program {self.name!r}: constraint {constraint}: source statement is over "
                    f"{source.relation!r} but dom({fk.name}) = {fk.source!r}"
                )
            if target.relation != fk.target:
                raise ProgramError(
                    f"program {self.name!r}: constraint {constraint}: target statement is over "
                    f"{target.relation!r} but range({fk.name}) = {fk.target!r}"
                )

    def widened(self, schema: Schema) -> "BTP":
        """The tuple-granularity version of the program (see Section 7.2)."""
        return BTP(self.name, _widen_node(self.root, schema), self.constraints)

    def __str__(self) -> str:
        return f"{self.name} := {self.root}"


def _is_linear(node: ProgramNode) -> bool:
    if isinstance(node, Stmt):
        return True
    if isinstance(node, Seq):
        return all(_is_linear(part) for part in node.parts)
    return False


def _widen_node(node: ProgramNode, schema: Schema) -> ProgramNode:
    if isinstance(node, Stmt):
        return Stmt(node.statement.widened(schema.attributes(node.statement.relation)))
    if isinstance(node, Seq):
        return Seq(tuple(_widen_node(part, schema) for part in node.parts))
    if isinstance(node, Choice):
        return Choice(_widen_node(node.left, schema), _widen_node(node.right, schema))
    if isinstance(node, Opt):
        return Opt(_widen_node(node.body, schema))
    if isinstance(node, Loop):
        return Loop(_widen_node(node.body, schema))
    raise ProgramError(f"unknown node type {type(node).__name__}")


def program_sequence(statements: Sequence[Statement]) -> ProgramNode:
    """Convenience: build a linear program node from a statement sequence."""
    return seq(*statements)
