"""BTP statements and the constraints of Figure 5.

A statement ``q`` carries ``type(q)``, ``rel(q)``, ``PReadSet(q)``,
``ReadSet(q)`` and ``WriteSet(q)``.  The paper distinguishes the *undefined*
set ⊥ ("not applicable for this statement type") from a defined-but-empty
set; we model ⊥ as ``None`` and keep the distinction throughout, because
Figure 5 constrains which of the three sets may be defined per type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ProgramError
from repro.schema import Relation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.schema import StatementMasks

AttrSet = Optional[frozenset[str]]

#: Value used to render the undefined set ⊥.
BOTTOM = "⊥"


class StatementType(enum.Enum):
    """The seven statement types of Section 5.1."""

    INSERT = "ins"
    KEY_DELETE = "key del"
    PRED_DELETE = "pred del"
    KEY_SELECT = "key sel"
    PRED_SELECT = "pred sel"
    KEY_UPDATE = "key upd"
    PRED_UPDATE = "pred upd"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_key_based(self) -> bool:
        """True for statements whose retrieval is a key-based lookup.

        Inserts also access exactly one tuple, which is why the paper's
        foreign-key machinery (``cDepConds``) treats them like key-based
        writes; they are reported as key-based here.
        """
        return self in (
            StatementType.INSERT,
            StatementType.KEY_SELECT,
            StatementType.KEY_UPDATE,
            StatementType.KEY_DELETE,
        )

    @property
    def is_predicate_based(self) -> bool:
        """True for statements that start with a predicate read."""
        return not self.is_key_based

    @property
    def performs_write(self) -> bool:
        """True when instantiations contain a W-, I- or D-operation."""
        return self not in (StatementType.KEY_SELECT, StatementType.PRED_SELECT)

    @property
    def performs_read(self) -> bool:
        """True when instantiations contain an R-operation."""
        return self in (
            StatementType.KEY_SELECT,
            StatementType.PRED_SELECT,
            StatementType.KEY_UPDATE,
            StatementType.PRED_UPDATE,
        )


#: Types whose statements instantiate to an R- or PR-operation first — the
#: trigger set of Theorem 6.4 / Algorithm 2 (re-exported by
#: :mod:`repro.detection.typeii`; defined here so the edge-block layer can
#: use it without importing the detection package).
READ_TRIGGER_TYPES = frozenset(
    {
        StatementType.KEY_SELECT,
        StatementType.PRED_SELECT,
        StatementType.PRED_UPDATE,
        StatementType.PRED_DELETE,
    }
)


def _as_attr_set(value: Iterable[str] | None) -> AttrSet:
    if value is None:
        return None
    return frozenset(value)


@dataclass(frozen=True)
class Statement:
    """A single BTP statement with the functions of Section 5.1.

    Use the classmethod constructors (:meth:`insert`, :meth:`key_select`,
    ...) when building workloads by hand; they fill in the sets that
    Figure 5 forces (e.g. ``WriteSet = Attr(R)`` for inserts and deletes)
    and validate the rest.
    """

    name: str
    stype: StatementType
    relation: str
    pread_set: AttrSet
    read_set: AttrSet
    write_set: AttrSet

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramError("statement name must be a non-empty string")
        if not self.relation:
            raise ProgramError(f"statement {self.name!r}: relation must be non-empty")
        object.__setattr__(self, "pread_set", _as_attr_set(self.pread_set))
        object.__setattr__(self, "read_set", _as_attr_set(self.read_set))
        object.__setattr__(self, "write_set", _as_attr_set(self.write_set))
        self._check_figure5()

    # -- Figure 5 ---------------------------------------------------------
    def _check_figure5(self) -> None:
        """Enforce the per-type constraints of Figure 5."""
        st = self.stype
        expect_defined = {
            StatementType.INSERT: (False, False, True),
            StatementType.KEY_DELETE: (False, False, True),
            StatementType.PRED_DELETE: (True, False, True),
            StatementType.KEY_SELECT: (False, True, False),
            StatementType.PRED_SELECT: (True, True, False),
            StatementType.KEY_UPDATE: (False, True, True),
            StatementType.PRED_UPDATE: (True, True, True),
        }
        pread_def, read_def, write_def = expect_defined[st]
        self._check_definedness("PReadSet", self.pread_set, pread_def)
        self._check_definedness("ReadSet", self.read_set, read_def)
        self._check_definedness("WriteSet", self.write_set, write_def)
        if st in (StatementType.KEY_UPDATE, StatementType.PRED_UPDATE) and not self.write_set:
            raise ProgramError(
                f"statement {self.name!r}: WriteSet of an update must be non-empty (Figure 5)"
            )
        if st in (StatementType.INSERT, StatementType.KEY_DELETE, StatementType.PRED_DELETE):
            if not self.write_set:
                raise ProgramError(
                    f"statement {self.name!r}: WriteSet of {st.value} must be Attr(rel), "
                    "hence non-empty (Figure 5)"
                )

    def _check_definedness(self, label: str, value: AttrSet, expected: bool) -> None:
        if expected and value is None:
            raise ProgramError(
                f"statement {self.name!r} of type {self.stype.value!r}: {label} must be "
                "defined (Figure 5)"
            )
        if not expected and value is not None:
            raise ProgramError(
                f"statement {self.name!r} of type {self.stype.value!r}: {label} must be "
                f"{BOTTOM} (Figure 5)"
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def insert(
        cls, name: str, relation: Relation, columns: Iterable[str] | None = None
    ) -> "Statement":
        """``INSERT INTO R [(cols)] VALUES (...)``.

        Figure 5 sets ``WriteSet = Attr(R)``, but the paper's own Figure 17
        restricts insert WriteSets to the columns the SQL statement supplies
        (e.g. q11 omits ``o_carrier_id``); pass ``columns`` to do the same.
        """
        written = relation.attribute_set if columns is None else frozenset(columns)
        return cls(name, StatementType.INSERT, relation.name, None, None, written)

    @classmethod
    def key_select(cls, name: str, relation: Relation, reads: Iterable[str]) -> "Statement":
        """Key-based ``SELECT`` returning exactly one tuple."""
        return cls(name, StatementType.KEY_SELECT, relation.name, None, frozenset(reads), None)

    @classmethod
    def pred_select(
        cls, name: str, relation: Relation, predicate: Iterable[str], reads: Iterable[str]
    ) -> "Statement":
        """Predicate-based ``SELECT`` over an arbitrary number of tuples."""
        return cls(
            name,
            StatementType.PRED_SELECT,
            relation.name,
            frozenset(predicate),
            frozenset(reads),
            None,
        )

    @classmethod
    def key_update(
        cls, name: str, relation: Relation, reads: Iterable[str], writes: Iterable[str]
    ) -> "Statement":
        """Key-based ``UPDATE`` of exactly one tuple (an atomic R-W chunk)."""
        return cls(
            name,
            StatementType.KEY_UPDATE,
            relation.name,
            None,
            frozenset(reads),
            frozenset(writes),
        )

    @classmethod
    def pred_update(
        cls,
        name: str,
        relation: Relation,
        predicate: Iterable[str],
        reads: Iterable[str],
        writes: Iterable[str],
    ) -> "Statement":
        """Predicate-based ``UPDATE`` over an arbitrary number of tuples."""
        return cls(
            name,
            StatementType.PRED_UPDATE,
            relation.name,
            frozenset(predicate),
            frozenset(reads),
            frozenset(writes),
        )

    @classmethod
    def key_delete(cls, name: str, relation: Relation) -> "Statement":
        """Key-based ``DELETE`` of exactly one tuple."""
        return cls(
            name, StatementType.KEY_DELETE, relation.name, None, None, relation.attribute_set
        )

    @classmethod
    def pred_delete(
        cls, name: str, relation: Relation, predicate: Iterable[str]
    ) -> "Statement":
        """Predicate-based ``DELETE`` over an arbitrary number of tuples."""
        return cls(
            name,
            StatementType.PRED_DELETE,
            relation.name,
            frozenset(predicate),
            None,
            relation.attribute_set,
        )

    # -- set access with ⊥-as-∅ semantics ---------------------------------
    @property
    def preads(self) -> frozenset[str]:
        """``PReadSet(q)`` with ⊥ coerced to the empty set (for set algebra)."""
        return self.pread_set or frozenset()

    @property
    def reads(self) -> frozenset[str]:
        """``ReadSet(q)`` with ⊥ coerced to the empty set."""
        return self.read_set or frozenset()

    @property
    def writes(self) -> frozenset[str]:
        """``WriteSet(q)`` with ⊥ coerced to the empty set."""
        return self.write_set or frozenset()

    def masks(self, interner) -> "StatementMasks":
        """This statement's attribute sets as integer bitmasks.

        ``interner`` is a schema's :class:`~repro.schema.AttributeInterner`
        (``schema.interner``); the result is memoized there, so repeated
        calls are dictionary lookups.  ⊥ stays distinguishable (``None``),
        mirroring ``pread_set``/``read_set``/``write_set``; the coercing
        accessors on :class:`~repro.schema.StatementMasks` mirror
        :attr:`preads`/:attr:`reads`/:attr:`writes`.  Masks produced by the
        same interner intersect exactly when the frozensets do — the
        equivalence the compiled kernel of :mod:`repro.summary.pairwise`
        relies on (property-tested against the frozenset conditions).
        """
        return interner.statement_masks(self)

    def widened(self, attributes: frozenset[str]) -> "Statement":
        """Return the tuple-granularity version of this statement.

        Every *defined* attribute set is replaced by the full attribute set
        of the relation, so that two operations on the same tuple always
        share an attribute — the 'tpl dep' settings of Section 7.2.
        """

        def widen(value: AttrSet) -> AttrSet:
            return None if value is None else attributes

        return Statement(
            self.name,
            self.stype,
            self.relation,
            widen(self.pread_set),
            widen(self.read_set),
            widen(self.write_set),
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible view; ⊥ serializes as ``None``, sets as sorted
        lists.  Round-trips through :meth:`from_dict`."""

        def show(value: AttrSet) -> list[str] | None:
            return None if value is None else sorted(value)

        return {
            "name": self.name,
            "type": self.stype.value,
            "relation": self.relation,
            "pread_set": show(self.pread_set),
            "read_set": show(self.read_set),
            "write_set": show(self.write_set),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Statement":
        def read(value: Iterable[str] | None) -> AttrSet:
            return None if value is None else frozenset(value)

        return cls(
            name=data["name"],
            stype=StatementType(data["type"]),
            relation=data["relation"],
            pread_set=read(data["pread_set"]),
            read_set=read(data["read_set"]),
            write_set=read(data["write_set"]),
        )

    def validate_against(self, relation: Relation) -> None:
        """Check this statement's sets against the relation's attributes."""
        if relation.name != self.relation:
            raise ProgramError(
                f"statement {self.name!r} is over {self.relation!r}, not {relation.name!r}"
            )
        for label, value in (
            ("PReadSet", self.pread_set),
            ("ReadSet", self.read_set),
            ("WriteSet", self.write_set),
        ):
            if value is None:
                continue
            unknown = value - relation.attribute_set
            if unknown:
                raise ProgramError(
                    f"statement {self.name!r}: {label} mentions unknown attributes "
                    f"{sorted(unknown)} of relation {relation.name!r}"
                )
        if self.stype in (StatementType.KEY_DELETE, StatementType.PRED_DELETE):
            if self.write_set != relation.attribute_set:
                raise ProgramError(
                    f"statement {self.name!r}: WriteSet of {self.stype.value} must equal "
                    f"Attr({relation.name}) (Figure 5)"
                )

    def __str__(self) -> str:
        def show(value: AttrSet) -> str:
            if value is None:
                return BOTTOM
            return "{" + ", ".join(sorted(value)) + "}"

        return (
            f"{self.name}: {self.stype.value} {self.relation} "
            f"PRead={show(self.pread_set)} Read={show(self.read_set)} "
            f"Write={show(self.write_set)}"
        )
