"""Unfolding BTPs into finite sets of LTPs (``Unfold≤2``, Proposition 6.1).

Unfolding replaces every ``loop(P)`` with zero, one, or two repetitions of
``P`` (each repetition may resolve inner choices differently), every
``(P1 | P2)`` with either branch, and every ``(P | ε)`` with the branch or
nothing.  Proposition 6.1 shows two loop iterations suffice for robustness
detection; ``max_loop_iterations`` is configurable for ablation experiments.

Foreign-key annotations are *bound* during unfolding: a constraint
``q_t = f(q_s)`` yields one :class:`~repro.btp.ltp.FKInstance` per pair of
occurrences of ``q_s`` and ``q_t`` whose loop paths agree on every loop that
encloses **both** statements.  Distinct iterations of a loop handle distinct
foreign-key groups, so occurrences from different iterations of a shared
loop are never related, while a statement outside the loop (e.g. the single
``INSERT INTO Orders`` of TPC-C NewOrder) is related to the occurrences of
each iteration (every order line references the one order).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.btp.ltp import FKInstance, LTP, LoopPath, StatementOccurrence
from repro.btp.program import BTP, Choice, Loop, Opt, ProgramNode, Seq, Stmt
from repro.btp.statement import Statement
from repro.errors import ProgramError


@dataclass(frozen=True)
class _ProtoOccurrence:
    """A statement occurrence before final positions are assigned."""

    statement: Statement
    loop_path: LoopPath


class _Unfolder:
    """Enumerates all ≤k-iteration unfoldings of a program AST."""

    def __init__(self, max_loop_iterations: int):
        if max_loop_iterations < 0:
            raise ProgramError("max_loop_iterations must be non-negative")
        self.max_loop_iterations = max_loop_iterations
        self._next_loop_id = 0

    def unfold(self, node: ProgramNode, path: LoopPath) -> list[tuple[_ProtoOccurrence, ...]]:
        if isinstance(node, Stmt):
            return [(_ProtoOccurrence(node.statement, path),)]
        if isinstance(node, Seq):
            return self._unfold_sequence(node.parts, path)
        if isinstance(node, Choice):
            return self.unfold(node.left, path) + self.unfold(node.right, path)
        if isinstance(node, Opt):
            return self.unfold(node.body, path) + [()]
        if isinstance(node, Loop):
            return self._unfold_loop(node, path)
        raise ProgramError(f"unknown node type {type(node).__name__}")

    def _unfold_sequence(
        self, parts: Sequence[ProgramNode], path: LoopPath
    ) -> list[tuple[_ProtoOccurrence, ...]]:
        variants_per_part = [self.unfold(part, path) for part in parts]
        result = []
        for combination in itertools.product(*variants_per_part):
            merged: tuple[_ProtoOccurrence, ...] = ()
            for piece in combination:
                merged += piece
            result.append(merged)
        return result

    def _unfold_loop(self, node: Loop, path: LoopPath) -> list[tuple[_ProtoOccurrence, ...]]:
        loop_id = self._next_loop_id
        self._next_loop_id += 1
        result: list[tuple[_ProtoOccurrence, ...]] = []
        for repetitions in range(self.max_loop_iterations + 1):
            iteration_variants = [
                self.unfold(node.body, path + ((loop_id, iteration),))
                for iteration in range(repetitions)
            ]
            for combination in itertools.product(*iteration_variants):
                merged: tuple[_ProtoOccurrence, ...] = ()
                for piece in combination:
                    merged += piece
                result.append(merged)
        return result


def _paths_compatible(first: LoopPath, second: LoopPath) -> bool:
    """True when the two occurrences agree on every shared loop."""
    second_by_loop = dict(second)
    for loop_id, iteration in first:
        if loop_id in second_by_loop and second_by_loop[loop_id] != iteration:
            return False
    return True


def _bind_constraints(program: BTP, occurrences: Sequence[StatementOccurrence]) -> list[FKInstance]:
    """Instantiate the BTP's FK annotations over concrete occurrences."""
    positions: dict[str, list[StatementOccurrence]] = {}
    for occ in occurrences:
        positions.setdefault(occ.name, []).append(occ)
    instances = []
    for constraint in program.constraints:
        for source in positions.get(constraint.source, ()):
            for target in positions.get(constraint.target, ()):
                if _paths_compatible(source.loop_path, target.loop_path):
                    instances.append(
                        FKInstance(constraint.fk, source.position, target.position)
                    )
    return instances


def unfold_program(program: BTP, max_loop_iterations: int = 2) -> tuple[LTP, ...]:
    """``Unfold≤k(P)`` for a single BTP (k = ``max_loop_iterations``).

    Duplicate unfoldings (identical statement sequences and constraint
    bindings) are removed; the original enumeration order is preserved so
    that e.g. ``PlaceBid`` yields ``PlaceBid#1 = q3;q4;q5;q6`` before
    ``PlaceBid#2 = q3;q4;q6``, matching the paper's naming.
    """
    unfolder = _Unfolder(max_loop_iterations)
    variants = unfolder.unfold(program.root, ())
    ltps: list[LTP] = []
    seen: set[tuple] = set()
    for variant in variants:
        occurrences = tuple(
            StatementOccurrence(proto.statement, pos, proto.loop_path)
            for pos, proto in enumerate(variant)
        )
        constraints = _bind_constraints(program, occurrences)
        candidate = LTP("?", occurrences, constraints, origin=program.name)
        if candidate.signature in seen:
            continue
        seen.add(candidate.signature)
        ltps.append(candidate)
    if len(ltps) == 1:
        return (_renamed(ltps[0], program.name),)
    return tuple(
        _renamed(ltp, f"{program.name}#{index}") for index, ltp in enumerate(ltps, start=1)
    )


def _renamed(ltp: LTP, name: str) -> LTP:
    return LTP(name, ltp.occurrences, ltp.constraints, origin=ltp.origin)


def unfold(programs: Iterable[BTP], max_loop_iterations: int = 2) -> tuple[LTP, ...]:
    """``Unfold≤k(𝒫)`` for a set of BTPs — the union of per-program unfoldings."""
    result: list[LTP] = []
    names_seen: set[str] = set()
    for program in programs:
        if program.name in names_seen:
            raise ProgramError(f"duplicate program name {program.name!r}")
        names_seen.add(program.name)
        result.extend(unfold_program(program, max_loop_iterations))
    return tuple(result)
