"""Linear transaction programs (LTPs) — Section 6.1.

An LTP is a plain sequence of statements.  Because unfolding a loop
duplicates its body, the *same* statement (by name) can occur at several
positions; an LTP therefore stores :class:`StatementOccurrence` objects that
remember their position and the iteration indices of the loops they were
unfolded from.  Foreign-key annotations become :class:`FKInstance` objects
bound to concrete occurrence positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.btp.statement import Statement
from repro.errors import ProgramError

#: A loop path records, innermost-last, ``(loop_id, iteration)`` pairs for
#: every loop the occurrence was unfolded from.
LoopPath = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class StatementOccurrence:
    """One occurrence of a statement within an unfolded LTP."""

    statement: Statement
    position: int
    loop_path: LoopPath = ()

    @property
    def name(self) -> str:
        """The underlying statement's name (``q1``, ``q2``, ...)."""
        return self.statement.name

    def to_dict(self) -> dict:
        return {
            "statement": self.statement.to_dict(),
            "position": self.position,
            "loop_path": [list(pair) for pair in self.loop_path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatementOccurrence":
        return cls(
            statement=Statement.from_dict(data["statement"]),
            position=int(data["position"]),
            loop_path=tuple((int(a), int(b)) for a, b in data["loop_path"]),
        )

    def __str__(self) -> str:
        return f"{self.statement.name}@{self.position}"


@dataclass(frozen=True)
class FKInstance:
    """A foreign-key constraint bound to occurrence positions.

    ``source_pos``/``target_pos`` index into the owning LTP's occurrence
    sequence; the constraint states that the tuple accessed at
    ``target_pos`` is the foreign-key image (under ``fk``) of every tuple
    accessed at ``source_pos``.
    """

    fk: str
    source_pos: int
    target_pos: int

    def to_dict(self) -> dict:
        return {"fk": self.fk, "source_pos": self.source_pos, "target_pos": self.target_pos}

    @classmethod
    def from_dict(cls, data: dict) -> "FKInstance":
        return cls(
            fk=data["fk"],
            source_pos=int(data["source_pos"]),
            target_pos=int(data["target_pos"]),
        )

    def __str__(self) -> str:
        return f"[{self.target_pos}] = {self.fk}([{self.source_pos}])"


@dataclass(frozen=True)
class LTP:
    """A linear transaction program: statement occurrences plus constraints.

    ``name`` identifies the unfolding (e.g. ``PlaceBid#1``); ``origin`` is
    the name of the BTP it was unfolded from (``PlaceBid``), which equals
    ``name`` for programs that were linear to begin with.
    """

    name: str
    occurrences: tuple[StatementOccurrence, ...]
    constraints: tuple[FKInstance, ...] = ()
    origin: str = ""

    def __init__(
        self,
        name: str,
        occurrences: Iterable[StatementOccurrence | Statement],
        constraints: Iterable[FKInstance] = (),
        origin: str = "",
    ):
        occs = []
        for pos, item in enumerate(occurrences):
            if isinstance(item, Statement):
                item = StatementOccurrence(item, pos)
            if item.position != pos:
                raise ProgramError(
                    f"LTP {name!r}: occurrence {item} expected at position {pos}"
                )
            occs.append(item)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "occurrences", tuple(occs))
        object.__setattr__(self, "constraints", tuple(constraints))
        object.__setattr__(self, "origin", origin or name)
        for inst in self.constraints:
            for pos in (inst.source_pos, inst.target_pos):
                if not 0 <= pos < len(self.occurrences):
                    raise ProgramError(
                        f"LTP {name!r}: constraint {inst} references position {pos}, "
                        f"but the program has {len(self.occurrences)} statements"
                    )

    # -- basic accessors ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.occurrences)

    def __iter__(self) -> Iterator[StatementOccurrence]:
        return iter(self.occurrences)

    @property
    def is_empty(self) -> bool:
        """True for the empty unfolding (zero loop iterations everywhere)."""
        return not self.occurrences

    @cached_property
    def statements_by_name(self) -> dict[str, Statement]:
        """Distinct statements occurring in this LTP, keyed by name."""
        result: dict[str, Statement] = {}
        for occ in self.occurrences:
            result.setdefault(occ.name, occ.statement)
        return result

    @cached_property
    def positions_by_name(self) -> dict[str, tuple[int, ...]]:
        """All positions at which each statement name occurs (sorted)."""
        result: dict[str, list[int]] = {}
        for occ in self.occurrences:
            result.setdefault(occ.name, []).append(occ.position)
        return {name: tuple(positions) for name, positions in result.items()}

    @cached_property
    def signature(self) -> tuple:
        """A structural identity used to deduplicate unfoldings.

        Two unfoldings of the same BTP are the same LTP when their
        statement sequences and bound constraints coincide.
        """
        return (
            tuple(occ.name for occ in self.occurrences),
            tuple(sorted((c.fk, c.source_pos, c.target_pos) for c in self.constraints)),
        )

    # -- order queries used by the detection algorithms --------------------
    def occurs_before(self, first: str, second: str) -> bool:
        """True iff *some* occurrence of ``first`` precedes one of ``second``.

        This is the sound lift of the strict program order ``q' <_P q`` of
        Theorem 6.4 to name-collapsed statements: if any occurrence pair is
        ordered, a schedule realising that order exists.
        """
        first_positions = self.positions_by_name.get(first)
        second_positions = self.positions_by_name.get(second)
        if not first_positions or not second_positions:
            return False
        return min(first_positions) < max(second_positions)

    def constraints_for_source(self, position: int) -> tuple[FKInstance, ...]:
        """All constraint instances whose source is the given occurrence."""
        return tuple(inst for inst in self.constraints if inst.source_pos == position)

    def statement_at(self, position: int) -> Statement:
        """The statement at an occurrence position."""
        return self.occurrences[position].statement

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible view; round-trips through :meth:`from_dict`
        (the substrate of summary-graph and session-cache persistence)."""
        return {
            "name": self.name,
            "origin": self.origin,
            "occurrences": [occ.to_dict() for occ in self.occurrences],
            "constraints": [inst.to_dict() for inst in self.constraints],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LTP":
        return cls(
            data["name"],
            (StatementOccurrence.from_dict(item) for item in data["occurrences"]),
            (FKInstance.from_dict(item) for item in data["constraints"]),
            origin=data.get("origin", ""),
        )

    def __str__(self) -> str:
        body = "; ".join(occ.name for occ in self.occurrences) or "ε"
        return f"{self.name} := {body}"
