"""``repro.churn`` — continuous robustness monitoring under workload churn.

The subsystem has three layers:

- :mod:`repro.churn.mutations` — the typed, serializable catalog of
  workload edits (program lifecycle, statement-shape promotions and
  demotions, FK-annotation churn), each reducible to incremental-session
  operations;
- :mod:`repro.churn.engine` — :class:`MutationEngine`, the seeded
  chaos-style proposer with weighted selection, burst support and
  byte-identical replay from ``(seed, step)``;
- :mod:`repro.churn.monitor` — :class:`Monitor`, which drives a warm
  :class:`~repro.analysis.Analyzer` through an edit sequence, records a
  :class:`ChurnTrace`, and cross-checks steps against a cold analyzer
  (the convergence oracle).

Surfaces: ``repro watch`` in the CLI and ``POST /v1/watch`` on the
service — both routed through the same typed request, so their JSON
outputs are byte-identical.
"""

from repro.churn.engine import DEFAULT_WEIGHTS, BurstConfig, MutationEngine
from repro.churn.monitor import ChurnStep, ChurnTrace, Monitor, OracleCheck
from repro.churn.mutations import (
    MUTATION_KINDS,
    AddFKAnnotation,
    AddProgram,
    CloneProgram,
    DemoteKeyToPredicate,
    DemoteUpdateToRead,
    DropProgram,
    Mutation,
    PromotePredicateRead,
    PromoteReadToWrite,
    RemoveFKAnnotation,
    apply_mutation,
    mutation_from_dict,
)

__all__ = [
    "AddFKAnnotation",
    "AddProgram",
    "BurstConfig",
    "ChurnStep",
    "ChurnTrace",
    "CloneProgram",
    "DEFAULT_WEIGHTS",
    "DemoteKeyToPredicate",
    "DemoteUpdateToRead",
    "DropProgram",
    "MUTATION_KINDS",
    "Monitor",
    "Mutation",
    "MutationEngine",
    "OracleCheck",
    "PromotePredicateRead",
    "PromoteReadToWrite",
    "RemoveFKAnnotation",
    "apply_mutation",
    "mutation_from_dict",
]
