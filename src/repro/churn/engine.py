"""The seeded chaos-style mutation engine behind ``repro watch``.

:class:`MutationEngine` proposes workload edits the way the elspeth-style
chaos harness injects faults: a seeded :class:`random.Random` drives
weighted selection over the applicable mutations of
:mod:`repro.churn.mutations`, with *burst* steps that land several edits
at once (a deploy rolling out more than one change).

Determinism is the whole point — every step draws from its own sub-RNG
seeded with the string ``f"{seed}:{step}"`` (string seeding hashes via
SHA-512, so it is stable across processes, platforms and
``PYTHONHASHSEED``), and candidate enumeration walks programs, statements
and constraints in syntactic order.  Proposals therefore depend only on
``(seed, step, workload state)``: re-running the same seed over the same
base workload replays the identical edit sequence byte-for-byte, and any
single step can be reproduced from ``(seed, step)`` plus the workload
state the trace recorded leading up to it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.btp.program import KEY_BASED_TARGETS, FKConstraint
from repro.btp.statement import StatementType
from repro.errors import ProgramError
from repro.workloads.base import Workload, WorkloadSource

from repro.churn.mutations import (
    MUTATION_KINDS,
    AddFKAnnotation,
    AddProgram,
    CloneProgram,
    DemoteKeyToPredicate,
    DemoteUpdateToRead,
    DropProgram,
    Mutation,
    PromotePredicateRead,
    PromoteReadToWrite,
    RemoveFKAnnotation,
    apply_mutation,
)

#: Default selection weight per mutation kind.  Statement-shape changes
#: dominate (they are the edits the paper's Section 7 sensitivity analysis
#: varies); lifecycle edits and annotation churn are rarer.  Promotions and
#: demotions carry equal weight so long runs do not drift monotonically
#: toward (or away from) robustness.
DEFAULT_WEIGHTS: dict[str, float] = {
    "add_program": 1.0,
    "drop_program": 1.0,
    "clone_program": 1.0,
    "promote_predicate_to_key": 2.0,
    "demote_key_to_predicate": 2.0,
    "promote_read_to_update": 2.0,
    "demote_update_to_read": 2.0,
    "add_protecting_fk": 1.5,
    "remove_protecting_fk": 1.5,
}

_PREDICATE_BASED = (
    StatementType.PRED_SELECT,
    StatementType.PRED_UPDATE,
    StatementType.PRED_DELETE,
)
_KEY_DEMOTABLE = (StatementType.KEY_SELECT, StatementType.KEY_UPDATE)
_READS = (StatementType.KEY_SELECT, StatementType.PRED_SELECT)
_UPDATES = (StatementType.KEY_UPDATE, StatementType.PRED_UPDATE)


@dataclass(frozen=True)
class BurstConfig:
    """Burst behaviour: with ``probability``, a step lands a uniform
    ``min_size``–``max_size`` run of mutations instead of a single one."""

    probability: float = 0.15
    min_size: int = 2
    max_size: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ProgramError(
                f"burst probability must be within [0, 1], got {self.probability}"
            )
        if not 1 <= self.min_size <= self.max_size:
            raise ProgramError(
                f"burst sizes must satisfy 1 <= min <= max, got "
                f"{self.min_size}..{self.max_size}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "probability": self.probability,
            "min_size": self.min_size,
            "max_size": self.max_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BurstConfig":
        return cls(
            probability=float(data["probability"]),
            min_size=int(data["min_size"]),
            max_size=int(data["max_size"]),
        )


class MutationEngine:
    """Deterministic, seeded proposer of workload mutations.

    ``base`` is the pre-churn workload: dropped base programs stay
    restorable (the ``add_program`` kind), and program growth is capped at
    ``max_programs`` (default: base size + 6) while ``min_programs``
    (default 2) keeps drops from gutting the workload.  ``weights``
    overrides :data:`DEFAULT_WEIGHTS` per kind; a kind weighted ``0`` is
    never proposed.
    """

    def __init__(
        self,
        base: WorkloadSource,
        *,
        seed: int,
        weights: Mapping[str, float] | None = None,
        burst: BurstConfig | None = None,
        min_programs: int = 2,
        max_programs: int | None = None,
    ):
        self.base = Workload.resolve(base)
        self.seed = int(seed)
        unknown = set(weights or ()) - set(MUTATION_KINDS)
        if unknown:
            raise ProgramError(
                f"unknown mutation kind(s) in weights: {sorted(unknown)!r}; "
                f"expected a subset of {sorted(MUTATION_KINDS)}"
            )
        self.weights = {**DEFAULT_WEIGHTS, **dict(weights or {})}
        for kind, weight in self.weights.items():
            if weight < 0:
                raise ProgramError(f"weight of {kind!r} must be >= 0, got {weight}")
        self.burst = burst if burst is not None else BurstConfig()
        if min_programs < 1:
            raise ProgramError(f"min_programs must be >= 1, got {min_programs}")
        self.min_programs = min_programs
        self.max_programs = (
            max_programs
            if max_programs is not None
            else len(self.base.programs) + 6
        )
        if self.max_programs < len(self.base.programs):
            raise ProgramError(
                f"max_programs ({self.max_programs}) is below the base workload "
                f"size ({len(self.base.programs)})"
            )

    # -- determinism --------------------------------------------------------
    def step_rng(self, step: int) -> random.Random:
        """The sub-RNG of one step, derivable from ``(seed, step)`` alone.

        String seeding takes CPython's SHA-512 path, which is stable across
        runs and platforms — unlike tuple seeds (``hash()``) it does not
        depend on ``PYTHONHASHSEED``.
        """
        return random.Random(f"{self.seed}:{step}")

    # -- proposal -----------------------------------------------------------
    def propose(self, workload: Workload, step: int) -> tuple[Mutation, ...]:
        """The mutation(s) of one step against the given workload state.

        Usually one mutation; a burst (see :class:`BurstConfig`) lands
        several, each proposed against the state left by the previous one.
        Returns ``()`` only when no kind has any applicable candidate
        (practically unreachable: demotions and drops always apply to a
        non-trivial workload).
        """
        rng = self.step_rng(step)
        count = 1
        if self.burst.probability and rng.random() < self.burst.probability:
            count = rng.randint(self.burst.min_size, self.burst.max_size)
        chosen: list[Mutation] = []
        scratch = workload
        for index in range(count):
            mutation = self._pick(scratch, rng, f"{step}.{index}")
            if mutation is None:
                break
            chosen.append(mutation)
            if index + 1 < count:
                scratch = apply_mutation(scratch, mutation, self.base)
        return tuple(chosen)

    def _pick(
        self, workload: Workload, rng: random.Random, tag: str
    ) -> Mutation | None:
        """One weighted draw: first the kind (among kinds with candidates),
        then a uniform candidate of that kind."""
        table: list[tuple[str, float, tuple[Mutation, ...]]] = []
        for kind in MUTATION_KINDS:
            weight = self.weights.get(kind, 0.0)
            if weight <= 0:
                continue
            options = self.candidates(workload, kind, tag=tag)
            if options:
                table.append((kind, weight, options))
        if not table:
            return None
        kind = rng.choices(
            [row[0] for row in table], weights=[row[1] for row in table], k=1
        )[0]
        options = next(row[2] for row in table if row[0] == kind)
        return options[rng.randrange(len(options))]

    # -- candidate enumeration ----------------------------------------------
    def candidates(
        self, workload: Workload, kind: str, *, tag: str = "0"
    ) -> tuple[Mutation, ...]:
        """Every applicable mutation of one kind, in deterministic order
        (programs in workload order, statements in syntactic order).

        ``tag`` disambiguates generated clone names (the engine passes
        ``"<step>.<index in burst>"``).
        """
        if kind not in MUTATION_KINDS:
            raise ProgramError(
                f"unknown mutation kind {kind!r}; expected one of "
                f"{sorted(MUTATION_KINDS)}"
            )
        if kind == "add_program":
            if len(workload.programs) >= self.max_programs:
                return ()
            present = set(workload.program_names)
            return tuple(
                AddProgram(name)
                for name in self.base.program_names
                if name not in present
            )
        if kind == "drop_program":
            if len(workload.programs) <= self.min_programs:
                return ()
            return tuple(DropProgram(name) for name in workload.program_names)
        if kind == "clone_program":
            if len(workload.programs) >= self.max_programs:
                return ()
            present = set(workload.program_names)
            return tuple(
                CloneProgram(name, f"{name}~{tag}")
                for name in workload.program_names
                if f"{name}~{tag}" not in present
            )
        if kind == "promote_predicate_to_key":
            return self._statement_candidates(
                workload, _PREDICATE_BASED, PromotePredicateRead
            )
        if kind == "demote_key_to_predicate":
            return self._statement_candidates(
                workload, _KEY_DEMOTABLE, DemoteKeyToPredicate
            )
        if kind == "promote_read_to_update":
            return self._statement_candidates(workload, _READS, PromoteReadToWrite)
        if kind == "demote_update_to_read":
            return self._statement_candidates(workload, _UPDATES, DemoteUpdateToRead)
        if kind == "add_protecting_fk":
            return self._fk_add_candidates(workload)
        return tuple(
            RemoveFKAnnotation(
                program.name, constraint.fk, constraint.source, constraint.target
            )
            for program in workload.programs
            for constraint in program.constraints
        )

    @staticmethod
    def _statement_candidates(workload, stypes, mutation_cls) -> tuple[Mutation, ...]:
        return tuple(
            mutation_cls(program.name, stmt.name)
            for program in workload.programs
            for stmt in program.statements()
            if stmt.stype in stypes
        )

    def _fk_add_candidates(self, workload: Workload) -> tuple[Mutation, ...]:
        """Missing ``target = fk(source)`` annotations: for each statement
        over ``dom(fk)``, the nearest *earlier* key-based statement over
        ``range(fk)`` in the same program (the shape the repair advisor
        proposes, without its write-only restriction)."""
        result: list[Mutation] = []
        for program in workload.programs:
            statements = program.statements()
            existing = set(program.constraints)
            for position, stmt in enumerate(statements):
                for fk in workload.schema.foreign_keys_from(stmt.relation):
                    target = next(
                        (
                            earlier.name
                            for earlier in reversed(statements[:position])
                            if earlier.relation == fk.target
                            and earlier.stype in KEY_BASED_TARGETS
                        ),
                        None,
                    )
                    if target is None:
                        continue
                    constraint = FKConstraint(fk.name, source=stmt.name, target=target)
                    if constraint in existing:
                        continue
                    result.append(
                        AddFKAnnotation(program.name, fk.name, stmt.name, target)
                    )
        return tuple(result)
