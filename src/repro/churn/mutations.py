"""The churn mutation catalog: typed, serializable workload edits.

Each :class:`Mutation` is one edit a deploy could make to a live workload
— the template-evolution setting of Vandevoort et al. 2021 ("Robustness
against Read Committed for Transaction Templates").  The catalog covers
program lifecycle (add back / drop / clone), statement-shape changes
(predicate↔key, read↔update — both directions, so long churn runs do not
drift monotonically toward robustness) and foreign-key annotations
(add / remove).  Where a mutation coincides with a repair edit it
delegates to :mod:`repro.repair.edits` (the promotions and
``add_protecting_fk``), so the two catalogs cannot diverge on statement
semantics; the demotions are the inverse transforms, defined here.

Mutations are frozen dataclasses serializing via :meth:`Mutation.to_dict`
/ :func:`mutation_from_dict` — a recorded
:class:`~repro.churn.monitor.ChurnTrace` replays edits from their
serialized form without re-running the engine.  A mutation resolves to
session operations through :meth:`Mutation.operations`: ``add``/``remove``
/``replace`` instructions that :class:`~repro.churn.monitor.Monitor` maps
1:1 onto :meth:`Analyzer.add_program` / :meth:`~Analyzer.remove_program` /
:meth:`~Analyzer.replace_program`, keeping every untouched edge block
warm.  An inapplicable mutation (unknown program, wrong statement type,
absent constraint) raises :class:`ProgramError` instead of silently
mutating the wrong thing — replay against a diverged workload fails loud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, NamedTuple

from repro.btp.program import BTP, FKConstraint
from repro.btp.statement import Statement, StatementType
from repro.errors import ProgramError
from repro.repair.edits import (
    AddProtectingFK,
    PromotePredicateToKey,
    PromoteReadToUpdate,
    map_statement,
)
from repro.workloads.base import Workload


class Operation(NamedTuple):
    """One session edit a mutation resolves to.

    ``action`` is ``"add"``, ``"remove"`` or ``"replace"``; ``name`` is the
    program acted on (for ``replace``: the *existing* name) and ``program``
    the new :class:`BTP` for ``add``/``replace``.
    """

    action: str
    name: str
    program: BTP | None = None


@dataclass(frozen=True)
class Mutation:
    """Base class of all churn mutations; ``program`` names the target."""

    program: str

    kind: ClassVar[str] = ""

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        """The session edits this mutation performs on ``workload``.

        ``base`` is the pre-churn workload (needed only by
        :class:`AddProgram`, which restores a dropped base program).
        Raises :class:`ProgramError` when the mutation does not apply to
        the current workload state.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def _payload(self) -> dict[str, Any]:
        return {}

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "program": self.program, **self._payload()}

    def _program_of(self, workload: Workload) -> BTP:
        try:
            return workload.program(self.program)
        except ProgramError:
            raise ProgramError(
                f"mutation {self.kind}: workload has no program {self.program!r}"
            ) from None

    def _statement_of(self, btp: BTP, name: str) -> Statement:
        stmt = btp.statements_by_name().get(name)
        if stmt is None:
            raise ProgramError(
                f"mutation {self.kind}: program {btp.name!r} has no statement {name!r}"
            )
        return stmt

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class AddProgram(Mutation):
    """Restore a base-workload program that churn previously dropped."""

    kind: ClassVar[str] = "add_program"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        if base is None:
            raise ProgramError(
                f"mutation {self.kind}: restoring {self.program!r} needs the "
                "base workload"
            )
        program = base.program(self.program)
        if self.program in workload.program_names:
            raise ProgramError(
                f"mutation {self.kind}: program {self.program!r} is already present"
            )
        return (Operation("add", self.program, program),)

    def describe(self) -> str:
        return f"restore base program {self.program}"


@dataclass(frozen=True)
class DropProgram(Mutation):
    """Remove a program from the workload."""

    kind: ClassVar[str] = "drop_program"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        self._program_of(workload)
        if len(workload.programs) <= 1:
            raise ProgramError(
                f"mutation {self.kind}: dropping {self.program!r} would empty "
                "the workload"
            )
        return (Operation("remove", self.program),)

    def describe(self) -> str:
        return f"drop program {self.program}"


@dataclass(frozen=True)
class CloneProgram(Mutation):
    """Duplicate a program under a new name (a scaled-out deploy)."""

    new_name: str

    kind: ClassVar[str] = "clone_program"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        if self.new_name in workload.program_names:
            raise ProgramError(
                f"mutation {self.kind}: program {self.new_name!r} already exists"
            )
        return (Operation("add", self.new_name, BTP(self.new_name, btp.root, btp.constraints)),)

    def describe(self) -> str:
        return f"clone program {self.program} as {self.new_name}"

    def _payload(self) -> dict[str, Any]:
        return {"new_name": self.new_name}


@dataclass(frozen=True)
class PromotePredicateRead(Mutation):
    """Predicate→key promotion (delegates to the repair catalog)."""

    statement: str

    kind: ClassVar[str] = "promote_predicate_to_key"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        (replacement,) = PromotePredicateToKey(self.program, self.statement).apply_to(
            btp, workload.schema
        )
        return (Operation("replace", self.program, replacement),)

    def describe(self) -> str:
        return f"promote predicate-based {self.statement} of {self.program} to key-based"

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class DemoteKeyToPredicate(Mutation):
    """Key→predicate demotion: the inverse of ``promote_predicate_to_key``.

    The predicate attributes become the relation's key (the lookup turns
    into a scan over the same attributes).  Foreign-key annotations whose
    *target* is the demoted statement are dropped — a predicate-based
    statement is no longer a valid constraint target (Section 5.1).
    """

    statement: str

    kind: ClassVar[str] = "demote_key_to_predicate"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        stmt = self._statement_of(btp, self.statement)
        relation = workload.schema.relation(stmt.relation)
        predicate = frozenset(relation.key) or relation.attribute_set

        def transform(stmt: Statement) -> Statement:
            if stmt.stype is StatementType.KEY_SELECT:
                return Statement(
                    stmt.name, StatementType.PRED_SELECT, stmt.relation,
                    predicate, stmt.read_set, None,
                )
            if stmt.stype is StatementType.KEY_UPDATE:
                return Statement(
                    stmt.name, StatementType.PRED_UPDATE, stmt.relation,
                    predicate, stmt.read_set, stmt.write_set,
                )
            raise ProgramError(
                f"mutation {self.kind}: statement {stmt.name!r} of {btp.name!r} is "
                f"{stmt.stype.value!r}, not a key-based select/update"
            )

        constraints = tuple(
            constraint
            for constraint in btp.constraints
            if constraint.target != self.statement
        )
        return (
            Operation(
                "replace",
                self.program,
                BTP(btp.name, map_statement(btp.root, self.statement, transform), constraints),
            ),
        )

    def describe(self) -> str:
        return f"demote key-based {self.statement} of {self.program} to predicate-based"

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class PromoteReadToWrite(Mutation):
    """Read→U-read promotion (delegates to the repair catalog)."""

    statement: str

    kind: ClassVar[str] = "promote_read_to_update"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        (replacement,) = PromoteReadToUpdate(self.program, self.statement).apply_to(
            btp, workload.schema
        )
        return (Operation("replace", self.program, replacement),)

    def describe(self) -> str:
        return f"promote read {self.statement} of {self.program} to a U-read (update)"

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class DemoteUpdateToRead(Mutation):
    """Update→read demotion: the inverse of ``promote_read_to_update``.

    The write set is dropped and the read set kept; key-based updates stay
    valid constraint targets (they demote to key-based selects), so no
    annotation filtering is needed.
    """

    statement: str

    kind: ClassVar[str] = "demote_update_to_read"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        self._statement_of(btp, self.statement)

        def transform(stmt: Statement) -> Statement:
            if stmt.stype is StatementType.KEY_UPDATE:
                return Statement(
                    stmt.name, StatementType.KEY_SELECT, stmt.relation,
                    None, stmt.read_set, None,
                )
            if stmt.stype is StatementType.PRED_UPDATE:
                return Statement(
                    stmt.name, StatementType.PRED_SELECT, stmt.relation,
                    stmt.pread_set, stmt.read_set, None,
                )
            raise ProgramError(
                f"mutation {self.kind}: statement {stmt.name!r} of {btp.name!r} is "
                f"{stmt.stype.value!r}, not an update"
            )

        return (
            Operation(
                "replace",
                self.program,
                BTP(
                    btp.name,
                    map_statement(btp.root, self.statement, transform),
                    btp.constraints,
                ),
            ),
        )

    def describe(self) -> str:
        return f"demote update {self.statement} of {self.program} to a read"

    def _payload(self) -> dict[str, Any]:
        return {"statement": self.statement}


@dataclass(frozen=True)
class AddFKAnnotation(Mutation):
    """Add ``target = fk(source)`` (delegates to the repair catalog)."""

    fk: str
    source_statement: str
    target_statement: str

    kind: ClassVar[str] = "add_protecting_fk"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        (replacement,) = AddProtectingFK(
            self.program, self.fk, self.source_statement, self.target_statement
        ).apply_to(btp, workload.schema)
        return (Operation("replace", self.program, replacement),)

    def describe(self) -> str:
        return (
            f"annotate {self.program} with "
            f"{self.target_statement} = {self.fk}({self.source_statement})"
        )

    def _payload(self) -> dict[str, Any]:
        return {
            "fk": self.fk,
            "source_statement": self.source_statement,
            "target_statement": self.target_statement,
        }


@dataclass(frozen=True)
class RemoveFKAnnotation(Mutation):
    """Drop an existing ``target = fk(source)`` annotation."""

    fk: str
    source_statement: str
    target_statement: str

    kind: ClassVar[str] = "remove_protecting_fk"

    def operations(
        self, workload: Workload, base: Workload | None = None
    ) -> tuple[Operation, ...]:
        btp = self._program_of(workload)
        constraint = FKConstraint(
            self.fk, source=self.source_statement, target=self.target_statement
        )
        if constraint not in btp.constraints:
            raise ProgramError(
                f"mutation {self.kind}: program {btp.name!r} carries no {constraint}"
            )
        remaining = tuple(item for item in btp.constraints if item != constraint)
        return (Operation("replace", self.program, BTP(btp.name, btp.root, remaining)),)

    def describe(self) -> str:
        return (
            f"remove annotation {self.target_statement} = "
            f"{self.fk}({self.source_statement}) from {self.program}"
        )

    def _payload(self) -> dict[str, Any]:
        return {
            "fk": self.fk,
            "source_statement": self.source_statement,
            "target_statement": self.target_statement,
        }


#: Mutation class per serialized ``kind``, in canonical catalog order (the
#: order the engine's weighted selection enumerates).
MUTATION_KINDS: dict[str, type[Mutation]] = {
    cls.kind: cls
    for cls in (
        AddProgram,
        DropProgram,
        CloneProgram,
        PromotePredicateRead,
        DemoteKeyToPredicate,
        PromoteReadToWrite,
        DemoteUpdateToRead,
        AddFKAnnotation,
        RemoveFKAnnotation,
    )
}


def mutation_from_dict(data: Mapping[str, Any]) -> Mutation:
    """Rebuild one mutation from its :meth:`Mutation.to_dict` payload."""
    kind = data.get("kind")
    mutation_cls = MUTATION_KINDS.get(kind)
    if mutation_cls is None:
        raise ProgramError(
            f"unknown mutation kind {kind!r}; expected one of {sorted(MUTATION_KINDS)}"
        )
    fields = {key: value for key, value in data.items() if key != "kind"}
    try:
        return mutation_cls(**fields)
    except TypeError as error:
        raise ProgramError(f"malformed {kind} mutation: {error}") from None


def apply_mutation(
    workload: Workload, mutation: Mutation, base: Workload | None = None
) -> Workload:
    """The workload after one mutation (no session involved).

    The pure-``Workload`` twin of the :class:`~repro.churn.monitor.Monitor`
    session path — the engine uses it to advance its scratch state inside a
    burst, and tests use it as the cold reference.  New and replaced
    programs are validated against the schema via the
    :meth:`Workload.with_programs` fast path.
    """
    programs = list(workload.programs)
    fresh: list[BTP] = []
    for operation in mutation.operations(workload, base):
        if operation.action == "add":
            programs.append(operation.program)
            fresh.append(operation.program)
        elif operation.action == "remove":
            programs = [item for item in programs if item.name != operation.name]
        elif operation.action == "replace":
            programs = [
                operation.program if item.name == operation.name else item
                for item in programs
            ]
            fresh.append(operation.program)
        else:  # pragma: no cover - catalog invariant
            raise ProgramError(f"unknown operation action {operation.action!r}")
    return workload.with_programs(programs, validate=fresh)
