"""Continuous robustness monitoring: the ``Monitor`` and its ``ChurnTrace``.

:class:`Monitor` wraps a warm :class:`~repro.analysis.Analyzer` session and
drives it through a seeded edit sequence: each step's mutations apply
incrementally (:meth:`~repro.analysis.Analyzer.add_program` /
:meth:`~repro.analysis.Analyzer.remove_program` /
:meth:`~repro.analysis.Analyzer.replace_program` — at most ``2n − 1`` edge
blocks recomputed per touched program), the step is re-verdicted, and the
per-step verdict, witness anchors, blocks-recomputed count and timing are
recorded in a :class:`ChurnTrace`.

The **convergence oracle** is the contract that makes churn a correctness
check rather than a demo: on demand (``oracle_every=K``) a step is
cross-checked against a *cold* :class:`~repro.analysis.Analyzer` built
from scratch over the current programs, and the incremental report must
equal the cold one field-for-field (verdicts, graph statistics, witness —
the full ``RobustnessReport.to_dict`` payload).  A mismatch means the
incremental machinery diverged from Algorithm 1/2 ground truth.

Traces serialize (:meth:`ChurnTrace.to_dict` / :meth:`~ChurnTrace.from_dict`)
and replay (:meth:`ChurnTrace.replay`): re-applying the recorded mutations
from their serialized form against a fresh session reproduces the per-step
verdicts — byte-identically under :meth:`ChurnTrace.canonical_json`, which
strips only wall-clock fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.session import Analyzer
from repro.detection.api import RobustnessReport
from repro.errors import ProgramError
from repro.faults import check_deadline
from repro.obs.clock import monotonic
from repro.summary.settings import ATTR_DEP_FK, AnalysisSettings
from repro.workloads.base import Workload, WorkloadSource

from repro.churn.engine import BurstConfig, MutationEngine
from repro.churn.mutations import Mutation, mutation_from_dict


def _witness_anchor_labels(report: RobustnessReport) -> tuple[str, ...]:
    """The witness's offending statements as compact ``Prog.stmt@occ``
    labels (empty when the verdict is robust)."""
    if report.witness is None:
        return ()
    return tuple(
        f"{program}.{statement}@{occurrence}"
        for program, statement, occurrence in report.witness.statement_anchors()
    )


@dataclass(frozen=True)
class OracleCheck:
    """One cold cross-check: the from-scratch verdict and whether the
    incremental report matched it exactly."""

    robust: bool
    type1_robust: bool
    witness_anchors: tuple[str, ...]
    matches: bool
    elapsed_seconds: float = 0.0

    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "robust": self.robust,
            "type1_robust": self.type1_robust,
            "witness_anchors": list(self.witness_anchors),
            "matches": self.matches,
        }
        if include_timings:
            data["elapsed_seconds"] = round(self.elapsed_seconds, 6)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OracleCheck":
        return cls(
            robust=bool(data["robust"]),
            type1_robust=bool(data["type1_robust"]),
            witness_anchors=tuple(data["witness_anchors"]),
            matches=bool(data["matches"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )


@dataclass(frozen=True)
class ChurnStep:
    """One monitored step: the mutations applied and the resulting state."""

    step: int
    mutations: tuple[Mutation, ...]
    robust: bool
    type1_robust: bool
    witness_anchors: tuple[str, ...]
    programs: int
    blocks_recomputed: int
    elapsed_seconds: float = 0.0
    oracle: OracleCheck | None = None
    #: Worker-pool failures the session recovered from *during this step*
    #: (pool rebuilds or serial-kernel fallbacks — the verdict above is
    #: unaffected either way).  Like timings, this is an operational fact
    #: of one particular run, not part of the canonical replay contract:
    #: it serializes only when nonzero and only with ``include_timings``.
    faults_recovered: int = 0

    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "step": self.step,
            "mutations": [mutation.to_dict() for mutation in self.mutations],
            "robust": self.robust,
            "type1_robust": self.type1_robust,
            "witness_anchors": list(self.witness_anchors),
            "programs": self.programs,
            "blocks_recomputed": self.blocks_recomputed,
        }
        if include_timings:
            data["elapsed_seconds"] = round(self.elapsed_seconds, 6)
            if self.faults_recovered:
                data["faults_recovered"] = self.faults_recovered
        data["oracle"] = (
            None if self.oracle is None else self.oracle.to_dict(include_timings)
        )
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnStep":
        oracle = data.get("oracle")
        return cls(
            step=int(data["step"]),
            mutations=tuple(mutation_from_dict(item) for item in data["mutations"]),
            robust=bool(data["robust"]),
            type1_robust=bool(data["type1_robust"]),
            witness_anchors=tuple(data["witness_anchors"]),
            programs=int(data["programs"]),
            blocks_recomputed=int(data["blocks_recomputed"]),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            oracle=None if oracle is None else OracleCheck.from_dict(oracle),
            faults_recovered=int(data.get("faults_recovered", 0)),
        )


@dataclass(frozen=True)
class ChurnTrace:
    """The full record of one monitored churn run.

    ``source`` is a resolvable workload source string when the monitor had
    one (built-in name or file path) — what :meth:`replay` resolves the
    base workload from; traces over programmatic workloads carry ``None``
    and replay against an explicitly passed source.
    """

    workload: str
    source: str | None
    seed: int
    settings: AnalysisSettings
    max_loop_iterations: int
    base_programs: tuple[str, ...]
    steps: tuple[ChurnStep, ...]
    elapsed_seconds: float = 0.0

    # -- derived counters ---------------------------------------------------
    @property
    def mutation_count(self) -> int:
        return sum(len(step.mutations) for step in self.steps)

    @property
    def robust_steps(self) -> int:
        return sum(1 for step in self.steps if step.robust)

    @property
    def faults_recovered(self) -> int:
        return sum(step.faults_recovered for step in self.steps)

    @property
    def oracle_checks(self) -> int:
        return sum(1 for step in self.steps if step.oracle is not None)

    @property
    def oracle_mismatches(self) -> int:
        return sum(
            1 for step in self.steps if step.oracle is not None and not step.oracle.matches
        )

    @property
    def converged(self) -> bool:
        """True when every oracle checkpoint matched cold analysis
        (vacuously true without checkpoints)."""
        return self.oracle_mismatches == 0

    def summary(self, include_timings: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "steps": len(self.steps),
            "mutations": self.mutation_count,
            "robust_steps": self.robust_steps,
            "final_programs": self.steps[-1].programs if self.steps else len(self.base_programs),
            "oracle_checks": self.oracle_checks,
            "oracle_mismatches": self.oracle_mismatches,
        }
        if include_timings:
            data["elapsed_seconds"] = round(self.elapsed_seconds, 6)
            data["edits_per_second"] = (
                round(self.mutation_count / self.elapsed_seconds, 3)
                if self.elapsed_seconds > 0
                else None
            )
            if self.faults_recovered:
                data["faults_recovered"] = self.faults_recovered
        return data

    # -- serialization ------------------------------------------------------
    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "source": self.source,
            "seed": self.seed,
            "settings": self.settings.label,
            "max_loop_iterations": self.max_loop_iterations,
            "base_programs": list(self.base_programs),
            "steps": [step.to_dict(include_timings) for step in self.steps],
            "summary": self.summary(include_timings),
        }

    def canonical_dict(self) -> dict[str, Any]:
        """The trace minus every wall-clock field — the byte-identical
        replay contract compares this shape, not timings."""
        return self.to_dict(include_timings=False)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """Deterministic JSON of :meth:`canonical_dict`: same ``(workload,
        seed)`` ⇒ same bytes, whatever machine or warm state produced it."""
        return json.dumps(self.canonical_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnTrace":
        summary = data.get("summary") or {}
        return cls(
            workload=data["workload"],
            source=data.get("source"),
            seed=int(data["seed"]),
            settings=AnalysisSettings.from_label(data["settings"]),
            max_loop_iterations=int(data["max_loop_iterations"]),
            base_programs=tuple(data["base_programs"]),
            steps=tuple(ChurnStep.from_dict(item) for item in data["steps"]),
            elapsed_seconds=float(summary.get("elapsed_seconds", 0.0) or 0.0),
        )

    # -- replay -------------------------------------------------------------
    def replay(self, source: WorkloadSource | None = None) -> "ChurnTrace":
        """Re-run the recorded mutations from their serialized form.

        A fresh session re-applies each step's mutations incrementally and
        re-runs the oracle at the recorded checkpoints; the result's
        :meth:`canonical_json` equals this trace's when the incremental
        machinery is deterministic and convergent — the elspeth-style
        deterministic-replay property the tests enforce.
        """
        base = source if source is not None else self.source
        if base is None:
            raise ProgramError(
                "churn trace records no resolvable workload source; "
                "pass replay(source=...)"
            )
        monitor = Monitor(
            base,
            setting=self.settings,
            seed=self.seed,
            max_loop_iterations=self.max_loop_iterations,
        )
        return monitor.replay(self)

    # -- rendering ----------------------------------------------------------
    def describe(self) -> str:
        """Compact per-step table plus a summary line."""
        lines = [
            f"workload: {self.workload}  setting: {self.settings.label}  "
            f"seed: {self.seed}"
        ]
        for step in self.steps:
            verdict = "robust    " if step.robust else "NOT robust"
            edits = "; ".join(mutation.describe() for mutation in step.mutations)
            oracle = ""
            if step.oracle is not None:
                oracle = "  [oracle: ok]" if step.oracle.matches else "  [oracle: MISMATCH]"
            lines.append(
                f"  step {step.step:>4}  {verdict}  "
                f"({step.programs} programs, {step.blocks_recomputed} blocks)  "
                f"{edits}{oracle}"
            )
        summary = self.summary()
        rate = summary.get("edits_per_second")
        lines.append(
            f"watched {summary['steps']} steps ({summary['mutations']} edits): "
            f"{summary['robust_steps']} robust / "
            f"{summary['steps'] - summary['robust_steps']} non-robust; "
            f"{summary['oracle_checks']} oracle checks, "
            + (
                "all matched"
                if self.converged
                else f"{summary['oracle_mismatches']} MISMATCHED"
            )
            + (f"; {rate} edits/sec" if rate else "")
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class Monitor:
    """Drive one warm session through seeded churn, recording a trace.

    Construct from any workload source, or hand an existing warm session
    (``session=`` — e.g. a :meth:`~repro.analysis.Analyzer.fork` of a
    pooled service session, so a watch run starts with every edge block
    already loaded and never mutates the pooled original).
    """

    def __init__(
        self,
        source: WorkloadSource | None = None,
        *,
        session: Analyzer | None = None,
        setting: AnalysisSettings | str = ATTR_DEP_FK,
        seed: int = 0,
        max_loop_iterations: int = 2,
        jobs: int | None = None,
        backend: str = "thread",
        weights: Mapping[str, float] | None = None,
        burst: BurstConfig | None = None,
        source_hint: str | None = None,
    ):
        if session is None:
            if source is None:
                raise ProgramError("Monitor needs a workload source or a session")
            session = Analyzer(
                source,
                max_loop_iterations=max_loop_iterations,
                jobs=jobs,
                backend=backend,
            )
        self.session = session
        self.settings = (
            AnalysisSettings.from_label(setting) if isinstance(setting, str) else setting
        )
        self.base: Workload = session.workload
        self.engine = MutationEngine(self.base, seed=seed, weights=weights, burst=burst)
        # Captured before the first edit resets the session's hint.
        self.source: str | None = (
            source_hint if source_hint is not None else session._source_hint
        )

    @property
    def seed(self) -> int:
        return self.engine.seed

    # -- the loop -----------------------------------------------------------
    def run(self, steps: int, *, oracle_every: int = 0) -> ChurnTrace:
        """Monitor ``steps`` seeded edit steps; cross-check every
        ``oracle_every``-th step against a cold analyzer (0 = never)."""
        if steps < 1:
            raise ProgramError(f"watch steps must be >= 1, got {steps}")
        if oracle_every < 0:
            raise ProgramError(f"oracle_every must be >= 0, got {oracle_every}")
        started = monotonic()
        # Warm-up: make sure every block of the *initial* programs exists
        # before step 0, so per-step blocks_recomputed counts only edit
        # fallout — identical whether the session arrived cold or as a
        # fork of a warm pool (the byte-identical replay contract).
        self.session.analyze(self.settings)
        records = []
        for step in range(steps):
            # Watch runs dispatched through the service honour its
            # per-request deadline between steps (a no-op otherwise).
            check_deadline("watch step")
            want_oracle = bool(oracle_every) and (step + 1) % oracle_every == 0
            records.append(self._step(step, want_oracle=want_oracle))
        return self._trace(records, monotonic() - started)

    def replay(self, trace: ChurnTrace) -> ChurnTrace:
        """Re-apply a recorded trace's mutations (not the engine) against
        this monitor's session, re-running the oracle at the recorded
        checkpoints; returns the freshly computed trace."""
        if self.base.program_names != tuple(trace.base_programs):
            raise ProgramError(
                f"cannot replay: trace was recorded over programs "
                f"{list(trace.base_programs)!r}, session holds "
                f"{list(self.base.program_names)!r}"
            )
        started = monotonic()
        self.session.analyze(self.settings)
        records = []
        for recorded in trace.steps:
            records.append(
                self._step(
                    recorded.step,
                    mutations=recorded.mutations,
                    want_oracle=recorded.oracle is not None,
                )
            )
        return self._trace(
            records, monotonic() - started, seed=trace.seed
        )

    def _trace(self, records, elapsed: float, seed: int | None = None) -> ChurnTrace:
        return ChurnTrace(
            workload=self.base.name,
            source=self.source,
            seed=self.engine.seed if seed is None else seed,
            settings=self.settings,
            max_loop_iterations=self.session.max_loop_iterations,
            base_programs=self.base.program_names,
            steps=tuple(records),
            elapsed_seconds=elapsed,
        )

    def _step(
        self,
        step: int,
        *,
        mutations: tuple[Mutation, ...] | None = None,
        want_oracle: bool = False,
    ) -> ChurnStep:
        if mutations is None:
            mutations = self.engine.propose(self.session.workload, step)
        before = self.session.cache_info()["block_computations"]
        faults_before = self.session.fault_info()["recoveries"]
        started = monotonic()
        for mutation in mutations:
            self.apply(mutation)
        report = self.session.analyze(self.settings)
        elapsed = monotonic() - started
        recomputed = self.session.cache_info()["block_computations"] - before
        recovered = self.session.fault_info()["recoveries"] - faults_before
        oracle = self.check(report) if want_oracle else None
        return ChurnStep(
            step=step,
            mutations=mutations,
            robust=report.robust,
            type1_robust=report.type1_robust,
            witness_anchors=_witness_anchor_labels(report),
            programs=len(self.session.program_names),
            blocks_recomputed=recomputed,
            elapsed_seconds=elapsed,
            oracle=oracle,
            faults_recovered=recovered,
        )

    def apply(self, mutation: Mutation) -> None:
        """Apply one mutation to the session through the incremental API."""
        for operation in mutation.operations(self.session.workload, self.base):
            if operation.action == "add":
                self.session.add_program(operation.program)
            elif operation.action == "remove":
                self.session.remove_program(operation.name)
            else:
                self.session.replace_program(operation.program, name=operation.name)

    # -- the convergence oracle ---------------------------------------------
    def check(self, report: RobustnessReport | None = None) -> OracleCheck:
        """Cross-check the session's current verdict against a cold
        :class:`Analyzer` built from scratch over the same programs.

        ``matches`` compares the *entire* report payloads — verdicts,
        graph statistics and witness included — so any divergence of the
        incremental machinery from ground truth is caught, not just a
        flipped boolean.
        """
        if report is None:
            report = self.session.analyze(self.settings)
        started = monotonic()
        cold = Analyzer(
            self.session.workload,
            max_loop_iterations=self.session.max_loop_iterations,
        ).analyze(self.settings)
        elapsed = monotonic() - started
        return OracleCheck(
            robust=cold.robust,
            type1_robust=cold.type1_robust,
            witness_anchors=_witness_anchor_labels(cold),
            matches=report.to_dict() == cold.to_dict(),
            elapsed_seconds=elapsed,
        )
