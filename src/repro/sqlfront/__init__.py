"""SQL front-end: translating the Appendix A SQL fragment into BTPs.

The paper's Appendix A defines how SQL transaction programs map onto BTP
statements: SELECT/UPDATE/INSERT/DELETE with key- or predicate-based WHERE
clauses become the seven statement types, ``IF … THEN … [ELSE …] END IF``
becomes branching ``(P|P)`` / ``(P|ε)``, and ``REPEAT … END REPEAT``
becomes ``loop(P)``.  :func:`parse_program` turns SQL text into a BTP
automatically — the paper's point (iii): no database specialist needed to
build the summary graph.
"""

from repro.sqlfront.lexer import Token, TokenKind, tokenize
from repro.sqlfront.parser import parse_sql
from repro.sqlfront.translate import parse_program, translate

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_sql",
    "translate",
    "parse_program",
]
