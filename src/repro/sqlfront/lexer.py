"""Tokenizer for the Appendix A SQL fragment.

Produces identifiers, keywords (case-insensitive), ``:parameter`` markers,
numeric and string literals, and punctuation/operators.  Pseudo-conditions
like ``IF <selection of customer by name> THEN`` are supported by the
parser consuming raw tokens up to ``THEN``, so ``<`` and ``>`` simply lex
as comparison operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "INTO", "UPDATE", "SET", "RETURNING",
        "INSERT", "VALUES", "DELETE", "IF", "THEN", "ELSE", "END",
        "REPEAT", "COMMIT", "AND", "OR", "NOT",
    }
)

#: Multi-character operators, longest first so ``<=`` wins over ``<``.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ";", ".")


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    PARAM = "param"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_op(self, *symbols: str) -> bool:
        return self.kind is TokenKind.OP and self.value in symbols

    def __str__(self) -> str:
        return f"{self.value!r}"


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char == "_"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlError` on unexpected characters."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", index):
            while index < length and text[index] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char == ":" and index + 1 < length and _is_ident_start(text[index + 1]):
            end = index + 1
            while end < length and _is_ident_char(text[end]):
                end += 1
            tokens.append(Token(TokenKind.PARAM, text[index + 1: end], start_line, start_column))
            advance(end - index)
            continue
        if _is_ident_start(char):
            end = index
            while end < length and _is_ident_char(text[end]):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start_line, start_column))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start_line, start_column))
            advance(end - index)
            continue
        if char.isdigit():
            end = index
            while end < length and (text[end].isdigit() or text[end] == "."):
                end += 1
            tokens.append(Token(TokenKind.NUMBER, text[index:end], start_line, start_column))
            advance(end - index)
            continue
        if char in "'\"":
            quote = char
            end = index + 1
            while end < length and text[end] != quote:
                end += 1
            if end >= length:
                raise SqlError("unterminated string literal", start_line, start_column)
            tokens.append(Token(TokenKind.STRING, text[index + 1: end], start_line, start_column))
            advance(end - index + 1)
            continue
        for symbol in _OPERATORS:
            if text.startswith(symbol, index):
                tokens.append(Token(TokenKind.OP, symbol, start_line, start_column))
                advance(len(symbol))
                break
        else:
            raise SqlError(f"unexpected character {char!r}", start_line, start_column)
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens


def token_stream(text: str) -> Iterator[Token]:
    """Convenience iterator over :func:`tokenize`."""
    return iter(tokenize(text))
