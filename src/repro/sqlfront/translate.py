"""Translating parsed SQL into BTPs, following Appendix A.

The translation classifies each statement's WHERE clause as *key-based* (a
conjunction of ``attribute = constant`` equalities pinning at least the
primary key of the relation, and nothing else) or *predicate-based*
(everything else), then derives the statement type and attribute sets:

=====================  =========  =====================================
SQL                    type(q)    sets
=====================  =========  =====================================
SELECT, key WHERE      key sel    ReadSet = select-list attributes
SELECT, pred WHERE     pred sel   + PReadSet = WHERE attributes
UPDATE, key WHERE      key upd    WriteSet = SET targets; ReadSet =
                                  SET-expression ∪ RETURNING attributes
UPDATE, pred WHERE     pred upd   + PReadSet = WHERE attributes
INSERT                 ins        WriteSet = column list (or Attr(R))
DELETE, key WHERE      key del    WriteSet = Attr(R)
DELETE, pred WHERE     pred del   + PReadSet = WHERE attributes
=====================  =========  =====================================

``IF/ELSE`` becomes ``(P|P)`` (or ``(P|ε)`` without ELSE), ``REPEAT``
becomes ``loop(P)``; host-variable assignments and COMMIT translate to
nothing.  Relation and attribute names are resolved case-insensitively
against the schema and canonicalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btp.program import BTP, Choice, Loop, Opt, ProgramNode, Seq, Stmt
from repro.btp.statement import Statement
from repro.errors import SqlError
from repro.schema import Relation, Schema
from repro.sqlfront.ast import (
    AssignStmt,
    CommitStmt,
    Comparison,
    Condition,
    DeleteStmt,
    IfStmt,
    InsertStmt,
    RepeatStmt,
    SelectStmt,
    SqlNode,
    SqlProgram,
    UpdateStmt,
)
from repro.sqlfront.parser import parse_sql


@dataclass
class _Translator:
    schema: Schema
    next_index: int = 1
    name_prefix: str = "q"
    statements: list[Statement] = field(default_factory=list)

    def fresh_name(self) -> str:
        name = f"{self.name_prefix}{self.next_index}"
        self.next_index += 1
        return name

    # -- name resolution --------------------------------------------------------
    def resolve_relation(self, name: str) -> Relation:
        for relation in self.schema:
            if relation.name.lower() == name.lower():
                return relation
        raise SqlError(f"unknown relation {name!r}")

    def resolve_attributes(self, relation: Relation, names) -> frozenset[str]:
        canonical = {attr.lower(): attr for attr in relation.attributes}
        resolved = set()
        for name in names:
            attr = canonical.get(name.lower())
            if attr is None:
                raise SqlError(
                    f"unknown attribute {name!r} of relation {relation.name!r}"
                )
            resolved.add(attr)
        return frozenset(resolved)

    # -- WHERE classification ------------------------------------------------------
    def is_key_based(self, relation: Relation, where: Condition) -> bool:
        """Key-based: pure conjunction of pins covering the primary key.

        Every conjunct must be an ``attribute = constant`` equality and the
        pinned attributes must include the whole primary key — then the
        statement accesses exactly one tuple.  A relation without a primary
        key can never be accessed key-based.
        """
        if not relation.key:
            return False
        if not where.is_pure_conjunction:
            return False
        pinned = set()
        for conjunct in where.conjuncts():
            assert isinstance(conjunct, Comparison)
            attribute = conjunct.pinned_attribute()
            if attribute is None:
                return False
            pinned.add(attribute.lower())
        return {attr.lower() for attr in relation.key} <= pinned

    # -- statement translation -------------------------------------------------------
    def translate_node(self, node: SqlNode) -> ProgramNode | None:
        if isinstance(node, SelectStmt):
            if node.extra_relations:
                return self.translate_join_select(node)
            return Stmt(self.translate_select(node))
        if isinstance(node, UpdateStmt):
            return Stmt(self.translate_update(node))
        if isinstance(node, InsertStmt):
            return Stmt(self.translate_insert(node))
        if isinstance(node, DeleteStmt):
            return Stmt(self.translate_delete(node))
        if isinstance(node, IfStmt):
            return self.translate_if(node)
        if isinstance(node, RepeatStmt):
            return self.translate_repeat(node)
        if isinstance(node, (AssignStmt, CommitStmt)):
            return None
        raise SqlError(f"cannot translate {type(node).__name__}")

    def translate_body(self, nodes) -> ProgramNode | None:
        parts = [part for part in (self.translate_node(node) for node in nodes) if part]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def translate_select(self, node: SelectStmt) -> Statement:
        relation = self.resolve_relation(node.relation)
        reads = self.resolve_attributes(relation, node.select_attributes())
        if self.is_key_based(relation, node.where):
            return Statement.key_select(self.fresh_name(), relation, reads)
        predicate = self.resolve_attributes(relation, node.where.attributes())
        return Statement.pred_select(self.fresh_name(), relation, predicate, reads)

    def translate_join_select(self, node: SelectStmt) -> Seq:
        """A multi-relation SELECT (Section 5.4 extension).

        Each relation contributes one predicate-based selection whose
        PReadSet/ReadSet are the statement's WHERE/select attributes
        restricted to that relation; attributes appearing in several
        relations are (conservatively) attributed to each of them.
        Every mentioned attribute must belong to at least one relation.
        """
        relations = [self.resolve_relation(name) for name in node.relations]
        known = frozenset().union(*(rel.attribute_set for rel in relations))
        lowered_known = {attr.lower() for attr in known}
        for attr in node.where.attributes() | node.select_attributes():
            if attr.lower() not in lowered_known:
                raise SqlError(
                    f"unknown attribute {attr!r}: not in any of "
                    f"{[rel.name for rel in relations]}"
                )
        parts = []
        for rel in relations:
            canonical = {attr.lower(): attr for attr in rel.attributes}
            predicate = frozenset(
                canonical[a.lower()] for a in node.where.attributes()
                if a.lower() in canonical
            )
            reads = frozenset(
                canonical[a.lower()] for a in node.select_attributes()
                if a.lower() in canonical
            )
            parts.append(
                Stmt(Statement.pred_select(self.fresh_name(), rel, predicate, reads))
            )
        return Seq(tuple(parts))

    def translate_update(self, node: UpdateStmt) -> Statement:
        relation = self.resolve_relation(node.relation)
        writes = self.resolve_attributes(relation, node.written_attributes())
        reads = self.resolve_attributes(relation, node.read_attributes())
        if self.is_key_based(relation, node.where):
            return Statement.key_update(self.fresh_name(), relation, reads, writes)
        predicate = self.resolve_attributes(relation, node.where.attributes())
        return Statement.pred_update(self.fresh_name(), relation, predicate, reads, writes)

    def translate_insert(self, node: InsertStmt) -> Statement:
        relation = self.resolve_relation(node.relation)
        if node.columns:
            if len(node.columns) != len(node.values):
                raise SqlError(
                    f"INSERT into {relation.name}: {len(node.columns)} columns but "
                    f"{len(node.values)} values"
                )
            columns = self.resolve_attributes(relation, node.columns)
        else:
            if len(node.values) != len(relation.attributes):
                raise SqlError(
                    f"INSERT into {relation.name}: expected {len(relation.attributes)} "
                    f"values, got {len(node.values)}"
                )
            columns = relation.attribute_set
        return Statement.insert(self.fresh_name(), relation, columns)

    def translate_delete(self, node: DeleteStmt) -> Statement:
        relation = self.resolve_relation(node.relation)
        if self.is_key_based(relation, node.where):
            return Statement.key_delete(self.fresh_name(), relation)
        predicate = self.resolve_attributes(relation, node.where.attributes())
        return Statement.pred_delete(self.fresh_name(), relation, predicate)

    def translate_if(self, node: IfStmt) -> ProgramNode | None:
        then_part = self.translate_body(node.then_body)
        else_part = self.translate_body(node.else_body)
        if then_part is None and else_part is None:
            return None
        if then_part is not None and else_part is not None:
            return Choice(then_part, else_part)
        return Opt(then_part if then_part is not None else else_part)

    def translate_repeat(self, node: RepeatStmt) -> ProgramNode | None:
        body = self.translate_body(node.body)
        if body is None:
            return None
        return Loop(body)


def translate(
    program: SqlProgram,
    schema: Schema,
    name: str,
    first_statement: int = 1,
    name_prefix: str = "q",
) -> BTP:
    """Translate a parsed SQL program into a BTP.

    ``first_statement`` sets the number of the first generated statement
    name, so multi-program workloads can keep the paper's global numbering
    (Amalgamate starts at q1, Balance at q6, ...).
    """
    translator = _Translator(schema, next_index=first_statement, name_prefix=name_prefix)
    root = translator.translate_body(program.body)
    if root is None:
        raise SqlError(f"program {name!r} contains no database statements")
    return BTP(name, root)


def parse_program(
    sql: str,
    schema: Schema,
    name: str,
    first_statement: int = 1,
    name_prefix: str = "q",
) -> BTP:
    """Parse SQL text and translate it into a BTP in one step."""
    return translate(parse_sql(sql), schema, name, first_statement, name_prefix)
