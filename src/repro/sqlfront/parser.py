"""Recursive-descent parser for the Appendix A SQL fragment."""

from __future__ import annotations

from repro.errors import SqlError
from repro.sqlfront.ast import (
    And,
    AssignStmt,
    AttrRef,
    BinOp,
    CommitStmt,
    Comparison,
    Condition,
    DeleteStmt,
    Expr,
    IfStmt,
    InsertStmt,
    Literal,
    Not,
    Or,
    ParamRef,
    RepeatStmt,
    SelectStmt,
    SqlNode,
    SqlProgram,
    UpdateStmt,
)
from repro.sqlfront.lexer import Token, TokenKind, tokenize

_COMPARISON_OPS = ("=", "<", ">", "<=", ">=", "<>", "!=")


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def error(self, message: str) -> SqlError:
        token = self.current
        return SqlError(f"{message} (got {token})", token.line, token.column)

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise self.error(f"expected {' or '.join(names)}")
        return self.advance()

    def expect_op(self, symbol: str) -> Token:
        if not self.current.is_op(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected an identifier")
        return self.advance()

    def accept_op(self, symbol: str) -> bool:
        if self.current.is_op(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def skip_semicolons(self) -> None:
        while self.current.is_op(";"):
            self.advance()

    # -- program structure ------------------------------------------------------
    def parse_program(self) -> SqlProgram:
        body = self.parse_statements(terminators=())
        if self.current.kind is not TokenKind.EOF:
            raise self.error("unexpected trailing input")
        return SqlProgram(tuple(body))

    def parse_statements(self, terminators: tuple[str, ...]) -> list[SqlNode]:
        body: list[SqlNode] = []
        while True:
            self.skip_semicolons()
            token = self.current
            if token.kind is TokenKind.EOF:
                return body
            if terminators and token.is_keyword(*terminators):
                return body
            body.append(self.parse_statement())

    def parse_statement(self) -> SqlNode:
        token = self.current
        if token.is_keyword("SELECT"):
            return self.parse_select()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("IF"):
            return self.parse_if()
        if token.is_keyword("REPEAT"):
            return self.parse_repeat()
        if token.is_keyword("COMMIT"):
            self.advance()
            return CommitStmt()
        if token.kind is TokenKind.PARAM:
            return self.parse_assignment()
        raise self.error("expected a statement")

    # -- statements -----------------------------------------------------------
    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        select_list = [self.parse_expr()]
        while self.accept_op(","):
            select_list.append(self.parse_expr())
        into: tuple[str, ...] = ()
        if self.accept_keyword("INTO"):
            into = self.parse_param_list()
        self.expect_keyword("FROM")
        relations = [self.parse_relation_ref()]
        while self.accept_op(","):
            relations.append(self.parse_relation_ref())
        self.expect_keyword("WHERE")
        where = self.parse_condition()
        return SelectStmt(
            relations[0], tuple(select_list), where, into,
            extra_relations=tuple(relations[1:]),
        )

    def parse_relation_ref(self) -> str:
        """A relation name with an optional (ignored) alias."""
        relation = self.expect_ident().value
        if self.current.kind is TokenKind.IDENT:
            self.advance()  # alias — column qualifiers are stripped anyway
        return relation

    def parse_update(self) -> UpdateStmt:
        self.expect_keyword("UPDATE")
        relation = self.expect_ident().value
        self.expect_keyword("SET")
        assignments = [self.parse_set_assignment()]
        while self.accept_op(","):
            assignments.append(self.parse_set_assignment())
        self.expect_keyword("WHERE")
        where = self.parse_condition()
        returning: tuple[Expr, ...] = ()
        returning_into: tuple[str, ...] = ()
        if self.accept_keyword("RETURNING"):
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            returning = tuple(items)
            if self.accept_keyword("INTO"):
                returning_into = self.parse_param_list()
        return UpdateStmt(relation, tuple(assignments), where, returning, returning_into)

    def parse_set_assignment(self) -> tuple[str, Expr]:
        attr = self.expect_ident().value
        self.expect_op("=")
        return (attr, self.parse_expr())

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        relation = self.expect_ident().value
        columns: tuple[str, ...] = ()
        if self.current.is_op("("):
            self.advance()
            names = [self.expect_ident().value]
            while self.accept_op(","):
                names.append(self.expect_ident().value)
            self.expect_op(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.accept_op(","):
            values.append(self.parse_expr())
        self.expect_op(")")
        return InsertStmt(relation, columns, tuple(values))

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        relation = self.expect_ident().value
        self.expect_keyword("WHERE")
        where = self.parse_condition()
        return DeleteStmt(relation, where)

    def parse_if(self) -> IfStmt:
        self.expect_keyword("IF")
        condition_text = self.consume_raw_until("THEN")
        then_body = self.parse_statements(terminators=("ELSE", "END"))
        else_body: list[SqlNode] = []
        if self.accept_keyword("ELSE"):
            else_body = self.parse_statements(terminators=("END",))
        self.expect_keyword("END")
        self.expect_keyword("IF")
        return IfStmt(condition_text, tuple(then_body), tuple(else_body))

    def parse_repeat(self) -> RepeatStmt:
        self.expect_keyword("REPEAT")
        body = self.parse_statements(terminators=("END",))
        self.expect_keyword("END")
        self.expect_keyword("REPEAT")
        return RepeatStmt(tuple(body))

    def parse_assignment(self) -> AssignStmt:
        text = self.consume_raw_until(";")
        return AssignStmt(text)

    def consume_raw_until(self, terminator: str) -> str:
        """Consume raw tokens (host-language condition or assignment) verbatim."""
        parts: list[str] = []
        while True:
            token = self.current
            if token.kind is TokenKind.EOF:
                raise self.error(f"expected {terminator!r}")
            if terminator == "THEN" and token.is_keyword("THEN"):
                self.advance()
                break
            if terminator == ";" and token.is_op(";"):
                self.advance()
                break
            parts.append(token.value if token.kind is not TokenKind.PARAM else f":{token.value}")
            self.advance()
        return " ".join(parts)

    def parse_param_list(self) -> tuple[str, ...]:
        names = [self.expect_param()]
        while self.accept_op(","):
            names.append(self.expect_param())
        return tuple(names)

    def expect_param(self) -> str:
        if self.current.kind is not TokenKind.PARAM:
            raise self.error("expected a :parameter")
        return self.advance().value

    # -- conditions --------------------------------------------------------------
    def parse_condition(self) -> Condition:
        return self.parse_or()

    def parse_or(self) -> Condition:
        items = [self.parse_and()]
        while self.accept_keyword("OR"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def parse_and(self) -> Condition:
        items = [self.parse_atom()]
        while self.accept_keyword("AND"):
            items.append(self.parse_atom())
        return items[0] if len(items) == 1 else And(tuple(items))

    def parse_atom(self) -> Condition:
        if self.accept_keyword("NOT"):
            return Not(self.parse_atom())
        if self.current.is_op("("):
            # Could be a parenthesised condition or expression; try condition.
            checkpoint = self.index
            self.advance()
            try:
                inner = self.parse_condition()
                self.expect_op(")")
                return inner
            except SqlError:
                self.index = checkpoint
        left = self.parse_expr()
        for op in _COMPARISON_OPS:
            if self.current.is_op(op):
                self.advance()
                return Comparison(op, left, self.parse_expr())
        raise self.error("expected a comparison operator")

    # -- expressions ---------------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.current.is_op("+", "-"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.current.is_op("*", "/"):
            op = self.advance().value
            left = BinOp(op, left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        token = self.current
        if token.kind is TokenKind.PARAM:
            self.advance()
            return ParamRef(token.value)
        if token.kind is TokenKind.NUMBER or token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.value)
        if token.kind is TokenKind.IDENT:
            self.advance()
            name = token.value
            if self.accept_op("."):
                # ``alias.column`` — keep only the column name.
                name = self.expect_ident().value
            return AttrRef(name)
        if token.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        raise self.error("expected an expression")


def parse_sql(text: str) -> SqlProgram:
    """Parse a transaction program in the Appendix A SQL fragment."""
    return _Parser(text).parse_program()
