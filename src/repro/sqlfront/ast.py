"""AST for the Appendix A SQL fragment.

Expressions track which relation attributes they mention (that is all the
BTP translation needs); conditions additionally expose their conjunctive
structure so the translator can decide key-based vs. predicate-based
retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


# -- expressions -------------------------------------------------------------
class Expr:
    """Base class for expressions."""

    def attributes(self) -> frozenset[str]:
        """All attribute names mentioned in the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class AttrRef(Expr):
    """A column reference (possibly written ``alias.column`` in the source)."""

    name: str

    def attributes(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ParamRef(Expr):
    """A ``:parameter`` placeholder."""

    name: str

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f":{self.name}"


@dataclass(frozen=True)
class Literal(Expr):
    """A number or string literal."""

    value: str

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BinOp(Expr):
    """An arithmetic expression ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# -- conditions ---------------------------------------------------------------
class Condition:
    """Base class for WHERE conditions."""

    def attributes(self) -> frozenset[str]:
        raise NotImplementedError

    def conjuncts(self) -> Iterator["Condition"]:
        """Top-level AND-conjuncts (a single atom yields itself)."""
        yield self

    @property
    def is_pure_conjunction(self) -> bool:
        """True when the condition is a conjunction of comparisons."""
        return all(isinstance(c, Comparison) for c in self.conjuncts())


@dataclass(frozen=True)
class Comparison(Condition):
    """``left op right`` with a comparison operator."""

    op: str
    left: Expr
    right: Expr

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def pinned_attribute(self) -> str | None:
        """The attribute this comparison pins to a constant, if any.

        ``attr = <expr without attributes>`` (either way around) pins
        ``attr``; anything else pins nothing.
        """
        if self.op != "=":
            return None
        for attr_side, other in ((self.left, self.right), (self.right, self.left)):
            if isinstance(attr_side, AttrRef) and not other.attributes():
                return attr_side.name
        return None

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Condition):
    items: tuple[Condition, ...]

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(item.attributes() for item in self.items))

    def conjuncts(self) -> Iterator[Condition]:
        for item in self.items:
            yield from item.conjuncts()

    def __str__(self) -> str:
        return " AND ".join(str(item) for item in self.items)


@dataclass(frozen=True)
class Or(Condition):
    items: tuple[Condition, ...]

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(item.attributes() for item in self.items))

    @property
    def is_pure_conjunction(self) -> bool:
        return False

    def __str__(self) -> str:
        return " OR ".join(str(item) for item in self.items)


@dataclass(frozen=True)
class Not(Condition):
    item: Condition

    def attributes(self) -> frozenset[str]:
        return self.item.attributes()

    @property
    def is_pure_conjunction(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"NOT ({self.item})"


# -- statements -----------------------------------------------------------------
class SqlNode:
    """Base class for parsed SQL statements and control structures."""


@dataclass(frozen=True)
class SelectStmt(SqlNode):
    relation: str
    select_list: tuple[Expr, ...]
    where: Condition
    into: tuple[str, ...] = ()
    #: Further relations of a multi-relation (join) SELECT — the Section 5.4
    #: extension.  Such statements translate to one predicate-based
    #: selection per relation.
    extra_relations: tuple[str, ...] = ()

    @property
    def relations(self) -> tuple[str, ...]:
        return (self.relation, *self.extra_relations)

    def select_attributes(self) -> frozenset[str]:
        return frozenset().union(*(e.attributes() for e in self.select_list))


@dataclass(frozen=True)
class UpdateStmt(SqlNode):
    relation: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Condition
    returning: tuple[Expr, ...] = ()
    returning_into: tuple[str, ...] = ()

    def written_attributes(self) -> frozenset[str]:
        return frozenset(attr for attr, _ in self.assignments)

    def read_attributes(self) -> frozenset[str]:
        read = frozenset().union(*(expr.attributes() for _, expr in self.assignments))
        if self.returning:
            read |= frozenset().union(*(e.attributes() for e in self.returning))
        return read


@dataclass(frozen=True)
class InsertStmt(SqlNode):
    relation: str
    columns: tuple[str, ...]
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class DeleteStmt(SqlNode):
    relation: str
    where: Condition


@dataclass(frozen=True)
class IfStmt(SqlNode):
    condition_text: str
    then_body: tuple[SqlNode, ...]
    else_body: tuple[SqlNode, ...] = ()


@dataclass(frozen=True)
class RepeatStmt(SqlNode):
    body: tuple[SqlNode, ...]


@dataclass(frozen=True)
class AssignStmt(SqlNode):
    """A host-variable assignment like ``:logId = uniqueLogId()`` (no-op)."""

    text: str


@dataclass(frozen=True)
class CommitStmt(SqlNode):
    pass


@dataclass(frozen=True)
class SqlProgram(SqlNode):
    """A full parsed transaction program."""

    body: tuple[SqlNode, ...] = field(default=())

    def __iter__(self) -> Iterator[SqlNode]:
        return iter(self.body)


def data_statements(nodes: Sequence[SqlNode]) -> Iterator[SqlNode]:
    """All SELECT/UPDATE/INSERT/DELETE statements, recursing into control flow."""
    for node in nodes:
        if isinstance(node, (SelectStmt, UpdateStmt, InsertStmt, DeleteStmt)):
            yield node
        elif isinstance(node, IfStmt):
            yield from data_statements(node.then_body)
            yield from data_statements(node.else_body)
        elif isinstance(node, RepeatStmt):
            yield from data_statements(node.body)
