"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands:

* ``analyze <workload> [--setting LABEL] [--subset P1,P2] [--all-settings]
  [--json]`` — robustness report for a built-in workload (``smallbank``,
  ``tpcc``, ``auction``, ``auction(N)``), a workload file, or a subset of
  its programs; ``--all-settings`` reports all four Section 7.2 settings;
* ``subsets <workload> [--setting LABEL] [--method type-II|type-I]
  [--json]`` — maximal robust subsets;
* ``graph <workload> [--setting LABEL] [--format dot|text] [--witness]
  [--json]`` — summary graph rendering (``--witness`` highlights the
  dangerous cycle and its anchored statements in the DOT output);
* ``advise <workload> [--setting LABEL] [--max-edits N] [--method ...]
  [--json]`` — the repair advisor: minimal edit sets (statement
  promotions, foreign-key annotations, program splits) that make a
  non-robust workload robust, each candidate verified incrementally
  against the session's cached edge blocks.  Exit code 0 when the
  workload is already robust or a repair was found, 1 when no repair
  exists within ``--max-edits``;
* ``watch <workload> [--steps N] [--seed S] [--oracle-every K] [--json]``
  — monitor the workload under seeded churn: a deterministic
  :class:`~repro.churn.MutationEngine` edit stream applied incrementally
  to a warm session, re-verdicting every step; ``--oracle-every K``
  cross-checks each K-th step against a cold from-scratch analyzer.  Exit
  code 0 when every oracle checkpoint matched, 1 on any mismatch;
* ``cache save <workload> <path> [--setting LABEL] [--all-settings]`` /
  ``cache load <path> [--workload W]`` — persist a session's unfoldings and
  pairwise edge blocks to disk and restore them in a fresh process (no edge
  block is recomputed after a load);
* ``serve [--host H] [--port P] [--capacity N] [--cache-dir DIR]`` — the
  long-running HTTP service: an LRU pool of warm analyzer sessions behind
  ``POST /v1/analyze``, ``/v1/subsets``, ``/v1/graph``, ``/v1/advise``,
  ``/v1/watch``, ``/v1/grid``, ``/v1/batch``, ``GET /v1/stats`` and the
  ``GET /v1/healthz`` readiness probe; shuts down cleanly on Ctrl-C *or*
  SIGTERM; ``--cache-dir`` warms the pool from ``cache save`` artifacts
  at startup, spills LRU-evicted sessions back to the same directory
  (rehydrated on the next miss — see the ``spills``/``rehydrations``
  counters of ``/v1/stats``), and spills the whole warm pool on shutdown;
* ``experiments
  <table2|figure6|figure7|figure8|false-negatives|repairs|all>`` —
  regenerate the paper's evaluation artifacts (one shared warm-session
  service drives all grids, so e.g. Figure 7 reuses Figure 6's blocks;
  ``--cell-jobs N`` executes independent grid cells on a worker pool).

All commands accept any workload source :meth:`Workload.resolve` does, and
the analysis commands accept ``--jobs N`` to compute pairwise edge blocks
with ``N`` concurrent workers and ``--backend thread|process`` to pick the
worker pool (``process`` fans compiled statement profiles out over real
cores).  ``--json`` emits machine-readable reports
(``RobustnessReport.to_dict`` shapes) for embedding in CI pipelines — the
``analyze``/``subsets``/``graph`` JSON paths dispatch through the same
:meth:`AnalysisService.handle` as the HTTP routes, so CLI output and
``/v1/*`` responses are byte-identical; errors (unknown workloads, missing
files, malformed workload text, malformed service requests) print to
stderr and exit with status 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.session import Analyzer
from repro.errors import ReproError
from repro.faults import FaultPlan, install_plan
from repro.experiments.false_negatives import run_false_negatives
from repro.obs import log as obs_log
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.repairs import run_repairs
from repro.experiments.table2 import run_table2
from repro.service.core import AnalysisService
from repro.service.http import make_server, run_server
from repro.service.workers import reuseport_supported, serve_workers
from repro.service.requests import (
    AdviseRequest,
    AnalyzeRequest,
    GraphRequest,
    SubsetsRequest,
    WatchRequest,
)
from repro.summary import planes
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, AnalysisSettings
from repro.viz import to_dot, to_text


def _settings_from(label: str | None) -> AnalysisSettings:
    if label is None:
        return ATTR_DEP_FK
    return AnalysisSettings.from_label(label)


def _subset_from(argument: str | None) -> list[str] | None:
    if argument is None:
        return None
    return [name.strip() for name in argument.split(",")]


def _add_setting_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--setting",
        choices=[settings.label for settings in ALL_SETTINGS],
        help="analysis setting (default: 'attr dep + FK')",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="compute pairwise edge blocks with N concurrent workers",
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="worker pool for --jobs: 'thread' (default) or 'process' "
        "(real multi-core fan-out over compiled statement profiles; "
        "without --jobs, 'process' uses one worker per CPU core)",
    )


def _service_from(args: argparse.Namespace) -> AnalysisService:
    """One-command service: same request layer as ``repro serve``."""
    return AnalysisService(jobs=args.jobs, backend=args.backend)


def _cmd_analyze(args: argparse.Namespace) -> int:
    service = _service_from(args)
    subset = _subset_from(args.subset)
    request = AnalyzeRequest(
        workload=args.workload,
        setting=args.setting,
        subset=tuple(subset) if subset is not None else None,
        all_settings=args.all_settings,
        profile=args.profile,
    )
    if args.json:
        # The same dispatch the HTTP frontend uses — byte-identical payloads.
        print(json.dumps(request.payload(service), indent=2))
        return 0
    if args.profile:
        payload = request.payload(service)
        result = service.analyze(request)  # warm: reuses the cached report
        if args.all_settings:
            print(result.describe())
        else:
            print(f"workload: {result.workload}")
            print(result.describe())
        print("profile:")
        _print_spans(payload.get("profile", []), indent=1)
        return 0
    result = service.analyze(request)
    if args.all_settings:
        print(result.describe())
    else:
        print(f"workload: {result.workload}")
        print(result.describe())
    return 0


def _print_spans(nodes: list, indent: int) -> None:
    """Render a span tree as indented `stage  duration` lines."""
    for node in nodes:
        print(
            f"{'  ' * indent}{node['stage']:<18} {node['duration_ms']:>9.3f} ms"
        )
        _print_spans(node.get("children", []), indent + 1)


def _cmd_subsets(args: argparse.Namespace) -> int:
    service = _service_from(args)
    request = SubsetsRequest(
        workload=args.workload, setting=args.setting, method=args.method
    )
    if args.json:
        print(json.dumps(request.payload(service), indent=2))
        return 0
    print(service.subsets(request).describe())
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    service = _service_from(args)
    request = GraphRequest(workload=args.workload, setting=args.setting)
    if args.json:
        print(json.dumps(request.payload(service), indent=2))
        return 0
    name, graph = service.graph(request)
    witness = None
    if args.witness:
        report = service.analyze(
            AnalyzeRequest(workload=args.workload, setting=args.setting)
        )
        witness = report.witness or report.type1_witness
    if args.format == "dot":
        print(to_dot(graph, name=name, witness=witness))
    else:
        print(to_text(graph))
        if witness is not None:
            print(witness.describe())
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    service = _service_from(args)
    request = AdviseRequest(
        workload=args.workload,
        setting=args.setting,
        method=args.method,
        max_edits=args.max_edits,
    )
    if args.json:
        payload = request.payload(service)
        print(json.dumps(payload, indent=2))
        return 0 if payload["repaired"] else 1
    report = service.advise(request)
    print(report.describe())
    return 0 if report.repaired else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    service = _service_from(args)
    request = WatchRequest(
        workload=args.workload,
        setting=args.setting,
        steps=args.steps,
        seed=args.seed,
        oracle_every=args.oracle_every,
    )
    if args.json:
        # The same dispatch the HTTP frontend uses — byte-identical payloads.
        payload = request.payload(service)
        print(json.dumps(payload, indent=2))
        return 0 if payload["summary"]["oracle_mismatches"] == 0 else 1
    trace = service.watch(request)
    print(trace.describe())
    return 0 if trace.converged else 1


def _cmd_cache_save(args: argparse.Namespace) -> int:
    session = Analyzer(args.workload, jobs=args.jobs, backend=args.backend)
    settings_list = ALL_SETTINGS if args.all_settings else [_settings_from(args.setting)]
    for settings in settings_list:
        session.summary_graph(settings)
    session.save_cache(args.path)
    info = session.cache_info()
    print(
        f"saved session cache for {session.workload.name!r} to {args.path}: "
        f"{info['unfolded_programs']} unfolded programs, "
        f"{info['edge_blocks']} edge blocks "
        f"({', '.join(settings.label for settings in settings_list)})"
    )
    return 0


def _cmd_cache_load(args: argparse.Namespace) -> int:
    source = args.workload
    if source is None:
        data = json.loads(Path(args.path).read_text())
        source = data.get("source")
        if source is None:
            print(
                f"repro: error: {args.path} does not record a workload source; "
                "pass --workload",
                file=sys.stderr,
            )
            return 2
    session = Analyzer(source)
    session.load_cache(args.path)
    report = session.analyze(_settings_from(args.setting))
    info = session.cache_info()
    if args.json:
        print(json.dumps({**report.to_dict(), "cache_info": info}, indent=2))
        return 0
    print(f"workload: {report.workload}  (cache: {args.path})")
    print(report.describe())
    print(
        f"cache: {info['blocks_loaded']} edge blocks loaded, "
        f"{info['block_computations']} computed"
    )
    return 0


_SERVE_ROUTES = (
    "POST /v1/analyze /v1/subsets /v1/graph /v1/advise /v1/watch "
    "/v1/grid /v1/batch, GET /v1/stats /v1/healthz; "
    "Ctrl-C or SIGTERM to stop"
)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Before the fork: --workers children inherit the configured logger,
    # so every worker emits JSON records at the same level.
    obs_log.configure(args.log_level)
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.block_budget < 0:
        raise ReproError(f"--block-budget must be >= 0 MiB, got {args.block_budget}")
    if args.workers > 1 and not reuseport_supported():
        raise ReproError(
            "--workers needs SO_REUSEPORT, which this platform lacks; "
            "run a single-process serve instead"
        )
    if args.fault_plan:
        # Explicit flag beats the REPRO_FAULTS environment variable.  With
        # --workers the plan installs *before* the fork, so every worker
        # inherits an independent injector with the same seeded plan.
        install_plan(FaultPlan.from_source(args.fault_plan))

    def build_service() -> AnalysisService:
        # --cache-dir is both tiers: warm the pool from existing artifacts
        # at startup, and spill LRU-evicted sessions back to the same
        # directory.  Runs once per worker process under --workers.
        service = AnalysisService(
            capacity=args.capacity,
            jobs=args.jobs,
            backend=args.backend,
            cache_dir=args.cache_dir,
            deadline_seconds=args.deadline,
            max_inflight=args.max_inflight,
            block_budget=args.block_budget * 1024 * 1024,
        )
        if args.cache_dir and Path(args.cache_dir).is_dir():
            warmed = service.warm_from_cache_dir(args.cache_dir)
            print(
                f"warmed {len(warmed)} session(s) from {args.cache_dir}"
                + (f": {', '.join(warmed)}" if warmed else "")
            )
        return service

    def shutdown(service: AnalysisService) -> None:
        # Clean shutdown (Ctrl-C or SIGTERM): spill the warm pool so the
        # next `repro serve --cache-dir` starts where this one stopped,
        # and unlink any shared-memory segments a killed worker pool left
        # behind.
        if args.cache_dir:
            saved = service.save_to_cache_dir(args.cache_dir)
            print(f"spilled {len(saved)} warm session(s) to {args.cache_dir}")
        planes.cleanup_segments()

    if args.workers > 1:
        def announce(host: str, port: int, ready: int) -> None:
            print(
                f"repro service listening on http://{host}:{port} "
                f"({ready}/{args.workers} worker(s); {_SERVE_ROUTES})",
                flush=True,
            )

        return serve_workers(
            args.workers,
            args.host,
            args.port,
            build_service,
            announce=announce,
            on_shutdown=shutdown,
        )

    service = build_service()
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"repro service listening on http://{host}:{port} ({_SERVE_ROUTES})",
        flush=True,
    )
    run_server(server, handle_sigterm=True)
    shutdown(service)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    # One warm-session service behind every grid: `experiments all` shares
    # unfoldings and pairwise edge blocks across tables and figures (Figure 7
    # reuses every block Figure 6 computed).  --cell-jobs fans independent
    # grid cells over a worker pool (timing grids like figure8 stay serial
    # so concurrent cells cannot skew their wall-clock samples).
    service = AnalysisService(jobs=args.jobs, backend=args.backend)
    cell_jobs = args.cell_jobs
    runners = {
        "table2": lambda: run_table2(service=service, cell_jobs=cell_jobs).to_text(),
        "figure6": lambda: run_figure6(service, cell_jobs=cell_jobs).to_text(),
        "figure7": lambda: run_figure7(service, cell_jobs=cell_jobs).to_text(),
        "figure8": lambda: run_figure8(
            scales=args.scales or (1, 2, 4, 8, 12, 16, 24, 32),
            repetitions=args.repetitions,
            service=service,
        ).to_text(),
        "false-negatives": lambda: run_false_negatives(service=service).to_text(),
        "repairs": lambda: run_repairs(
            service=service, max_edits=args.max_edits
        ).to_text(),
    }
    names = list(runners) if args.which == "all" else [args.which]
    for index, name in enumerate(names):
        if index:
            print()
        print(runners[name]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robustness against MVRC for transaction programs "
        "(reproduction of Vandevoort et al., EDBT 2023)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="robustness report for a workload")
    analyze.add_argument(
        "workload", help="smallbank | tpcc | auction | auction(N) | path to a workload file"
    )
    analyze.add_argument("--subset", help="comma-separated program names")
    analyze.add_argument(
        "--all-settings",
        action="store_true",
        help="analyze under all four Section 7.2 settings",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="collect per-stage spans (resolve/unfold/pack/sweep/assemble/"
        "detect) and echo the span tree with the report",
    )
    _add_setting_argument(analyze)
    _add_json_argument(analyze)
    _add_jobs_argument(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    subsets = subparsers.add_parser("subsets", help="maximal robust subsets")
    subsets.add_argument("workload")
    subsets.add_argument("--method", choices=["type-II", "type-I"], default="type-II")
    _add_setting_argument(subsets)
    _add_json_argument(subsets)
    _add_jobs_argument(subsets)
    subsets.set_defaults(func=_cmd_subsets)

    graph = subparsers.add_parser("graph", help="render the summary graph")
    graph.add_argument("workload")
    graph.add_argument("--format", choices=["dot", "text"], default="text")
    graph.add_argument(
        "--witness",
        action="store_true",
        help="highlight the dangerous cycle (if any) and its anchored statements",
    )
    _add_setting_argument(graph)
    _add_json_argument(graph)
    _add_jobs_argument(graph)
    graph.set_defaults(func=_cmd_graph)

    advise = subparsers.add_parser(
        "advise", help="search for minimal edits making a workload robust"
    )
    advise.add_argument("workload")
    advise.add_argument(
        "--max-edits",
        type=int,
        default=3,
        metavar="N",
        help="largest edit-set size to explore (default: 3)",
    )
    advise.add_argument("--method", choices=["type-II", "type-I"], default="type-II")
    _add_setting_argument(advise)
    _add_json_argument(advise)
    _add_jobs_argument(advise)
    advise.set_defaults(func=_cmd_advise)

    watch = subparsers.add_parser(
        "watch", help="monitor a workload under seeded churn"
    )
    watch.add_argument("workload")
    watch.add_argument(
        "--steps",
        type=int,
        default=50,
        metavar="N",
        help="number of seeded edit steps to monitor (default: 50)",
    )
    watch.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="mutation-engine seed; the same (workload, seed) replays the "
        "identical edit sequence (default: 0)",
    )
    watch.add_argument(
        "--oracle-every",
        type=int,
        default=0,
        dest="oracle_every",
        metavar="K",
        help="cross-check every K-th step against a cold from-scratch "
        "analyzer (default: 0 = never); exit code 1 on any mismatch",
    )
    _add_setting_argument(watch)
    _add_json_argument(watch)
    _add_jobs_argument(watch)
    watch.set_defaults(func=_cmd_watch)

    cache = subparsers.add_parser(
        "cache", help="persist and restore session caches (edge blocks)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_save = cache_sub.add_parser(
        "save", help="build a session's edge blocks and save them to a file"
    )
    cache_save.add_argument("workload")
    cache_save.add_argument("path", help="destination cache file")
    cache_save.add_argument(
        "--all-settings",
        action="store_true",
        help="cache blocks for all four Section 7.2 settings",
    )
    _add_setting_argument(cache_save)
    _add_jobs_argument(cache_save)
    cache_save.set_defaults(func=_cmd_cache_save)
    cache_load = cache_sub.add_parser(
        "load", help="restore a saved cache and analyze without recomputation"
    )
    cache_load.add_argument("path", help="cache file written by 'cache save'")
    cache_load.add_argument(
        "--workload",
        help="workload source (default: the source recorded in the cache)",
    )
    _add_setting_argument(cache_load)
    _add_json_argument(cache_load)
    cache_load.set_defaults(func=_cmd_cache_load)

    serve = subparsers.add_parser(
        "serve", help="run the long-running HTTP analysis service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=8,
        metavar="N",
        help="max warm analyzer sessions kept in the LRU pool",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="warm the session pool from 'repro cache save' artifacts at startup",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="per-request deadline; expiries answer 504 deadline_exceeded",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        metavar="N",
        help="bound concurrent requests; excess load answers 503 + Retry-After",
    )
    serve.add_argument(
        "--fault-plan",
        metavar="JSON|PATH",
        help="install a deterministic fault-injection plan (inline JSON or "
        "a plan file; overrides REPRO_FAULTS) — chaos testing only",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fork N SO_REUSEPORT worker processes sharing the bind address "
        "(each with its own session pool and fault injector; SIGTERM "
        "drains all of them)",
    )
    serve.add_argument(
        "--block-budget",
        type=int,
        default=64,
        metavar="MIB",
        help="byte budget of the content-addressed cross-session block "
        "store, in MiB (0 disables cross-session block sharing)",
    )
    serve.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        metavar="LEVEL",
        help="structured JSON log level (debug|info|warning|error; "
        "default from REPRO_LOG, else info) — one JSON object per line "
        "on stderr, including per-request access logs",
    )
    _add_jobs_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "which",
        choices=[
            "table2", "figure6", "figure7", "figure8", "false-negatives",
            "repairs", "all",
        ],
    )
    experiments.add_argument(
        "--scales", type=int, nargs="+", help="Auction(n) scaling factors for figure8"
    )
    experiments.add_argument("--repetitions", type=int, default=10)
    experiments.add_argument(
        "--cell-jobs",
        type=int,
        metavar="N",
        help="execute independent grid cells on N worker threads "
        "(subset/characteristics grids; timing grids stay serial)",
    )
    experiments.add_argument(
        "--max-edits",
        type=int,
        default=3,
        metavar="N",
        help="edit budget for the repairs experiment (default: 3)",
    )
    _add_jobs_argument(experiments)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
