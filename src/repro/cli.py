"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands:

* ``analyze <workload> [--setting LABEL] [--subset P1,P2] [--all-settings]
  [--json]`` — robustness report for a built-in workload (``smallbank``,
  ``tpcc``, ``auction``, ``auction(N)``), a workload file, or a subset of
  its programs; ``--all-settings`` reports all four Section 7.2 settings;
* ``subsets <workload> [--setting LABEL] [--method type-II|type-I]
  [--json]`` — maximal robust subsets;
* ``graph <workload> [--setting LABEL] [--format dot|text] [--json]`` —
  summary graph rendering;
* ``cache save <workload> <path> [--setting LABEL] [--all-settings]`` /
  ``cache load <path> [--workload W]`` — persist a session's unfoldings and
  pairwise edge blocks to disk and restore them in a fresh process (no edge
  block is recomputed after a load);
* ``experiments <table2|figure6|figure7|figure8|false-negatives|all>`` —
  regenerate the paper's evaluation artifacts.

All commands accept any workload source :meth:`Workload.resolve` does, and
the analysis commands accept ``--jobs N`` to compute pairwise edge blocks
with ``N`` concurrent workers and ``--backend thread|process`` to pick the
worker pool (``process`` fans compiled statement profiles out over real
cores).  ``--json`` emits machine-readable reports
(``RobustnessReport.to_dict`` shapes) for embedding in CI pipelines; errors
(unknown workloads, missing files, malformed workload text) print to stderr
and exit with status 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.session import Analyzer
from repro.errors import ReproError
from repro.experiments.false_negatives import run_false_negatives
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.table2 import run_table2
from repro.detection.subsets import format_subsets
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, AnalysisSettings
from repro.viz import to_dot, to_text


def _settings_from(label: str | None) -> AnalysisSettings:
    if label is None:
        return ATTR_DEP_FK
    return AnalysisSettings.from_label(label)


def _subset_from(argument: str | None) -> list[str] | None:
    if argument is None:
        return None
    return [name.strip() for name in argument.split(",")]


def _add_setting_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--setting",
        choices=[settings.label for settings in ALL_SETTINGS],
        help="analysis setting (default: 'attr dep + FK')",
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="compute pairwise edge blocks with N concurrent workers",
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="worker pool for --jobs: 'thread' (default) or 'process' "
        "(real multi-core fan-out over compiled statement profiles; "
        "without --jobs, 'process' uses one worker per CPU core)",
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    session = Analyzer(args.workload, jobs=args.jobs, backend=args.backend)
    subset = _subset_from(args.subset)
    if args.all_settings:
        matrix = session.analyze_matrix(subset)
        if args.json:
            print(matrix.to_json(indent=2))
        else:
            print(matrix.describe())
        return 0
    report = session.analyze(_settings_from(args.setting), subset)
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(f"workload: {report.workload}")
        print(report.describe())
    return 0


def _cmd_subsets(args: argparse.Namespace) -> int:
    session = Analyzer(args.workload, jobs=args.jobs, backend=args.backend)
    settings = _settings_from(args.setting)
    subsets = session.maximal_robust_subsets(settings, args.method)
    if args.json:
        print(
            json.dumps(
                {
                    "workload": session.workload.name,
                    "settings": settings.label,
                    "method": args.method,
                    "maximal_robust_subsets": [sorted(subset) for subset in subsets],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"workload: {session.workload.name}   setting: {settings.label}   "
        f"method: {args.method}"
    )
    print(
        "maximal robust subsets:",
        format_subsets(subsets, dict(session.workload.abbreviations)) or "(none)",
    )
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    session = Analyzer(args.workload, jobs=args.jobs, backend=args.backend)
    graph = session.summary_graph(_settings_from(args.setting))
    if args.json:
        data = {"workload": session.workload.name, **graph.to_dict()}
        print(json.dumps(data, indent=2))
    elif args.format == "dot":
        print(to_dot(graph, name=session.workload.name))
    else:
        print(to_text(graph))
    return 0


def _cmd_cache_save(args: argparse.Namespace) -> int:
    session = Analyzer(args.workload, jobs=args.jobs, backend=args.backend)
    settings_list = ALL_SETTINGS if args.all_settings else [_settings_from(args.setting)]
    for settings in settings_list:
        session.summary_graph(settings)
    session.save_cache(args.path)
    info = session.cache_info()
    print(
        f"saved session cache for {session.workload.name!r} to {args.path}: "
        f"{info['unfolded_programs']} unfolded programs, "
        f"{info['edge_blocks']} edge blocks "
        f"({', '.join(settings.label for settings in settings_list)})"
    )
    return 0


def _cmd_cache_load(args: argparse.Namespace) -> int:
    source = args.workload
    if source is None:
        data = json.loads(Path(args.path).read_text())
        source = data.get("source")
        if source is None:
            print(
                f"repro: error: {args.path} does not record a workload source; "
                "pass --workload",
                file=sys.stderr,
            )
            return 2
    session = Analyzer(source)
    session.load_cache(args.path)
    report = session.analyze(_settings_from(args.setting))
    info = session.cache_info()
    if args.json:
        print(json.dumps({**report.to_dict(), "cache_info": info}, indent=2))
        return 0
    print(f"workload: {report.workload}  (cache: {args.path})")
    print(report.describe())
    print(
        f"cache: {info['blocks_loaded']} edge blocks loaded, "
        f"{info['block_computations']} computed"
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    runners = {
        "table2": lambda: run_table2().to_text(),
        "figure6": lambda: run_figure6().to_text(),
        "figure7": lambda: run_figure7().to_text(),
        "figure8": lambda: run_figure8(
            scales=args.scales or (1, 2, 4, 8, 12, 16, 24, 32),
            repetitions=args.repetitions,
        ).to_text(),
        "false-negatives": lambda: run_false_negatives().to_text(),
    }
    names = list(runners) if args.which == "all" else [args.which]
    for index, name in enumerate(names):
        if index:
            print()
        print(runners[name]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robustness against MVRC for transaction programs "
        "(reproduction of Vandevoort et al., EDBT 2023)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="robustness report for a workload")
    analyze.add_argument(
        "workload", help="smallbank | tpcc | auction | auction(N) | path to a workload file"
    )
    analyze.add_argument("--subset", help="comma-separated program names")
    analyze.add_argument(
        "--all-settings",
        action="store_true",
        help="analyze under all four Section 7.2 settings",
    )
    _add_setting_argument(analyze)
    _add_json_argument(analyze)
    _add_jobs_argument(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    subsets = subparsers.add_parser("subsets", help="maximal robust subsets")
    subsets.add_argument("workload")
    subsets.add_argument("--method", choices=["type-II", "type-I"], default="type-II")
    _add_setting_argument(subsets)
    _add_json_argument(subsets)
    _add_jobs_argument(subsets)
    subsets.set_defaults(func=_cmd_subsets)

    graph = subparsers.add_parser("graph", help="render the summary graph")
    graph.add_argument("workload")
    graph.add_argument("--format", choices=["dot", "text"], default="text")
    _add_setting_argument(graph)
    _add_json_argument(graph)
    _add_jobs_argument(graph)
    graph.set_defaults(func=_cmd_graph)

    cache = subparsers.add_parser(
        "cache", help="persist and restore session caches (edge blocks)"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_save = cache_sub.add_parser(
        "save", help="build a session's edge blocks and save them to a file"
    )
    cache_save.add_argument("workload")
    cache_save.add_argument("path", help="destination cache file")
    cache_save.add_argument(
        "--all-settings",
        action="store_true",
        help="cache blocks for all four Section 7.2 settings",
    )
    _add_setting_argument(cache_save)
    _add_jobs_argument(cache_save)
    cache_save.set_defaults(func=_cmd_cache_save)
    cache_load = cache_sub.add_parser(
        "load", help="restore a saved cache and analyze without recomputation"
    )
    cache_load.add_argument("path", help="cache file written by 'cache save'")
    cache_load.add_argument(
        "--workload",
        help="workload source (default: the source recorded in the cache)",
    )
    _add_setting_argument(cache_load)
    _add_json_argument(cache_load)
    cache_load.set_defaults(func=_cmd_cache_load)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "which",
        choices=["table2", "figure6", "figure7", "figure8", "false-negatives", "all"],
    )
    experiments.add_argument(
        "--scales", type=int, nargs="+", help="Auction(n) scaling factors for figure8"
    )
    experiments.add_argument("--repetitions", type=int, default=10)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
