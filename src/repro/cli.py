"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands:

* ``analyze <workload> [--setting LABEL] [--subset P1,P2]`` — robustness
  report for a built-in workload (``smallbank``, ``tpcc``, ``auction``,
  ``auction(N)``) or a subset of its programs;
* ``subsets <workload> [--setting LABEL] [--method type-II|type-I]`` —
  maximal robust subsets;
* ``graph <workload> [--setting LABEL] [--format dot|text]`` — summary
  graph rendering;
* ``experiments <table2|figure6|figure7|figure8|false-negatives|all>`` —
  regenerate the paper's evaluation artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.false_negatives import run_false_negatives
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.table2 import run_table2
from repro.detection.subsets import format_subsets, maximal_robust_subsets
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, AnalysisSettings
from repro.viz import to_dot, to_text
from repro.workloads import get_workload, load_workload


def _resolve_workload(argument: str):
    """A built-in workload name, ``auction(N)``, or a workload file path."""
    from pathlib import Path

    if Path(argument).is_file():
        return load_workload(argument)
    return get_workload(argument)


def _settings_from(label: str | None) -> AnalysisSettings:
    if label is None:
        return ATTR_DEP_FK
    return AnalysisSettings.from_label(label)


def _add_setting_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--setting",
        choices=[settings.label for settings in ALL_SETTINGS],
        help="analysis setting (default: 'attr dep + FK')",
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    if args.subset:
        workload = workload.subset([name.strip() for name in args.subset.split(",")])
    report = workload.analyze(_settings_from(args.setting))
    print(f"workload: {workload.name}")
    print(report.describe())
    return 0


def _cmd_subsets(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    settings = _settings_from(args.setting)
    subsets = maximal_robust_subsets(
        workload.programs, workload.schema, settings, args.method
    )
    print(f"workload: {workload.name}   setting: {settings.label}   method: {args.method}")
    print("maximal robust subsets:", format_subsets(subsets, dict(workload.abbreviations)) or "(none)")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    workload = _resolve_workload(args.workload)
    graph = workload.summary_graph(_settings_from(args.setting))
    if args.format == "dot":
        print(to_dot(graph, name=workload.name))
    else:
        print(to_text(graph))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    runners = {
        "table2": lambda: run_table2().to_text(),
        "figure6": lambda: run_figure6().to_text(),
        "figure7": lambda: run_figure7().to_text(),
        "figure8": lambda: run_figure8(
            scales=args.scales or (1, 2, 4, 8, 12, 16, 24, 32),
            repetitions=args.repetitions,
        ).to_text(),
        "false-negatives": lambda: run_false_negatives().to_text(),
    }
    names = list(runners) if args.which == "all" else [args.which]
    for index, name in enumerate(names):
        if index:
            print()
        print(runners[name]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robustness against MVRC for transaction programs "
        "(reproduction of Vandevoort et al., EDBT 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="robustness report for a workload")
    analyze.add_argument(
        "workload", help="smallbank | tpcc | auction | auction(N) | path to a workload file"
    )
    analyze.add_argument("--subset", help="comma-separated program names")
    _add_setting_argument(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    subsets = subparsers.add_parser("subsets", help="maximal robust subsets")
    subsets.add_argument("workload")
    subsets.add_argument("--method", choices=["type-II", "type-I"], default="type-II")
    _add_setting_argument(subsets)
    subsets.set_defaults(func=_cmd_subsets)

    graph = subparsers.add_parser("graph", help="render the summary graph")
    graph.add_argument("workload")
    graph.add_argument("--format", choices=["dot", "text"], default="text")
    _add_setting_argument(graph)
    graph.set_defaults(func=_cmd_graph)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "which",
        choices=["table2", "figure6", "figure7", "figure8", "false-negatives", "all"],
    )
    experiments.add_argument(
        "--scales", type=int, nargs="+", help="Auction(n) scaling factors for figure8"
    )
    experiments.add_argument("--repetitions", type=int, default=10)
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
