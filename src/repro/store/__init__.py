"""repro.store — the content-addressed cross-session block store.

See :mod:`repro.store.blockstore` for the design notes; attach a
:class:`BlockStore` via ``Analyzer(..., block_store=store)`` or let
:class:`repro.service.AnalysisService` build one per service (the
default), surfaced as the ``store`` block of ``GET /v1/stats``.
"""

from repro.store.blockstore import (
    DEFAULT_BUDGET_BYTES,
    BlockKey,
    BlockStore,
    PackedBlock,
    entry_bytes,
)

__all__ = [
    "BlockStore",
    "BlockKey",
    "PackedBlock",
    "DEFAULT_BUDGET_BYTES",
    "entry_bytes",
]
