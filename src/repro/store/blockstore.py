"""A thread-safe, content-addressed store of pairwise edge blocks.

Algorithm 1 is per ordered program pair, and since PR 4/5 every block is
identified by per-program ``Unfold≤k`` content hashes
(:mod:`repro.summary.fingerprint`).  That makes blocks content-addressable
for free: two sessions whose workloads differ in one program agree —
*exactly*, not heuristically — on every block not involving the differing
program, which is the same pair-decomposition the template line of work
exploits (Vandevoort et al. 2021/2022).

:class:`BlockStore` is the cross-session half of that observation.  An
:class:`~repro.summary.pairwise.EdgeBlockStore` attached to one reads
through it before computing a missing block and publishes what it does
compute, so warm blocks are shared across pooled service sessions, forks,
grid cells and repair candidates — ``seed_from`` shares only within a
session lineage; the block store shares across lineages.

Entries are refcounted: every session-level adoption of an entry pins it,
and only unpinned entries (refcount zero, every adopting session gone or
cleared) are eligible for eviction.  Eviction is LRU over the unpinned
set under a byte budget — the multi-tenant capacity lever that replaces
"evict a whole session" as the only knob.

Exactness contract.  Keys are ``(schema fingerprint, settings label,
program fingerprint i, program fingerprint j)``.  The schema fingerprint
is required because tuple-granularity widening consults
``schema.attributes``; the unfolding depth ``k`` needs no key component
because program fingerprints hash the *post-unfold* LTP content — two
different ``max_loop_iterations`` values that matter produce different
LTPs and therefore different keys.  Packed block coordinates are a pure
function of that key (the batch kernel is deterministic), so a hit is
bit-identical to a recomputation by construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

#: One block key: ``(schema_fp, settings_label, program_fp_i, program_fp_j)``.
BlockKey = tuple[str, str, str, str]

#: One packed block: the batch kernel's per-pair occurrence coordinates
#: ``(source_occurrence, target_occurrence, non_counterflow, counterflow)``.
PackedBlock = tuple[tuple[int, int, bool, bool], ...]

#: Deterministic per-entry byte estimate: a 4-tuple of small ints/bools
#: costs ~72 bytes of tuple header + slots on CPython; the entry adds the
#: outer tuple, key strings and bookkeeping.  Estimates, not measurements —
#: the budget needs a *stable* ordering measure, not an exact allocator
#: profile (``sys.getsizeof`` is neither recursive nor stable across
#: builds, and the same entry must weigh the same in every worker).
ENTRY_OVERHEAD_BYTES = 512
COORD_BYTES = 72

#: Default byte budget: 64 MiB of packed coordinates — thousands of
#: workload-sized blocks, small next to one warm session's graphs.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


def entry_bytes(coords: PackedBlock) -> int:
    """The deterministic byte estimate the budget charges one entry."""
    return ENTRY_OVERHEAD_BYTES + COORD_BYTES * len(coords)


class _Entry:
    __slots__ = ("coords", "bytes", "refs")

    def __init__(self, coords: PackedBlock):
        self.coords = coords
        self.bytes = entry_bytes(coords)
        self.refs = 0


class BlockStore:
    """The content-addressed, refcounted block cache shared across sessions.

    All operations take one internal lock, so a store may serve every
    thread of a service pool concurrently.  ``budget_bytes`` bounds the
    *unpinned* + pinned estimate; entries pinned by live sessions are
    never evicted (the sessions hold Python references to the coordinate
    tuples anyway — evicting the index entry would save nothing and lose
    the sharing).  ``None`` means unbounded.
    """

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_BUDGET_BYTES):
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(
                f"block-store byte budget must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: dict[BlockKey, _Entry] = {}
        #: Unpinned keys (refcount zero) in LRU order: oldest first.
        self._unpinned: OrderedDict[BlockKey, None] = OrderedDict()
        self._bytes = 0
        self._shared_hits = 0
        self._misses = 0
        self._publishes = 0
        self._evictions = 0

    # -- the read-through / publish protocol --------------------------------
    def get(self, key: BlockKey) -> Optional[PackedBlock]:
        """The stored block for ``key``, pinning it for the caller.

        A hit takes one reference (balance it with :meth:`release`) and
        counts under ``shared_hits`` — it stands for one avoided block
        computation.  A miss counts under ``misses`` and returns ``None``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            entry.refs += 1
            self._unpinned.pop(key, None)
            self._shared_hits += 1
            return entry.coords

    def publish(self, key: BlockKey, coords: PackedBlock) -> PackedBlock:
        """Insert a freshly computed block, pinning it for the caller.

        Returns the *canonical* coordinates: the first publisher's tuple
        wins, so concurrent publishers of the same content converge on one
        shared object (content addressing makes their tuples equal by
        construction).  Takes one reference either way.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(coords)
                self._entries[key] = entry
                self._bytes += entry.bytes
                self._publishes += 1
            entry.refs += 1
            self._unpinned.pop(key, None)
            self._evict_over_budget()
            return entry.coords

    def retain(self, key: BlockKey) -> bool:
        """Take one more reference on an entry (``seed_from`` sharing).

        Returns ``False`` if the entry is gone (evicted or cleared) — the
        caller then simply holds no store reference for that block.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry.refs += 1
            self._unpinned.pop(key, None)
            return True

    def release(self, key: BlockKey) -> None:
        """Drop one reference; at zero the entry becomes evictable (MRU
        end of the unpinned LRU).  Releasing a key that was evicted after
        :meth:`clear` is a no-op — sessions outliving a cleared store must
        not crash on teardown."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            if entry.refs > 0:
                entry.refs -= 1
            if entry.refs == 0:
                self._unpinned.pop(key, None)
                self._unpinned[key] = None
                self._evict_over_budget()

    # -- eviction ------------------------------------------------------------
    def _evict_over_budget(self) -> None:
        """Evict oldest unpinned entries while over budget (lock held)."""
        if self.budget_bytes is None:
            return
        while self._bytes > self.budget_bytes and self._unpinned:
            key, _ = self._unpinned.popitem(last=False)
            entry = self._entries.pop(key)
            self._bytes -= entry.bytes
            self._evictions += 1

    # -- diagnostics ---------------------------------------------------------
    def info(self) -> dict[str, object]:
        """Store counters (the ``store`` block of ``GET /v1/stats``)."""
        with self._lock:
            return {
                "unique_blocks": len(self._entries),
                "pinned_blocks": len(self._entries) - len(self._unpinned),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "shared_hits": self._shared_hits,
                "misses": self._misses,
                "publishes": self._publishes,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        """Drop every entry and counter (sessions holding refs keep their
        local blocks; their later releases become no-ops)."""
        with self._lock:
            self._entries.clear()
            self._unpinned.clear()
            self._bytes = 0
            self._shared_hits = 0
            self._misses = 0
            self._publishes = 0
            self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"BlockStore(blocks={info['unique_blocks']}, "
            f"bytes={info['bytes']}, shared_hits={info['shared_hits']})"
        )
