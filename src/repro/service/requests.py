"""The typed request/response layer of the analysis service.

Each request class validates one JSON-shaped mapping (:meth:`from_dict`),
executes against an :class:`~repro.service.AnalysisService`
(:meth:`execute`, returning the library's result objects) and serializes
the result to the exact payload the CLI's ``--json`` flag prints
(:meth:`payload`).  The CLI and the HTTP frontend both dispatch through
:func:`parse_request` / :meth:`AnalysisService.handle`, which is what makes
``repro analyze … --json`` and ``POST /v1/analyze`` byte-identical — there
is one serialization path, not two.

Validation is strict: unknown keys, wrong types, unknown settings labels or
methods raise :class:`ServiceError`, whose :attr:`~ServiceError.envelope`
is the machine-readable error shape (and whose CLI behaviour is the
established exit-code-2 semantics — it derives from :class:`ReproError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.detection.subsets import METHODS, SubsetsReport, maximal_subsets
from repro.errors import ReproError
from repro.service.grid import GridResult, GridSpec
from repro.summary.graph import SummaryGraph
from repro.summary.settings import ALL_SETTINGS, ATTR_DEP_FK, AnalysisSettings

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.session import AnalysisMatrix
    from repro.detection.api import RobustnessReport
    from repro.service.core import AnalysisService


class ServiceError(ReproError):
    """A request the service refuses, as a machine-readable envelope.

    Derives from :class:`ReproError`, so the CLI's established error path
    (print to stderr, exit code 2) applies unchanged; the HTTP frontend
    maps :attr:`status` to the response code and sends :attr:`envelope`
    as the body — malformed requests get this envelope, never a traceback.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "invalid_request",
        status: int = 400,
        retry_after: int | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.status = status
        #: Seconds after which a retry may succeed (shed-load responses);
        #: the HTTP frontend also sends it as a ``Retry-After`` header.
        self.retry_after = retry_after

    @classmethod
    def internal(cls, error: BaseException) -> "ServiceError":
        """The envelope for an *unexpected* exception (the defensive
        catch-alls of the HTTP frontend route through here, so a handler
        crash answers a well-formed 500 envelope, never a traceback)."""
        return cls(
            f"internal error: {type(error).__name__}: {error}",
            kind="internal_error",
            status=500,
        )

    @property
    def envelope(self) -> dict[str, Any]:
        """The JSON error body, carrying the CLI's exit-code-2 semantics."""
        error: dict[str, Any] = {
            "type": self.kind,
            "message": str(self),
            "exit_code": 2,
        }
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ServiceError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data

def _reject_unknown_keys(data: Mapping[str, Any], allowed: tuple[str, ...], kind: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ServiceError(
            f"{kind} request: unknown field(s) {sorted(unknown)!r}; "
            f"expected a subset of {sorted(allowed)!r}"
        )

def _string(data: Mapping[str, Any], key: str, kind: str, *, required: bool = False) -> str | None:
    value = data.get(key)
    if value is None:
        if required:
            raise ServiceError(f"{kind} request: missing required field {key!r}")
        return None
    if not isinstance(value, str):
        raise ServiceError(
            f"{kind} request: field {key!r} must be a string, "
            f"got {type(value).__name__}"
        )
    return value

def _bool(data: Mapping[str, Any], key: str, kind: str, default: bool) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise ServiceError(
            f"{kind} request: field {key!r} must be a boolean, "
            f"got {type(value).__name__}"
        )
    return value

def _int(data: Mapping[str, Any], key: str, kind: str, default: int) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(
            f"{kind} request: field {key!r} must be an integer, "
            f"got {type(value).__name__}"
        )
    return value

def _settings(label: str | None, kind: str) -> AnalysisSettings:
    if label is None:
        return ATTR_DEP_FK
    try:
        return AnalysisSettings.from_label(label)
    except ValueError as error:
        raise ServiceError(f"{kind} request: {error}") from None

def _method(data: Mapping[str, Any], kind: str) -> str:
    method = _string(data, "method", kind) or "type-II"
    if method not in METHODS:
        raise ServiceError(
            f"{kind} request: unknown method {method!r}; "
            f"expected one of {sorted(METHODS)}"
        )
    return method

def _name_list(data: Mapping[str, Any], key: str, kind: str) -> tuple[str, ...] | None:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise ServiceError(
            f"{kind} request: field {key!r} must be a list of strings, "
            f"got {type(value).__name__}"
        )
    for item in value:
        if not isinstance(item, str):
            raise ServiceError(
                f"{kind} request: field {key!r} must contain only strings, "
                f"got {type(item).__name__}"
            )
    return tuple(value)


@dataclass(frozen=True)
class AnalyzeRequest:
    """``repro analyze`` / ``POST /v1/analyze``: one robustness report
    (or the four-settings matrix with ``all_settings``).

    ``profile=True`` additionally collects the per-stage span tree
    (:mod:`repro.obs.spans`) and echoes it under a ``"profile"`` key in
    the payload; without the flag the payload is byte-identical to what
    it has always been (the opt-in-key precedent of ``fault_info``).
    """

    workload: str
    setting: str | None = None
    subset: tuple[str, ...] | None = None
    all_settings: bool = False
    profile: bool = False

    kind = "analyze"

    @classmethod
    def from_dict(cls, data: Any) -> "AnalyzeRequest":
        data = _require_mapping(data, f"an {cls.kind} request")
        _reject_unknown_keys(
            data,
            ("workload", "setting", "subset", "all_settings", "profile"),
            cls.kind,
        )
        return cls(
            workload=_string(data, "workload", cls.kind, required=True),
            setting=_string(data, "setting", cls.kind),
            subset=_name_list(data, "subset", cls.kind),
            all_settings=_bool(data, "all_settings", cls.kind, False),
            profile=_bool(data, "profile", cls.kind, False),
        )

    def execute(self, service: "AnalysisService") -> "RobustnessReport | AnalysisMatrix":
        session = service.session(self.workload)
        if self.all_settings:
            return session.analyze_matrix(self.subset)
        return session.analyze(_settings(self.setting, self.kind), self.subset)

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        if not self.profile:
            return self.execute(service).to_dict()
        from repro.obs.spans import profile_scope

        with profile_scope() as collector:
            payload = self.execute(service).to_dict()
        payload["profile"] = collector.tree()
        return payload


@dataclass(frozen=True)
class SubsetsRequest:
    """``repro subsets`` / ``POST /v1/subsets``: the maximal robust subsets."""

    workload: str
    setting: str | None = None
    method: str = "type-II"

    kind = "subsets"

    @classmethod
    def from_dict(cls, data: Any) -> "SubsetsRequest":
        data = _require_mapping(data, f"a {cls.kind} request")
        _reject_unknown_keys(data, ("workload", "setting", "method"), cls.kind)
        return cls(
            workload=_string(data, "workload", cls.kind, required=True),
            setting=_string(data, "setting", cls.kind),
            method=_method(data, cls.kind),
        )

    def execute(self, service: "AnalysisService") -> SubsetsReport:
        session = service.session(self.workload)
        settings = _settings(self.setting, self.kind)
        return SubsetsReport(
            workload=session.workload.name,
            settings=settings,
            method=self.method,
            maximal=maximal_subsets(session.robust_subsets(settings, self.method)),
            abbreviations=dict(session.workload.abbreviations),
        )

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        return self.execute(service).to_dict()


@dataclass(frozen=True)
class GraphRequest:
    """``repro graph`` / ``POST /v1/graph``: the full summary graph."""

    workload: str
    setting: str | None = None

    kind = "graph"

    @classmethod
    def from_dict(cls, data: Any) -> "GraphRequest":
        data = _require_mapping(data, f"a {cls.kind} request")
        _reject_unknown_keys(data, ("workload", "setting"), cls.kind)
        return cls(
            workload=_string(data, "workload", cls.kind, required=True),
            setting=_string(data, "setting", cls.kind),
        )

    def execute(self, service: "AnalysisService") -> tuple[str, SummaryGraph]:
        session = service.session(self.workload)
        graph = session.summary_graph(_settings(self.setting, self.kind))
        return session.workload.name, graph

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        name, graph = self.execute(service)
        return {"workload": name, **graph.to_dict()}


@dataclass(frozen=True)
class AdviseRequest:
    """``repro advise`` / ``POST /v1/advise``: minimal repair edit sets
    for a non-robust workload (a :class:`repro.repair.RepairReport`)."""

    workload: str
    setting: str | None = None
    method: str = "type-II"
    max_edits: int = 3

    kind = "advise"

    @classmethod
    def from_dict(cls, data: Any) -> "AdviseRequest":
        data = _require_mapping(data, f"an {cls.kind} request")
        _reject_unknown_keys(
            data, ("workload", "setting", "method", "max_edits"), cls.kind
        )
        max_edits = _int(data, "max_edits", cls.kind, 3)
        if max_edits < 1:
            raise ServiceError(
                f"{cls.kind} request: field 'max_edits' must be >= 1, got {max_edits}"
            )
        return cls(
            workload=_string(data, "workload", cls.kind, required=True),
            setting=_string(data, "setting", cls.kind),
            method=_method(data, cls.kind),
            max_edits=max_edits,
        )

    def execute(self, service: "AnalysisService"):
        session = service.session(self.workload)
        return session.advise(
            _settings(self.setting, self.kind),
            method=self.method,
            max_edits=self.max_edits,
        )

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        return self.execute(service).to_dict()


@dataclass(frozen=True)
class GridRequest:
    """``POST /v1/grid``: a declarative workload × settings sweep.

    The JSON face of :class:`~repro.service.grid.GridSpec` — workloads are
    source strings, settings are Figure 6/7 labels (all four when omitted).
    """

    workloads: tuple[str, ...]
    settings: tuple[str, ...] | None = None
    task: str = "analyze"
    method: str = "type-II"
    repetitions: int = 1
    warm: bool = True
    include_verdicts: bool = False
    cell_jobs: int | None = None

    kind = "grid"

    @classmethod
    def from_dict(cls, data: Any) -> "GridRequest":
        data = _require_mapping(data, f"a {cls.kind} request")
        _reject_unknown_keys(
            data,
            ("workloads", "settings", "task", "method", "repetitions", "warm",
             "include_verdicts", "cell_jobs"),
            cls.kind,
        )
        workloads = _name_list(data, "workloads", cls.kind)
        if not workloads:
            raise ServiceError(
                f"{cls.kind} request: missing required field 'workloads' "
                "(a non-empty list of workload sources)"
            )
        cell_jobs = (
            _int(data, "cell_jobs", cls.kind, 1) if "cell_jobs" in data else None
        )
        return cls(
            workloads=workloads,
            settings=_name_list(data, "settings", cls.kind),
            task=_string(data, "task", cls.kind) or "analyze",
            method=_method(data, cls.kind),
            repetitions=_int(data, "repetitions", cls.kind, 1),
            warm=_bool(data, "warm", cls.kind, True),
            include_verdicts=_bool(data, "include_verdicts", cls.kind, False),
            cell_jobs=cell_jobs,
        )

    def spec(self) -> GridSpec:
        settings = (
            ALL_SETTINGS
            if self.settings is None
            else tuple(_settings(label, self.kind) for label in self.settings)
        )
        try:
            return GridSpec(
                workloads=self.workloads,
                settings=settings,
                task=self.task,
                method=self.method,
                repetitions=self.repetitions,
                warm=self.warm,
                include_verdicts=self.include_verdicts,
                cell_jobs=self.cell_jobs,
            )
        except ReproError as error:
            raise ServiceError(f"{self.kind} request: {error}") from None

    def execute(self, service: "AnalysisService") -> GridResult:
        return service.grid(self.spec())

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        return self.execute(service).to_dict()


#: Hard cap on steps per watch request: a watch run holds its forked
#: session for the whole edit sequence, so an unbounded ``steps`` would
#: let one request occupy the service indefinitely.
MAX_WATCH_STEPS = 10_000


@dataclass(frozen=True)
class WatchRequest:
    """``repro watch`` / ``POST /v1/watch``: monitor a workload under
    seeded churn (a :class:`repro.churn.ChurnTrace`).

    The run operates on a *fork* of the pooled session — the warm edge
    blocks are shared copy-on-write via ``seed_from``, but the pooled
    original is never mutated, so concurrent requests against the same
    workload keep seeing the un-churned fingerprint.
    """

    workload: str
    setting: str | None = None
    steps: int = 50
    seed: int = 0
    oracle_every: int = 0

    kind = "watch"

    @classmethod
    def from_dict(cls, data: Any) -> "WatchRequest":
        data = _require_mapping(data, f"a {cls.kind} request")
        _reject_unknown_keys(
            data, ("workload", "setting", "steps", "seed", "oracle_every"), cls.kind
        )
        steps = _int(data, "steps", cls.kind, 50)
        if not 1 <= steps <= MAX_WATCH_STEPS:
            raise ServiceError(
                f"{cls.kind} request: field 'steps' must be within "
                f"1..{MAX_WATCH_STEPS}, got {steps}"
            )
        oracle_every = _int(data, "oracle_every", cls.kind, 0)
        if oracle_every < 0:
            raise ServiceError(
                f"{cls.kind} request: field 'oracle_every' must be >= 0, "
                f"got {oracle_every}"
            )
        return cls(
            workload=_string(data, "workload", cls.kind, required=True),
            setting=_string(data, "setting", cls.kind),
            steps=steps,
            seed=_int(data, "seed", cls.kind, 0),
            oracle_every=oracle_every,
        )

    def execute(self, service: "AnalysisService"):
        from repro.churn.monitor import Monitor

        fork = service.session(self.workload).fork()
        monitor = Monitor(
            session=fork,
            setting=_settings(self.setting, self.kind),
            seed=self.seed,
            source_hint=self.workload,
        )
        trace = monitor.run(self.steps, oracle_every=self.oracle_every)
        service.record_watch(trace)
        return trace

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        return self.execute(service).to_dict()


#: Hard cap on items per batch request: a single oversized batch would
#: otherwise monopolize the pool for an unbounded stretch (and serve as a
#: trivial request-amplification vector).
MAX_BATCH_ITEMS = 64


@dataclass(frozen=True)
class BatchRequest:
    """``POST /v1/batch``: several requests in one round trip.

    Items execute in order against the same warm pool; a failing item
    yields its :class:`ServiceError` envelope in place of a result and the
    remaining items still run.  Batches are capped at
    :data:`MAX_BATCH_ITEMS` items.
    """

    requests: tuple[tuple[str | None, Mapping[str, Any]], ...]

    kind = "batch"

    @classmethod
    def from_dict(cls, data: Any) -> "BatchRequest":
        data = _require_mapping(data, f"a {cls.kind} request")
        _reject_unknown_keys(data, ("requests",), cls.kind)
        items = data.get("requests")
        if not isinstance(items, (list, tuple)) or not items:
            raise ServiceError(
                f"{cls.kind} request: 'requests' must be a non-empty list"
            )
        if len(items) > MAX_BATCH_ITEMS:
            raise ServiceError(
                f"{cls.kind} request: {len(items)} items exceed the batch "
                f"limit of {MAX_BATCH_ITEMS}; split the batch"
            )
        # Only the batch envelope is validated here; each item is validated
        # when it executes, so one malformed item yields one error envelope
        # in the results instead of rejecting its siblings.
        parsed: list[tuple[str, Mapping[str, Any]]] = []
        for index, item in enumerate(items):
            item = _require_mapping(item, f"batch item {index}")
            parsed.append(
                (
                    item.get("kind"),
                    {key: value for key, value in item.items() if key != "kind"},
                )
            )
        return cls(requests=tuple(parsed))

    def payload(self, service: "AnalysisService") -> dict[str, Any]:
        results: list[dict[str, Any]] = []
        for kind, body in self.requests:
            try:
                if kind == self.kind:
                    raise ServiceError("batch requests cannot be nested")
                results.append(service.handle(kind, body))
            except ServiceError as error:
                results.append(error.envelope)
        return {"results": results}


#: Request class per dispatch kind (HTTP route tail and CLI command name).
REQUEST_KINDS: dict[str, Any] = {
    AnalyzeRequest.kind: AnalyzeRequest,
    SubsetsRequest.kind: SubsetsRequest,
    GraphRequest.kind: GraphRequest,
    AdviseRequest.kind: AdviseRequest,
    WatchRequest.kind: WatchRequest,
    GridRequest.kind: GridRequest,
    BatchRequest.kind: BatchRequest,
}


def parse_request(kind: str, data: Any):
    """Validate one request mapping into its typed request object."""
    request_cls = REQUEST_KINDS.get(kind)
    if request_cls is None:
        raise ServiceError(
            f"unknown request kind {kind!r}; expected one of {sorted(REQUEST_KINDS)}",
            kind="not_found",
            status=404,
        )
    return request_cls.from_dict(data)
