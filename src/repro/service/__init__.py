"""The long-running analysis service (PR 4's public surface).

Three layers, each usable on its own:

* :class:`AnalysisService` — an LRU pool of warm, thread-safe
  :class:`~repro.analysis.Analyzer` sessions keyed by workload fingerprint,
  with typed entry points, a ``handle(kind, mapping)`` JSON dispatch,
  cache-directory warm start (:meth:`AnalysisService.warm_from_cache_dir`)
  and — with ``cache_dir=`` — eviction-time spill plus rehydration, so a
  bounded pool keeps its warm state across the LRU boundary;
* the typed request layer — :class:`AnalyzeRequest`,
  :class:`SubsetsRequest`, :class:`GraphRequest`, :class:`AdviseRequest`,
  :class:`WatchRequest`, :class:`GridRequest`, :class:`BatchRequest`,
  validating JSON-shaped mappings without argparse and answering with the
  exact CLI ``--json`` payloads (errors become the :class:`ServiceError`
  envelope, carrying the CLI's exit-code-2 semantics);
* the Grid API — :class:`GridSpec` sweeps (workload × settings × scale,
  per-cell timing, ``cell_jobs=`` worker-pool fan-out over independent
  cells) that the :mod:`repro.experiments` modules ride, so the paper's
  evaluation grids share warm block caches and the process backend;
* the stdlib HTTP frontend — ``repro serve`` /
  :func:`repro.service.http.serve`, exposing ``POST /v1/analyze`` /
  ``/v1/subsets`` / ``/v1/graph`` / ``/v1/advise`` / ``/v1/watch`` /
  ``/v1/grid`` / ``/v1/batch`` plus ``GET /v1/stats`` and
  ``GET /v1/healthz`` over :class:`~http.server.ThreadingHTTPServer`,
  with clean SIGTERM shutdown in the ``repro serve`` process.
"""

from repro.service.core import AnalysisService
from repro.service.grid import TASKS, GridCell, GridResult, GridSpec, run_grid
from repro.service.http import ServiceHTTPServer, make_server, run_server, serve
from repro.service.requests import (
    MAX_BATCH_ITEMS,
    MAX_WATCH_STEPS,
    REQUEST_KINDS,
    AdviseRequest,
    AnalyzeRequest,
    BatchRequest,
    GraphRequest,
    GridRequest,
    ServiceError,
    SubsetsRequest,
    WatchRequest,
    parse_request,
)

__all__ = [
    "AnalysisService",
    "AnalyzeRequest",
    "SubsetsRequest",
    "GraphRequest",
    "AdviseRequest",
    "WatchRequest",
    "GridRequest",
    "BatchRequest",
    "MAX_BATCH_ITEMS",
    "MAX_WATCH_STEPS",
    "ServiceError",
    "REQUEST_KINDS",
    "parse_request",
    "GridSpec",
    "GridCell",
    "GridResult",
    "run_grid",
    "TASKS",
    "ServiceHTTPServer",
    "make_server",
    "run_server",
    "serve",
]
