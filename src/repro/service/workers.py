"""The multi-process frontend of ``repro serve --workers N``.

One :class:`~repro.service.http.ServiceHTTPServer` is a threading server
over the GIL, so one slow ``/v1/grid`` can still starve the accept loop
and every CPU-bound handler shares one interpreter.  ``--workers N``
scales past that with the classic ``SO_REUSEPORT`` pre-fork model:

* the parent binds a *placeholder* socket first — bound with
  ``SO_REUSEPORT`` but never listening — which resolves ``--port 0`` to a
  concrete port and reserves the address for the group's lifetime (a
  bound, non-listening member keeps the reuseport group alive without
  receiving connections, which only listening sockets do);
* each forked worker builds its **own** :class:`AnalysisService` — its own
  session pool, block store and fault injector — and binds a listening
  ``SO_REUSEPORT`` socket on the same address; the kernel distributes
  accepted connections among the workers;
* workers share only what is on disk: the ``--cache-dir`` spill tier
  (spills are atomic pid-suffixed renames, so concurrent workers never
  corrupt an artifact) — the in-memory block store is per-process, which
  keeps sharing lock-local and the failure domain per worker;
* SIGTERM/SIGINT to the parent fans out as SIGTERM to every worker; each
  worker drains in flight requests and spills exactly like a
  single-process ``repro serve``, and the parent exits 0 iff every worker
  exited 0.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import traceback
from typing import Callable

from repro.service.core import AnalysisService
from repro.service.http import make_server, run_server


def reuseport_supported() -> bool:
    """Whether this platform can run the ``--workers`` fan-out."""
    return hasattr(socket, "SO_REUSEPORT")


def _reserve_port(host: str, port: int) -> socket.socket:
    """Bind the placeholder socket that pins the group's address.

    Bound but never listening: it resolves ``port=0`` to a concrete port
    and keeps the reuseport group's address reserved while workers come
    and go, without ever being handed a connection itself.
    """
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((host, port))
    except BaseException:
        placeholder.close()
        raise
    return placeholder


def _child_main(
    placeholder: socket.socket,
    host: str,
    port: int,
    service_factory: Callable[[], AnalysisService],
    quiet: bool,
    on_shutdown: Callable[[AnalysisService], None] | None,
    ready_fd: int,
    worker_index: int,
) -> None:
    """One worker process: build, bind, announce readiness, serve, drain.

    Never returns — exits the process directly (``os._exit``), so a
    worker can never fall through into the parent's post-fork code.
    """
    code = 1
    try:
        placeholder.close()
        # Tag this worker before the service (and its logger/metrics)
        # comes up: every log record and the /v1/stats + /v1/metrics
        # surfaces carry the index, making multi-worker output
        # attributable under the kernel's reuseport load balancing.
        os.environ["REPRO_WORKER_INDEX"] = str(worker_index)
        service = service_factory()
        server = make_server(service, host, port, quiet=quiet, reuseport=True)
        os.write(ready_fd, b"1")
        os.close(ready_fd)
        ready_fd = -1
        run_server(server, handle_sigterm=True)
        if on_shutdown is not None:
            on_shutdown(service)
        code = 0
    except BaseException:
        traceback.print_exc()
    finally:
        if ready_fd >= 0:
            try:
                os.close(ready_fd)
            except OSError:
                pass
        sys.stdout.flush()
        sys.stderr.flush()
        os._exit(code)


def serve_workers(
    workers: int,
    host: str,
    port: int,
    service_factory: Callable[[], AnalysisService],
    *,
    quiet: bool = False,
    announce: Callable[[str, int, int], None] | None = None,
    on_shutdown: Callable[[AnalysisService], None] | None = None,
) -> int:
    """Fork ``workers`` reuseport servers and supervise them to exit.

    ``service_factory`` runs *in each worker* (each gets its own pool and
    injector; anything installed in this process before the call — e.g. a
    fault plan — is inherited by every worker as an independent copy).
    ``announce(host, port, ready)`` fires once every worker is up (or has
    died trying — ``ready`` says how many made it).  ``on_shutdown``
    runs in each worker after its clean drain (the spill hook).

    Returns the exit code: 0 iff every worker exited 0.  Must be called
    from the main thread of a process with no other children to reap.
    """
    if workers < 2:
        raise ValueError(f"serve_workers needs >= 2 workers, got {workers}")
    if not reuseport_supported():
        raise OSError("SO_REUSEPORT is not supported on this platform")
    placeholder = _reserve_port(host, port)
    bound_host, bound_port = placeholder.getsockname()[:2]
    read_fd, write_fd = os.pipe()
    children: list[int] = []
    try:
        for index in range(workers):
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                _child_main(
                    placeholder,
                    host,
                    bound_port,
                    service_factory,
                    quiet,
                    on_shutdown,
                    write_fd,
                    index,
                )
                raise AssertionError("unreachable")  # pragma: no cover
            children.append(pid)
        os.close(write_fd)
        write_fd = -1
        # Wait for every worker to bind (one readiness byte each); a dead
        # worker closes its pipe end instead, which shows up as EOF once
        # all write ends are gone.
        ready = 0
        while ready < workers:
            chunk = os.read(read_fd, workers - ready)
            if not chunk:
                break
            ready += len(chunk)
        if announce is not None:
            announce(bound_host, bound_port, ready)

        def _forward(signum: int, frame: object) -> None:
            # One stop signal to the parent fans out as SIGTERM to every
            # worker; each drains and spills on its own (run_server's
            # handler), the parent just keeps waiting below.
            for child in children:
                try:
                    os.kill(child, signal.SIGTERM)
                except ProcessLookupError:
                    pass

        previous_term = signal.signal(signal.SIGTERM, _forward)
        previous_int = signal.signal(signal.SIGINT, _forward)
        try:
            code = 0
            for child in children:
                # PEP 475: waitpid retries after the forwarding handler
                # runs, so no EINTR loop is needed here.
                _, status = os.waitpid(child, 0)
                if os.waitstatus_to_exitcode(status) != 0:
                    code = 1
            return code
        finally:
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)
    finally:
        if write_fd >= 0:
            os.close(write_fd)
        os.close(read_fd)
        placeholder.close()
