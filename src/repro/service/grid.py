"""The unified Grid API: declarative workload × settings × scale sweeps.

Every experiment grid in the paper's evaluation — Figures 6/7 (subset grids
over three benchmarks × four settings), Table 2 (graph characteristics per
benchmark), Figure 8 (timed analysis per Auction(n) scale) and the Section
7.2 false-negative sweep — is an instance of the same shape: run one
*task* over the cross product of workloads and analysis settings and record
per-cell results with per-cell timing.  :class:`GridSpec` names that shape
once; :func:`run_grid` executes it over an
:class:`~repro.service.AnalysisService`, so every cell of every grid rides
the service's warm-session pool (shared unfoldings and pairwise edge
blocks) and its ``jobs``/``backend`` configuration instead of constructing
ad-hoc :class:`~repro.analysis.Analyzer` sessions per cell.

Cells carry JSON-compatible values (``RobustnessReport.to_dict`` shapes for
``task="analyze"``, :class:`~repro.detection.subsets.SubsetsReport` shapes
for ``task="subsets"``), so a :class:`GridResult` serializes as-is — it is
the response body of the service's ``/v1/grid`` endpoint.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.detection.subsets import SubsetsReport, _resolve_method, maximal_subsets
from repro.errors import ProgramError
from repro.faults import check_deadline
from repro.obs.clock import monotonic
from repro.summary.settings import ALL_SETTINGS, AnalysisSettings
from repro.workloads.base import WorkloadSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.session import Analyzer
    from repro.service.core import AnalysisService

#: The grid tasks: a full robustness report per cell (both detection
#: methods), one method's bare verdict (what Figure 8 times — unfold →
#: Algorithm 1 → a single cycle check), or the maximal robust subsets
#: (optionally with the complete per-subset verdict grid).
TASKS = ("analyze", "detect", "subsets")


@dataclass(frozen=True)
class GridSpec:
    """One sweep: ``task`` over every (workload, settings) cell.

    ``workloads`` accepts anything :meth:`Workload.resolve` does (built-in
    names, ``auction(N)``, files, :class:`Workload` objects …).  ``warm``
    cells run on the service's pooled sessions — repeated cells and
    repetitions hit warm block caches; ``warm=False`` builds a fresh
    session per repetition, which is how Figure 8 times the *cold* pipeline.
    ``repetitions`` times the task that many times per cell (the cell keeps
    every sample); ``include_verdicts`` adds the full subset verdict grid to
    ``task="subsets"`` cells (the false-negative sweep needs it).

    ``cell_jobs`` fans *independent cells* out over a worker pool: sessions
    are thread-safe (PR 4), so cells of different workloads — and different
    settings of one workload — execute concurrently while the result keeps
    its deterministic workloads-major order (property-tested identical to
    serial execution).  Leave it unset for timing grids: concurrent cells
    contend for cores and would skew per-cell wall-clock measurements.
    """

    workloads: tuple[WorkloadSource, ...]
    settings: tuple[AnalysisSettings, ...] = ALL_SETTINGS
    task: str = "analyze"
    method: str = "type-II"
    repetitions: int = 1
    warm: bool = True
    include_verdicts: bool = False
    cell_jobs: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "settings", tuple(self.settings))
        if not self.workloads:
            raise ProgramError("a grid needs at least one workload")
        if not self.settings:
            raise ProgramError("a grid needs at least one analysis setting")
        if self.task not in TASKS:
            raise ProgramError(
                f"unknown grid task {self.task!r}; expected one of {TASKS}"
            )
        if self.repetitions < 1:
            raise ProgramError(
                f"grid repetitions must be >= 1, got {self.repetitions}"
            )
        if self.cell_jobs is not None and self.cell_jobs < 1:
            raise ProgramError(
                f"grid cell_jobs must be >= 1, got {self.cell_jobs}"
            )


@dataclass(frozen=True)
class GridCell:
    """One (workload, settings) cell: its value plus per-repetition timing."""

    workload: str
    settings: str
    task: str
    value: dict[str, Any]
    seconds: tuple[float, ...]

    @property
    def mean_seconds(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "settings": self.settings,
            "task": self.task,
            "value": self.value,
            "seconds": list(self.seconds),
            "mean_seconds": self.mean_seconds,
        }


@dataclass(frozen=True)
class GridResult:
    """All cells of one :class:`GridSpec` run, in workloads-major order."""

    task: str
    cells: tuple[GridCell, ...]
    warm: bool = True
    repetitions: int = 1
    _index: dict[tuple[str, str], GridCell] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_index",
            {(cell.workload, cell.settings): cell for cell in self.cells},
        )

    def cell(self, workload: str, settings: AnalysisSettings | str) -> GridCell:
        """The cell of one (resolved workload name, settings) pair."""
        label = settings if isinstance(settings, str) else settings.label
        try:
            return self._index[(workload, label)]
        except KeyError:
            raise KeyError(f"no grid cell for ({workload!r}, {label!r})") from None

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "warm": self.warm,
            "repetitions": self.repetitions,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _run_task(session: "Analyzer", spec: GridSpec, settings: AnalysisSettings) -> dict:
    """One cell's value: the task's JSON-compatible result dict."""
    if spec.task == "analyze":
        return session.analyze(settings).to_dict()
    if spec.task == "detect":
        # The paper's detection pipeline, nothing more: unfold, Algorithm 1,
        # one cycle check.  (``analyze`` would also run the *other* method,
        # which must not pollute cold-cell timings — Figure 8's measurement.)
        graph = session.summary_graph(settings)
        return {
            "workload": session.workload.name,
            "settings": settings.label,
            "method": spec.method,
            "robust": _resolve_method(spec.method)(graph),
            "graph": graph.stats.to_dict(),
        }
    verdicts = session.robust_subsets(settings, spec.method)
    # One serialization path with /v1/subsets: the cell value *is* the
    # SubsetsReport payload (plus the optional verdict grid).
    value: dict[str, Any] = SubsetsReport(
        workload=session.workload.name,
        settings=settings,
        method=spec.method,
        maximal=maximal_subsets(verdicts),
    ).to_dict()
    if spec.include_verdicts:
        value["robust_subsets"] = [
            [sorted(subset), robust]
            for subset, robust in sorted(
                verdicts.items(), key=lambda item: (len(item[0]), sorted(item[0]))
            )
        ]
    return value


def _run_cell(
    spec: GridSpec,
    service: "AnalysisService",
    source: WorkloadSource,
    session: "Analyzer | None",
    settings: AnalysisSettings,
) -> GridCell:
    """Execute one (workload, settings) cell, timing each repetition.

    ``session`` is the workload's pooled warm session, resolved once per
    source by :func:`run_grid` (resolving inside the cell would re-unfold
    the workload per cell just to find its fingerprint); cold cells build
    a fresh session per repetition instead.
    """
    seconds: list[float] = []
    value: dict[str, Any] = {}
    name = ""
    for _ in range(spec.repetitions):
        # Cooperative deadline checkpoint: a grid of many cells is the one
        # request shape that can outlive any per-request deadline, so each
        # repetition re-checks before paying for another full task.  (Under
        # ``cell_jobs`` the pool threads carry no request context, so the
        # check is a no-op there — grids that opt into intra-request
        # parallelism own their runtime.)
        check_deadline("grid cell")
        cell_session = (
            session if session is not None else service.fresh_session(source)
        )
        started = monotonic()
        value = _run_task(cell_session, spec, settings)
        seconds.append(monotonic() - started)
        name = cell_session.workload.name
    return GridCell(
        workload=name,
        settings=settings.label,
        task=spec.task,
        value=value,
        seconds=tuple(seconds),
    )


def run_grid(spec: GridSpec, service: "AnalysisService") -> GridResult:
    """Execute a grid over the service's session pool.

    Warm cells share one pooled session per workload — the unfolding is
    shared across the settings columns and, because the pool outlives the
    grid, across *grids* (Figure 7 reuses every block Figure 6 computed).
    Cold cells (``warm=False``) pay the full pipeline per repetition, which
    is the measurement Figure 8 reports.

    With ``cell_jobs > 1`` the independent cells run on a thread pool
    (sessions and the pool are thread-safe); results are collected in
    submission order, so the cell sequence — and therefore the
    :meth:`GridResult.to_dict` payload modulo timings — is identical to a
    serial run.
    """
    sessions = [
        service.session(source) if spec.warm else None
        for source in spec.workloads
    ]
    pairs = [
        (source, session, settings)
        for source, session in zip(spec.workloads, sessions)
        for settings in spec.settings
    ]
    if spec.cell_jobs is not None and spec.cell_jobs > 1 and len(pairs) > 1:
        with ThreadPoolExecutor(max_workers=spec.cell_jobs) as pool:
            cells = tuple(
                pool.map(lambda pair: _run_cell(spec, service, *pair), pairs)
            )
    else:
        cells = tuple(
            _run_cell(spec, service, source, session, settings)
            for source, session, settings in pairs
        )
    return GridResult(
        task=spec.task,
        cells=cells,
        warm=spec.warm,
        repetitions=spec.repetitions,
    )
