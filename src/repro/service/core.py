"""The warm-session analysis service.

:class:`AnalysisService` owns an LRU pool of warm
:class:`~repro.analysis.Analyzer` sessions keyed by *workload fingerprint*
(:func:`repro.summary.fingerprint.workload_fingerprint`: schema content
hash + per-program unfold hashes + ``max_loop_iterations``), so any two
requests over the same analysis — whatever source string or object they
arrived as — share one session and therefore one set of unfoldings and
pairwise edge blocks.  Sessions are thread-safe (PR 4), so the pool can be
hammered by the :class:`~repro.service.http.ServiceHTTPServer`'s
concurrent request threads without double-computing a stage.

The service is also the dispatch point of the typed request layer:
:meth:`handle` takes ``(kind, mapping)``, validates via
:func:`~repro.service.requests.parse_request` and returns the JSON payload
— the single path behind both the CLI's ``--json`` output and every
``/v1/*`` endpoint.  :meth:`warm_from_cache_dir` /
:meth:`save_to_cache_dir` move the whole pool across processes through
fingerprint-named :meth:`~repro.analysis.Analyzer.save_cache` artifacts.
"""

from __future__ import annotations

import json
import threading
import warnings
import weakref
from collections import OrderedDict
from contextvars import ContextVar
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import os

from repro.analysis.session import CACHE_FORMAT, Analyzer
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.clock import monotonic
from repro.errors import DeadlineExceeded, ProgramError, ReproError
from repro.store.blockstore import DEFAULT_BUDGET_BYTES, BlockStore
from repro.faults import inject as _faults
from repro.faults.deadline import check_deadline, deadline_scope
from repro.schema import Schema
from repro.service.grid import GridResult, GridSpec, run_grid
from repro.service.requests import ServiceError, parse_request
from repro.summary.pairwise import BACKENDS
from repro.workloads.base import WorkloadSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.session import AnalysisMatrix
    from repro.detection.api import RobustnessReport
    from repro.detection.subsets import SubsetsReport
    from repro.churn.monitor import ChurnTrace
    from repro.service.requests import (
        AdviseRequest,
        AnalyzeRequest,
        BatchRequest,
        GraphRequest,
        GridRequest,
        SubsetsRequest,
        WatchRequest,
    )


#: ``Retry-After`` seconds sent with shed (HTTP 503) responses.
RETRY_AFTER_SECONDS = 1

#: Unexpected-exception strikes before a workload's session is evicted
#: (the poisoned-session circuit breaker's default threshold).
DEFAULT_POISON_THRESHOLD = 3

#: True while the current context is already inside :meth:`handle` —
#: nested dispatches (batch items) must not re-acquire the in-flight gate
#: (instant self-deadlock at ``max_inflight=1``) or shadow the outer
#: request's deadline with a fresh one.
_IN_REQUEST: ContextVar[bool] = ContextVar("repro_service_in_request", default=False)


#: Dispatch-level request counter, labeled by request kind (inline; the
#: rest of the service counters are *pulled* at scrape time by the
#: collector each service registers, so ``/v1/stats`` attributes stay
#: the single source of truth).
REQUESTS_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_service_requests_total",
    "Requests dispatched through AnalysisService.handle, by kind.",
    labelnames=("kind",),
)
SHED_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_service_shed_total",
    "Requests shed at the bounded in-flight gate (HTTP 503).",
)
DEADLINE_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_service_deadline_exceeded_total",
    "Requests that expired their cooperative deadline (HTTP 504).",
)
POOL_EVENTS = obs_metrics.REGISTRY.counter(
    "repro_service_pool_events_total",
    "Session pool events: hits, misses, spills, rehydrations and their "
    "failure modes.",
    labelnames=("event",),
)
FAULT_EVENTS = obs_metrics.REGISTRY.counter(
    "repro_service_fault_events_total",
    "Fault-path outcomes: process-pool recoveries, degraded sessions, "
    "poisoned-session evictions, spill failures.",
    labelnames=("event",),
)
SESSIONS_WARM = obs_metrics.REGISTRY.gauge(
    "repro_service_sessions_warm",
    "Analyzer sessions currently warm in the LRU pool.",
)
STORE_COUNTERS = obs_metrics.REGISTRY.counter(
    "repro_store_events_total",
    "Cross-session BlockStore events: shared hits, misses, publishes, "
    "evictions.",
    labelnames=("event",),
)
STORE_BYTES = obs_metrics.REGISTRY.gauge(
    "repro_store_bytes",
    "Bytes resident in the cross-session BlockStore.",
)
STORE_BLOCKS = obs_metrics.REGISTRY.gauge(
    "repro_store_blocks",
    "Unique blocks resident in the cross-session BlockStore.",
)


def _register_service_collector(service: "AnalysisService") -> None:
    """Feed the registry from a service's counters at every scrape.

    Holds the service weakly: when it is garbage collected the collector
    raises ``ReferenceError`` on its next run and the registry drops it.
    """
    ref = weakref.proxy(service)

    def _collect() -> None:
        with ref._lock:
            SHED_TOTAL.set(ref._shed)
            DEADLINE_TOTAL.set(ref._deadline_exceeded)
            POOL_EVENTS.set(ref._pool_hits, "hit")
            POOL_EVENTS.set(ref._pool_misses, "miss")
            POOL_EVENTS.set(ref._spills, "spill")
            POOL_EVENTS.set(ref._rehydrations, "rehydration")
            POOL_EVENTS.set(ref._rehydrate_failures, "rehydrate_failure")
            FAULT_EVENTS.set(ref._spill_failures, "spill_failure")
            FAULT_EVENTS.set(ref._poisoned_evictions, "poisoned_eviction")
            SESSIONS_WARM.set(len(ref._pool))
            pool = list(ref._pool.values())
            store = ref.block_store
        recoveries = 0
        degraded = 0
        for session in pool:
            info = session.fault_info()
            recoveries += info["recoveries"]
            degraded += 1 if info["degraded"] else 0
        FAULT_EVENTS.set(recoveries, "pool_recovery")
        FAULT_EVENTS.set(degraded, "degraded_session")
        if store is not None:
            info = store.info()
            STORE_COUNTERS.set(info["shared_hits"], "shared_hit")
            STORE_COUNTERS.set(info["misses"], "miss")
            STORE_COUNTERS.set(info["publishes"], "publish")
            STORE_COUNTERS.set(info["evictions"], "eviction")
            STORE_BYTES.set(info["bytes"])
            STORE_BLOCKS.set(info["unique_blocks"])

    obs_metrics.REGISTRY.register_collector(_collect)


class AnalysisService:
    """A long-running, many-request front over warm analyzer sessions.

    ::

        from repro.service import AnalysisService, AnalyzeRequest

        service = AnalysisService(jobs=4, backend="process")
        report = service.analyze(AnalyzeRequest(workload="auction(5)"))
        payload = service.handle("analyze", {"workload": "auction(5)"})

    ``capacity`` bounds the warm pool (least-recently-used sessions are
    evicted); ``jobs``/``backend`` configure every pooled session's block
    construction.  All entry points are thread-safe.

    Failure-mode knobs (see the README's "Operating under failure"):
    ``deadline_seconds`` puts a cooperative deadline on every top-level
    request (expiry answers the ``deadline_exceeded`` envelope, HTTP 504);
    ``max_inflight`` bounds concurrently executing requests — excess load
    is *shed* with ``overloaded`` (HTTP 503 + ``Retry-After``) instead of
    queueing unboundedly; ``poison_threshold`` strikes out a workload
    whose handler keeps raising unexpected exceptions and evicts its
    session rather than re-serving possibly corrupt warm state.
    """

    def __init__(
        self,
        *,
        capacity: int = 8,
        jobs: int | None = None,
        backend: str = "thread",
        max_loop_iterations: int = 2,
        cache_dir: str | Path | None = None,
        deadline_seconds: float | None = None,
        max_inflight: int | None = None,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
        block_budget: int = DEFAULT_BUDGET_BYTES,
        block_store: BlockStore | None = None,
    ):
        if capacity < 1:
            raise ProgramError(f"service capacity must be >= 1, got {capacity}")
        if block_budget < 0:
            raise ProgramError(
                f"service block_budget must be >= 0 bytes, got {block_budget}"
            )
        if backend not in BACKENDS:
            raise ProgramError(
                f"unknown block-construction backend {backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ProgramError(
                f"service deadline_seconds must be > 0, got {deadline_seconds}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ProgramError(
                f"service max_inflight must be >= 1, got {max_inflight}"
            )
        if poison_threshold < 1:
            raise ProgramError(
                f"service poison_threshold must be >= 1, got {poison_threshold}"
            )
        self.capacity = capacity
        self.jobs = jobs
        self.backend = backend
        self.max_loop_iterations = max_loop_iterations
        self.deadline_seconds = deadline_seconds
        self.max_inflight = max_inflight
        self.poison_threshold = poison_threshold
        #: The content-addressed cross-session block cache every session
        #: this service builds reads through and publishes into — pooled
        #: sessions, watch/advise forks and grid cells all share warm
        #: blocks through it (bit-identical verdicts by the content
        #: addressing contract; see :mod:`repro.store.blockstore`).
        #: ``block_budget=0`` disables sharing; an explicit ``block_store``
        #: overrides the budget (e.g. ``BlockStore(None)`` for unbounded).
        if block_store is not None:
            self.block_store: BlockStore | None = block_store
        elif block_budget > 0:
            self.block_store = BlockStore(block_budget)
        else:
            self.block_store = None
        self._inflight = (
            threading.Semaphore(max_inflight) if max_inflight is not None else None
        )
        #: When set, LRU-evicted sessions *spill* to
        #: ``cache_dir/<fingerprint>.json`` instead of dropping their warm
        #: state, and pool misses rehydrate from the same artifacts — the
        #: disk tier of the session pool.
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._pool: "OrderedDict[str, Analyzer]" = OrderedDict()
        #: Built-in source string → fingerprint, so repeat requests for
        #: ``"auction(5)"`` skip re-unfolding just to find their session.
        #: File paths and raw text are never memoized (files change on disk).
        self._fingerprint_memo: dict[str, str] = {}
        self._lock = threading.Lock()
        self._started_at = monotonic()
        self._requests = 0
        self._pool_hits = 0
        self._pool_misses = 0
        self._spills = 0
        self._rehydrations = 0
        self._watch_runs = 0
        self._watch_steps = 0
        self._watch_oracle_checks = 0
        self._watch_oracle_mismatches = 0
        self._shed = 0
        self._deadline_exceeded = 0
        self._rehydrate_failures = 0
        self._spill_failures = 0
        self._poisoned_evictions = 0
        #: Unexpected-exception strikes per workload source string (the
        #: poisoned-session circuit breaker's state; reset on success).
        self._poison_counts: dict[str, int] = {}
        self._quarantine_warned = False
        # Building a service turns the metrics layer on for the process
        # (library-only Analyzer use stays zero-cost without one) and
        # registers the scrape-time collector that mirrors this
        # service's counters into the registry.
        obs_metrics.enable()
        _register_service_collector(self)

    # -- session pool --------------------------------------------------------
    def fresh_session(
        self,
        source: WorkloadSource,
        *,
        schema: Schema | None = None,
        name: str | None = None,
    ) -> Analyzer:
        """A new, unpooled session with the service's configuration."""
        return Analyzer(
            source,
            schema=schema,
            name=name,
            max_loop_iterations=self.max_loop_iterations,
            jobs=self.jobs,
            backend=self.backend,
            block_store=self.block_store,
        )

    @staticmethod
    def _memo_key(source: WorkloadSource) -> str | None:
        """Sources safe to memoize by string: built-in workload names only."""
        if not isinstance(source, str) or "\n" in source or "/" in source:
            return None
        if Path(source).suffix or Path(source).is_file():
            return None
        return source

    def session(
        self,
        source: WorkloadSource,
        *,
        schema: Schema | None = None,
        name: str | None = None,
    ) -> Analyzer:
        """The pooled warm session for a workload, created on first use.

        The pool key is the workload fingerprint, so ``"auction(5)"``, a
        file describing the same programs, and an equal :class:`Workload`
        object all land on the *same* warm session.  Fetching an existing
        session marks it most-recently-used; inserting beyond ``capacity``
        evicts the least-recently-used one.
        """
        memo_key = self._memo_key(source) if schema is None else None
        with self._lock:
            fingerprint = (
                self._fingerprint_memo.get(memo_key) if memo_key else None
            )
            if fingerprint is not None:
                pooled = self._pool.get(fingerprint)
                if pooled is not None:
                    self._pool.move_to_end(fingerprint)
                    self._pool_hits += 1
                    return pooled
        # Resolve and fingerprint outside the lock: unfolding is cheap but
        # not free, and concurrent requests for *different* workloads must
        # not serialize on it.  Two racing threads may both build a
        # candidate; the pool insert below keeps the first and the loser's
        # candidate is simply dropped.
        candidate = self.fresh_session(source, schema=schema, name=name)
        fingerprint = candidate.fingerprint()
        with self._lock:
            if memo_key:
                self._fingerprint_memo[memo_key] = fingerprint
            pooled = self._pool.get(fingerprint)
            if pooled is not None:
                self._pool.move_to_end(fingerprint)
                self._pool_hits += 1
                return pooled
        # Confirmed miss: rehydrate from a spill artifact outside the lock
        # (disk reads must not stall other sessions), then re-check — a
        # racing thread may have pooled the fingerprint meanwhile.
        rehydrated = self._rehydrate(candidate, fingerprint)
        with self._lock:
            pooled = self._pool.get(fingerprint)
            if pooled is not None:
                self._pool.move_to_end(fingerprint)
                self._pool_hits += 1
                return pooled
            self._pool_misses += 1
            if rehydrated:
                self._rehydrations += 1
            evicted = self._install(fingerprint, candidate)
        self._spill(evicted)
        return candidate

    def _rehydrate(self, candidate: Analyzer, fingerprint: str) -> bool:
        """Seed a fresh candidate session from a spilled cache artifact.

        A missing artifact simply leaves the candidate cold; a *corrupt*
        one (truncated spill, bad JSON, stale format) is quarantined —
        renamed to ``<name>.corrupt`` and counted in
        ``rehydrate_failures`` — so the next miss recomputes instead of
        re-tripping over the same artifact.  Called outside the pool lock
        — rehydration reads disk.
        """
        if self.cache_dir is None:
            return False
        path = self.cache_dir / f"{fingerprint}.json"
        if not path.is_file():
            return False
        try:
            candidate.load_cache(path)
        except (ReproError, ValueError, OSError) as error:
            self._quarantine(path, error)
            return False
        return True

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move a corrupt cache artifact aside (best-effort) and count it.

        The rename keeps the evidence for operators while taking the
        artifact out of the rehydrate path (``*.json.corrupt`` never
        matches the cache glob); warns once per service, counts always.
        """
        target = path.with_name(path.name + ".corrupt")
        try:
            path.replace(target)
        except OSError:  # pragma: no cover - racing unlink/permissions
            pass
        with self._lock:
            self._rehydrate_failures += 1
            warn_first = not self._quarantine_warned
            self._quarantine_warned = True
        obs_log.warning(
            "cache.quarantined",
            artifact=path.name,
            renamed_to=target.name,
            error=f"{type(error).__name__}: {error}",
        )
        if warn_first:
            warnings.warn(
                f"quarantined corrupt session cache artifact {path.name} -> "
                f"{target.name}: {type(error).__name__}: {error} "
                "(further quarantines are counted in stats, not warned)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _install(
        self, fingerprint: str, session: Analyzer
    ) -> list[tuple[str, Analyzer]]:
        """Pool a session under its fingerprint (lock held by caller).

        Returns the LRU-evicted ``(fingerprint, session)`` pairs; the
        caller hands them to :meth:`_spill` *after releasing the pool
        lock* — serializing an evicted session acquires that session's
        own lock and writes disk, neither of which may stall every other
        ``session()`` call.
        """
        self._pool[fingerprint] = session
        self._pool.move_to_end(fingerprint)
        evicted: list[tuple[str, Analyzer]] = []
        while len(self._pool) > self.capacity:
            evicted.append(self._pool.popitem(last=False))
        return evicted

    def _spill(self, evicted: list[tuple[str, Analyzer]]) -> None:
        """Persist evicted sessions to the cache directory (best-effort).

        With a ``cache_dir``, eviction spills warm state to
        ``<fingerprint>.json`` instead of dropping it; a later miss on
        the same fingerprint rehydrates from the artifact with zero block
        recomputation.  Must be called without the pool lock held.

        Spills are atomic — written to a pid-suffixed temp file and
        renamed into place — so the worker processes of ``repro serve
        --workers N`` can share one cache directory without a reader ever
        seeing a half-written artifact (the ``.tmp`` suffix keeps temp
        files out of the ``*.json`` rehydrate glob).
        """
        if self.cache_dir is None or not evicted:
            return
        spilled = 0
        failures = 0
        for fingerprint, session in evicted:
            path = self.cache_dir / f"{fingerprint}.json"
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            try:
                if _faults.fire("disk.full") is not None:
                    raise OSError(28, "injected fault: disk full during spill")
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                session.save_cache(tmp)
                os.replace(tmp, path)
            except OSError:
                failures += 1
                tmp.unlink(missing_ok=True)
                continue
            if _faults.fire("spill.corrupt") is not None:
                # Injected spill corruption: truncate the artifact we just
                # wrote, the way a crash mid-write (or a full disk with
                # buffered IO) leaves it.  Rehydrate quarantines it later.
                raw = path.read_bytes()
                path.write_bytes(raw[: max(1, len(raw) // 2)])
            spilled += 1
        if spilled or failures:
            with self._lock:
                self._spills += spilled
                self._spill_failures += failures

    def sessions(self) -> dict[str, Analyzer]:
        """A snapshot of the warm pool (fingerprint → session)."""
        with self._lock:
            return dict(self._pool)

    def evict(self, fingerprint: str) -> bool:
        """Drop one pooled session; ``True`` when it existed."""
        with self._lock:
            return self._pool.pop(fingerprint, None) is not None

    # -- persistence ---------------------------------------------------------
    def warm_from_cache_dir(self, directory: str | Path) -> list[str]:
        """Seed the pool from fingerprint-named ``save_cache`` artifacts.

        Scans ``directory`` for ``*.json`` session caches (as written by
        :meth:`save_to_cache_dir` or ``repro cache save``), restores each
        into a session with zero block recomputation, and pools it under
        its recorded fingerprint.  Files that are valid JSON but not
        session caches, or that do not record a resolvable workload
        source, are skipped; *corrupt* artifacts (unreadable, bad JSON,
        failed staleness checks) are quarantined — renamed to
        ``<name>.corrupt`` and counted in ``rehydrate_failures`` — never
        silently swallowed.  Returns the workload names warmed.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise ProgramError(f"cache directory not found: {directory}")
        warmed: list[str] = []
        for path in sorted(directory.glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                self._quarantine(path, error)
                continue
            if not isinstance(data, dict) or data.get("format") != CACHE_FORMAT:
                continue
            source = data.get("source")
            if source is None:
                continue
            try:
                session = self.fresh_session(source)
                session.load_cache(path)
            except (ReproError, ValueError, OSError) as error:
                self._quarantine(path, error)
                continue
            fingerprint = data.get("fingerprint") or session.fingerprint()
            evicted: list[tuple[str, Analyzer]] = []
            with self._lock:
                if fingerprint not in self._pool:
                    evicted = self._install(fingerprint, session)
                    warmed.append(session.workload.name)
                memo_key = self._memo_key(source)
                if memo_key:
                    self._fingerprint_memo[memo_key] = fingerprint
            self._spill(evicted)
        return warmed

    def save_to_cache_dir(self, directory: str | Path) -> list[Path]:
        """Persist every pooled session to ``directory/<fingerprint>.json``.

        The inverse of :meth:`warm_from_cache_dir`: artifacts are keyed by
        workload fingerprint, so re-saving a pool overwrites exactly the
        artifacts of the workloads it still holds.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        for fingerprint, session in self.sessions().items():
            path = directory / f"{fingerprint}.json"
            # Same atomic write as _spill: concurrent serve workers share
            # one cache directory.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            try:
                session.save_cache(tmp)
                os.replace(tmp, path)
            except OSError:
                tmp.unlink(missing_ok=True)
                raise
            paths.append(path)
        return paths

    # -- typed entry points --------------------------------------------------
    def analyze(self, request: "AnalyzeRequest") -> "RobustnessReport | AnalysisMatrix":
        return request.execute(self)

    def subsets(self, request: "SubsetsRequest") -> "SubsetsReport":
        return request.execute(self)

    def graph(self, request: "GraphRequest"):
        return request.execute(self)

    def advise(self, request: "AdviseRequest"):
        """Minimal repair edit sets for a non-robust workload
        (a :class:`repro.repair.RepairReport`)."""
        return request.execute(self)

    def watch(self, request: "WatchRequest") -> "ChurnTrace":
        """Monitor a workload under seeded churn against a fork of its
        pooled session (a :class:`repro.churn.ChurnTrace`)."""
        return request.execute(self)

    def record_watch(self, trace: "ChurnTrace") -> None:
        """Fold one finished watch run into the service's counters."""
        with self._lock:
            self._watch_runs += 1
            self._watch_steps += len(trace.steps)
            self._watch_oracle_checks += trace.oracle_checks
            self._watch_oracle_mismatches += trace.oracle_mismatches

    def grid(self, spec: "GridSpec | GridRequest") -> GridResult:
        if not isinstance(spec, GridSpec):
            spec = spec.spec()
        return run_grid(spec, self)

    def batch(self, request: "BatchRequest") -> dict[str, Any]:
        return request.payload(self)

    # -- dispatch ------------------------------------------------------------
    def handle(self, kind: str, data: Mapping[str, Any] | Any) -> dict[str, Any]:
        """Validate and execute one request mapping; returns the JSON payload.

        The single dispatch path of the service: CLI ``--json`` commands and
        every ``POST /v1/<kind>`` route call this, so their outputs cannot
        diverge.  Raises :class:`ServiceError` for malformed requests *and*
        for analysis failures (unknown workloads, bad files …), carrying the
        CLI's exit-code-2 semantics either way.

        Top-level calls pass the failure-mode gauntlet: the bounded
        in-flight gate (shed with 503 + ``Retry-After`` at capacity), the
        per-request deadline (504 on expiry) and the poisoned-session
        circuit breaker.  Nested dispatches (batch items) inherit the
        outer request's gate slot and deadline instead of re-acquiring.
        """
        request = parse_request(kind, data)
        with self._lock:
            self._requests += 1
        if obs_metrics.enabled():
            REQUESTS_TOTAL.inc(1.0, kind)
        nested = _IN_REQUEST.get()
        if (
            not nested
            and self._inflight is not None
            and not self._inflight.acquire(blocking=False)
        ):
            with self._lock:
                self._shed += 1
            obs_log.warning(
                "request.shed", kind=kind, max_inflight=self.max_inflight
            )
            raise ServiceError(
                f"service is at capacity ({self.max_inflight} request(s) "
                "in flight); retry shortly",
                kind="overloaded",
                status=503,
                retry_after=RETRY_AFTER_SECONDS,
            )
        token = None if nested else _IN_REQUEST.set(True)
        try:
            with deadline_scope(None if nested else self.deadline_seconds):
                _faults.maybe_stall()
                _faults.maybe_crash()
                check_deadline(f"{kind} request")
                payload = request.payload(self)
        except DeadlineExceeded as error:
            with self._lock:
                self._deadline_exceeded += 1
            obs_log.warning(
                "request.deadline_exceeded", kind=kind, detail=str(error)
            )
            raise ServiceError(
                str(error), kind="deadline_exceeded", status=504
            ) from error
        except ServiceError:
            raise
        except (ReproError, ValueError, OSError) as error:
            raise ServiceError(str(error), kind="analysis_error") from error
        except Exception:
            # Unexpected failure: strike the workload's session (the
            # poisoned-session circuit breaker) and let the frontend's
            # catch-all answer the internal_error envelope.
            self._note_crash(getattr(request, "workload", None))
            raise
        finally:
            if token is not None:
                _IN_REQUEST.reset(token)
            if not nested and self._inflight is not None:
                self._inflight.release()
        self._note_ok(getattr(request, "workload", None))
        return payload

    # -- poisoned-session circuit breaker -------------------------------------
    def _note_crash(self, workload: Any) -> None:
        """Count one unexpected-exception strike against a workload.

        At ``poison_threshold`` strikes the workload's pooled session is
        evicted — dropped, not spilled: warm state a crashing handler may
        have touched must not be re-served or persisted.
        """
        if not isinstance(workload, str):
            return
        with self._lock:
            count = self._poison_counts.get(workload, 0) + 1
            if count < self.poison_threshold:
                self._poison_counts[workload] = count
                return
            self._poison_counts.pop(workload, None)
            self._poisoned_evictions += 1
            fingerprint = self._fingerprint_memo.pop(workload, None)
            if fingerprint is not None:
                self._pool.pop(fingerprint, None)

    def _note_ok(self, workload: Any) -> None:
        """A successful dispatch resets the workload's strike count."""
        if not isinstance(workload, str):
            return
        with self._lock:
            self._poison_counts.pop(workload, None)

    # -- diagnostics ---------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Pool and per-session cache statistics (the ``/v1/stats`` body)."""
        from repro import __version__  # deferred: repro/__init__ imports us

        _faults.maybe_crash()  # the GET-path injection point
        with self._lock:
            pool = list(self._pool.items())
            requests = self._requests
            hits = self._pool_hits
            misses = self._pool_misses
            spills = self._spills
            rehydrations = self._rehydrations
            watch = {
                "runs": self._watch_runs,
                "steps": self._watch_steps,
                "oracle_checks": self._watch_oracle_checks,
                "oracle_mismatches": self._watch_oracle_mismatches,
            }
            faults = {
                "shed": self._shed,
                "deadline_exceeded": self._deadline_exceeded,
                "spill_failures": self._spill_failures,
                "poisoned_evictions": self._poisoned_evictions,
            }
            rehydrate_failures = self._rehydrate_failures
        session_faults = [session.fault_info() for _, session in pool]
        faults["recoveries"] = sum(info["recoveries"] for info in session_faults)
        faults["degraded_sessions"] = sum(
            1 for info in session_faults if info["degraded"]
        )
        injector = _faults.current_injector()
        faults["injected"] = None if injector is None else injector.snapshot()
        payload: dict[str, Any] = {
            "version": __version__,
            "capacity": self.capacity,
            "jobs": self.jobs,
            "backend": self.backend,
            "max_loop_iterations": self.max_loop_iterations,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "deadline_seconds": self.deadline_seconds,
            "max_inflight": self.max_inflight,
            "requests": requests,
            "pool_hits": hits,
            "pool_misses": misses,
            "spills": spills,
            "rehydrations": rehydrations,
            "rehydrate_failures": rehydrate_failures,
            "watch": watch,
            "faults": faults,
            "store": (
                None if self.block_store is None else self.block_store.info()
            ),
            "sessions": [
                {
                    "fingerprint": fingerprint,
                    "workload": session.workload.name,
                    "programs": len(session.program_names),
                    "cache_info": session.cache_info(),
                }
                for fingerprint, session in pool
            ],
        }
        worker = obs_log.worker_index()
        if worker is not None:
            # Only under the pre-fork frontend (REPRO_WORKER_INDEX set):
            # stats are per-worker there, so say which worker answered.
            # Single-process payloads stay byte-identical.
            payload["worker"] = worker
        return payload

    def healthz(self) -> dict[str, Any]:
        """Cheap readiness probe (the ``/v1/healthz`` body).

        Unlike :meth:`stats` it touches no session — no ``cache_info``
        calls, no per-session locks — so it stays O(1) however large the
        pool or however busy the sessions.
        """
        from repro import __version__  # deferred: repro/__init__ imports us

        with self._lock:
            sessions_warm = len(self._pool)
            watch_runs = self._watch_runs
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(monotonic() - self._started_at, 3),
            "capacity": self.capacity,
            "sessions_warm": sessions_warm,
            "watch_runs": watch_runs,
        }

    def __repr__(self) -> str:
        return (
            f"AnalysisService(sessions={len(self._pool)}/{self.capacity}, "
            f"jobs={self.jobs}, backend={self.backend!r})"
        )
