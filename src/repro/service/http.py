"""The stdlib HTTP frontend: ``repro serve``.

A :class:`ThreadingHTTPServer` over one shared
:class:`~repro.service.AnalysisService` — no third-party web framework,
just ``http.server``.  Routes:

* ``POST /v1/analyze`` / ``/v1/subsets`` / ``/v1/graph`` / ``/v1/advise``
  / ``/v1/watch`` / ``/v1/grid`` / ``/v1/batch`` — a JSON request body
  dispatched through :meth:`AnalysisService.handle`; the response body is
  byte-identical to the corresponding CLI ``--json`` output (same
  dispatch, same serialization, same trailing newline);
* ``GET /v1/stats`` — pool and per-session ``cache_info()`` counters;
* ``GET /v1/healthz`` — cheap readiness probe (uptime, pool capacity,
  sessions warm) that touches no session;
* ``GET /v1/metrics`` — Prometheus text exposition of the
  :mod:`repro.obs` registry (per-worker under ``--workers N``; every
  line carries a ``worker`` label).

Every request runs under a :func:`repro.obs.trace_scope`: an inbound
``X-Repro-Trace-Id`` header is honored (else an id is minted), echoed on
the response, and attached to every log record the request causes — all
the way down into process-backend sweeps.  Completion emits one
structured access-log line (method, route, status, duration, shed and
deadline flags) through ``repro.obs.log``.

Malformed bodies, unknown routes and analysis failures answer with the
:class:`~repro.service.requests.ServiceError` envelope (HTTP 400/404) —
never a traceback; *unexpected* exceptions route through
:meth:`ServiceError.internal`, so even a handler crash answers a
well-formed 500 envelope (the fault tests inject one to prove it).
Deadline expiries answer 504, shed load answers 503 with a
``Retry-After`` header.  Request threads hammer warm sessions
concurrently, which the session-level locking (PR 4) makes safe.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs.clock import monotonic
from repro.obs.trace import current_trace_id, trace_scope
from repro.service.core import AnalysisService
from repro.service.requests import REQUEST_KINDS, ServiceError

#: URL prefix of every route.
API_PREFIX = "/v1/"

#: The trace-id header honored inbound and echoed on every response.
TRACE_HEADER = "X-Repro-Trace-Id"

#: HTTP-layer metrics (route label is the request kind, never a raw
#: path, to keep series cardinality bounded).
REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_http_request_seconds",
    "Wall-clock seconds from accept to response flush, per route.",
    labelnames=("method", "route"),
)
RESPONSES_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_http_responses_total",
    "HTTP responses sent, by method, route and status code.",
    labelnames=("method", "route", "status"),
)

#: How long a shutting-down server waits for in-flight requests to finish
#: before closing anyway (they still run on daemon threads, but their
#: responses are no longer guaranteed to flush).
DRAIN_SECONDS = 5.0


def _json_bytes(payload: dict[str, Any]) -> bytes:
    """The CLI's ``--json`` bytes: 2-space indent plus ``print``'s newline."""
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`.

    ``reuseport=True`` binds with ``SO_REUSEPORT``, so several worker
    processes can listen on the *same* address and the kernel distributes
    accepted connections among them — the substrate of ``repro serve
    --workers N`` (see :mod:`repro.service.workers`).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AnalysisService,
        *,
        quiet: bool = False,
        reuseport: bool = False,
    ):
        self.service = service
        self.quiet = quiet
        self.reuseport = reuseport
        if reuseport and not hasattr(socket, "SO_REUSEPORT"):
            raise OSError("SO_REUSEPORT is not supported on this platform")
        self._inflight_count = 0
        self._inflight_cv = threading.Condition()
        super().__init__(address, _ServiceRequestHandler)

    def server_bind(self) -> None:
        if self.reuseport:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def request_started(self) -> None:
        with self._inflight_cv:
            self._inflight_count += 1

    def request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight_count -= 1
            self._inflight_cv.notify_all()

    def drain(self, timeout: float = DRAIN_SECONDS) -> int:
        """Wait for in-flight requests to complete; returns how many were
        still running when the timeout expired (0 = fully drained)."""
        deadline = time.monotonic() + timeout
        with self._inflight_cv:
            while self._inflight_count > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cv.wait(remaining)
            return self._inflight_count


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for type checkers

    #: Per-request access-log state, initialized by do_POST/do_GET.
    _status = 0
    _route = "unknown"
    _started = 0.0
    _observed = True

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status = status
        # Record metrics and the access-log line *before* the body hits
        # the wire: the moment the client has the response, a follow-up
        # scrape or log assertion must already see this request (the
        # do_POST/do_GET finally covers responses that never flushed).
        self._finish_request()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = current_trace_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_body(status, _json_bytes(payload), "application/json", headers)

    def _respond_text(self, status: int, text: str) -> None:
        self._send_body(
            status,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _respond_error(self, error: ServiceError) -> None:
        headers = None
        if error.retry_after is not None:
            headers = {"Retry-After": str(error.retry_after)}
        self._respond(error.status, error.envelope, headers)

    def _request_body(self) -> Any:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ServiceError("request body required (send Content-Length)")
        try:
            raw = self.rfile.read(int(length))
        except ValueError:
            raise ServiceError(f"invalid Content-Length {length!r}") from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from None

    def _inbound_trace_id(self) -> str | None:
        header = self.headers.get(TRACE_HEADER)
        if header is None:
            return None
        header = header.strip()
        return header or None

    def _begin_request(self) -> None:
        self._started = monotonic()
        self._route = "unknown"
        self._status = 0
        self._observed = False

    def _finish_request(self) -> None:
        if self._observed:
            return
        self._observed = True
        method = self.command or "?"
        route = self._route
        duration = monotonic() - self._started
        status = self._status
        if obs_metrics.enabled():
            REQUEST_SECONDS.observe(duration, method, route)
            RESPONSES_TOTAL.inc(1.0, method, route, str(status))
        obs_log.info(
            "http.request",
            method=method,
            route=route,
            path=self.path,
            status=status,
            duration_ms=round(duration * 1000.0, 3),
            shed=status == 503,
            deadline=status == 504,
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.server.request_started()
        self._begin_request()
        with trace_scope(self._inbound_trace_id()):
            try:
                try:
                    if not self.path.startswith(API_PREFIX):
                        raise ServiceError(
                            f"unknown path {self.path!r}", kind="not_found", status=404
                        )
                    kind = self.path[len(API_PREFIX):]
                    if kind not in REQUEST_KINDS:
                        raise ServiceError(
                            f"unknown path {self.path!r}; POST one of "
                            f"{sorted(API_PREFIX + kind for kind in REQUEST_KINDS)}",
                            kind="not_found",
                            status=404,
                        )
                    self._route = kind
                    payload = self.server.service.handle(kind, self._request_body())
                except ServiceError as error:
                    self._respond_error(error)
                except Exception as error:
                    # A crash the service's own taxonomy did not absorb (a bug,
                    # or an injected handler.crash fault): answer the typed
                    # envelope, never a raw traceback or a dropped connection.
                    self._respond_error(ServiceError.internal(error))
                else:
                    self._respond(200, payload)
            finally:
                self._finish_request()
                self.server.request_finished()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.server.request_started()
        self._begin_request()
        with trace_scope(self._inbound_trace_id()):
            try:
                try:
                    if self.path == API_PREFIX + "stats":
                        self._route = "stats"
                        self._respond(200, self.server.service.stats())
                    elif self.path == API_PREFIX + "healthz":
                        self._route = "healthz"
                        self._respond(200, self.server.service.healthz())
                    elif self.path == API_PREFIX + "metrics":
                        self._route = "metrics"
                        self._respond_text(
                            200,
                            obs_metrics.render(
                                {"worker": str(obs_log.worker_index() or 0)}
                            ),
                        )
                    else:
                        raise ServiceError(
                            f"unknown path {self.path!r}; GET {API_PREFIX}stats, "
                            f"{API_PREFIX}healthz or {API_PREFIX}metrics",
                            kind="not_found",
                            status=404,
                        )
                except ServiceError as error:
                    self._respond_error(error)
                except Exception as error:
                    self._respond_error(ServiceError.internal(error))
            finally:
                self._finish_request()
                self.server.request_finished()

    def log_message(self, format: str, *args: Any) -> None:
        # http.server's own notices (one per send_response, plus
        # malformed-request warnings) used to be dropped when quiet;
        # they now flow through the structured logger at debug level,
        # so `--log-level debug` surfaces them and the default hides
        # them without discarding anything.
        obs_log.debug("http.server", message=format % args)


def make_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    quiet: bool = False,
    reuseport: bool = False,
) -> ServiceHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port (see ``server.server_address``) —
    what the tests and the benchmark use.  Call ``serve_forever()`` on the
    result, or hand it to a thread.  ``reuseport=True`` lets several
    processes share the address (the ``--workers`` fan-out).
    """
    return ServiceHTTPServer((host, port), service, quiet=quiet, reuseport=reuseport)


def run_server(server: ServiceHTTPServer, *, handle_sigterm: bool = False) -> None:
    """Serve a pre-bound server until interrupted, then close it — the one
    shutdown path shared by :func:`serve` and the ``repro serve`` command
    (which binds first so it can print the actual port).

    With ``handle_sigterm=True`` (the ``repro serve`` process), SIGTERM is
    translated into the same clean shutdown as Ctrl-C, so a supervisor's
    stop signal closes the listening socket — and lets the caller spill
    warm sessions — instead of killing mid-request.  The handler can only
    be installed from the main thread (a CPython restriction); elsewhere
    the flag is ignored, which is exactly right for test servers running
    on daemon threads.
    """
    previous = None
    installed = False
    if handle_sigterm and threading.current_thread() is threading.main_thread():
        def _terminate(signum: int, frame: Any) -> None:
            # Re-raising as KeyboardInterrupt unwinds serve_forever() on
            # this (main) thread; calling server.shutdown() here would
            # deadlock, since shutdown() waits for the serving loop we
            # interrupted.
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _terminate)
        installed = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)
        server.drain()
        server.server_close()


def serve(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    quiet: bool = False,
) -> None:
    """Run the HTTP frontend until interrupted (the ``repro serve`` loop)."""
    run_server(make_server(service, host, port, quiet=quiet))
