"""Block-index detection: Algorithm 2 straight off cached edge blocks.

The graph-based detectors (:mod:`repro.detection.typeii` /
:mod:`repro.detection.typei`) assemble a :class:`SummaryGraph` and rescan
its full edge list per call — dangerous-pair collection alone touches
every (incoming edge × counterflow edge) pair of every program.  On the
incremental paths (repair-candidate verification, subset queries) the
graph changes by a handful of blocks per call, so almost all of that work
repeats verbatim.

This module runs the same algorithms at the *block pair* granularity of
the :class:`~repro.summary.pairwise.EdgeBlockStore`:

* all edges of a block share their endpoint programs, so every dangerous
  pair contributed by the ordered block pair ``((A,P), (P,B))`` maps to
  the same SCC key — one representative per block pair is exact, and
  :meth:`EdgeBlockStore.block_summary` finds it in O(1) from per-block
  aggregates (memoized on the store, carried across
  :meth:`~repro.analysis.Analyzer.fork`, invalidated with the block);
* the program-level adjacency and the non-counterflow representatives
  come from the store's block flags, so no graph is ever assembled;
* witness walks connect block representatives with a BFS over that
  adjacency, picking each step's edge directly from the cached block.

Verdicts are property-tested identical to the graph-based detectors on
every built-in workload × settings × random subsets; witnesses may pick
different (equally valid) representative edges.
"""

from __future__ import annotations

from typing import Sequence

from repro.detection.reachability import ReachabilityIndex
from repro.detection.witness import CycleWitness, WitnessAnchor
from repro.summary.graph import SummaryEdge
from repro.summary.pairwise import EdgeBlockStore


def _connecting_edges(
    store: EdgeBlockStore,
    adjacency: dict[str, tuple[str, ...]],
    source: str,
    target: str,
) -> list[SummaryEdge]:
    """Edges realising a shortest program-level path ``source → target``,
    each step taken from the head of its cached block."""
    if source == target:
        return []
    predecessor: dict[str, str] = {source: source}
    frontier = [source]
    while frontier and target not in predecessor:
        next_frontier: list[str] = []
        for here in frontier:
            for there in adjacency[here]:
                if there not in predecessor:
                    predecessor[there] = here
                    next_frontier.append(there)
        frontier = next_frontier
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    return [store.block(a, b)[0] for a, b in zip(path, path[1:])]


def _anchors(
    store: EdgeBlockStore, edges: Sequence[SummaryEdge]
) -> tuple[WitnessAnchor, ...]:
    return tuple(
        WitnessAnchor(
            source_program=store.ltp(edge.source).origin,
            source_stmt=edge.source_stmt,
            source_occurrence=edge.source_pos,
            target_program=store.ltp(edge.target).origin,
            target_stmt=edge.target_stmt,
            target_occurrence=edge.target_pos,
        )
        for edge in edges
    )


def _reach_for(
    adjacency: dict[str, tuple[str, ...]],
    cache: "dict | None",
) -> ReachabilityIndex:
    """A reachability index for one adjacency, memoized across calls.

    Repair-candidate verification checks many workload variants whose
    program-level adjacency is frequently identical (an edit that removes
    counterflow edges rarely changes which programs conflict at all);
    keying on the frozen adjacency lets those candidates share one index.
    """
    if cache is None:
        return ReachabilityIndex(adjacency)
    key = tuple(adjacency.items())
    index = cache.get(key)
    if index is None:
        index = cache[key] = ReachabilityIndex(adjacency)
    return index


def find_type2_violation_blocks(
    store: EdgeBlockStore,
    names: Sequence[str],
    reach_cache: "dict | None" = None,
) -> CycleWitness | None:
    """Algorithm 2 over the cached blocks of ``names`` (no graph assembly).

    Equivalent to
    ``find_type2_violation(store.graph(names))`` in verdict; the witness
    walk may pick different representative edges of the same cycle.
    ``reach_cache`` (any dict) memoizes reachability indexes across calls
    with identical program-level adjacency.
    """
    names = list(names)
    store.ensure_blocks(names)
    adjacency, nc_blocks, cf_blocks = store.subset_index(names)
    if not cf_blocks or not nc_blocks:
        return None

    predecessors: dict[str, list[str]] = {name: [] for name in names}
    for source, targets in adjacency.items():
        for target in targets:
            predecessors[target].append(source)

    reach = _reach_for(adjacency, reach_cache)
    scc_of = {name: reach.scc(name) for name in names}
    block_summary = store.block_summary
    dangerous_by_scc: dict[tuple[int, int], tuple[SummaryEdge, SummaryEdge]] = {}
    for joint, exit_program in cf_blocks:
        e3 = block_summary(joint, exit_program).min_cf_source_pos_rep
        exit_scc = scc_of[exit_program]
        for entry_program in predecessors[joint]:
            key = (scc_of[entry_program], exit_scc)
            if key in dangerous_by_scc:
                continue
            summary = block_summary(entry_program, joint)
            if summary.cf_rep is not None:
                dangerous_by_scc[key] = (summary.cf_rep, e3)
            elif summary.trigger_rep is not None:
                dangerous_by_scc[key] = (summary.trigger_rep, e3)
            else:
                e2 = summary.max_target_pos_rep
                if e2 is not None and e3.source_pos < e2.target_pos:
                    dangerous_by_scc[key] = (e2, e3)
    if not dangerous_by_scc:
        return None

    nc_by_scc: dict[tuple[int, int], SummaryEdge] = {}
    for source, target in nc_blocks:
        key = (scc_of[target], scc_of[source])
        if key not in nc_by_scc:
            nc_by_scc[key] = block_summary(source, target).nc_rep

    for (entry_scc, exit_scc), (e2, e3) in dangerous_by_scc.items():
        for (after_e1_scc, before_e1_scc), e1 in nc_by_scc.items():
            if reach.scc_reaches(after_e1_scc, entry_scc) and reach.scc_reaches(
                exit_scc, before_e1_scc
            ):
                reason = (
                    "adjacent-counterflow" if e2.counterflow else "ordered-counterflow"
                )
                walk = tuple(
                    [e1]
                    + _connecting_edges(store, adjacency, e1.target, e2.source)
                    + [e2, e3]
                    + _connecting_edges(store, adjacency, e3.target, e1.source)
                )
                return CycleWitness(
                    edges=walk,
                    reason=reason,
                    highlighted=(e1, e2, e3),
                    anchors=_anchors(store, walk),
                )
    return None


def find_type1_violation_blocks(
    store: EdgeBlockStore,
    names: Sequence[str],
    reach_cache: "dict | None" = None,
) -> CycleWitness | None:
    """The type-I test over cached blocks: a counterflow block on a cycle."""
    names = list(names)
    store.ensure_blocks(names)
    adjacency, _, cf_blocks = store.subset_index(names)
    reach: ReachabilityIndex | None = None
    for source, target in cf_blocks:
        if reach is None:
            reach = _reach_for(adjacency, reach_cache)
        if reach.reaches(target, source):
            edge = store.block_summary(source, target).cf_rep
            walk = (
                edge,
                *_connecting_edges(store, adjacency, target, source),
            )
            return CycleWitness(
                edges=walk,
                reason="type-I",
                highlighted=(edge,),
                anchors=_anchors(store, walk),
            )
    return None


#: Block-index witness finder per detection-method name.
BLOCK_WITNESS_FINDERS = {
    "type-II": find_type2_violation_blocks,
    "type-I": find_type1_violation_blocks,
}
