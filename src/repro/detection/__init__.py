"""Robustness detection (Section 6.3).

``is_robust_type2`` implements Algorithm 2: a set of programs is reported
robust against MVRC iff its summary graph contains no *type-II cycle* — a
cycle with at least one non-counterflow edge and either two adjacent
counterflow edges or an ordered-counterflow pair (Theorem 6.4).  The test is
sound but incomplete (Proposition 6.5): ``True`` guarantees robustness.

``is_robust_type1`` is the baseline of Alomari & Fekete [3]: robustness is
attested iff no cycle contains a counterflow edge at all (a *type-I cycle*).
Every type-II cycle is a type-I cycle, so Algorithm 2 accepts strictly more
workloads (Section 7.2).
"""

from repro.detection.api import RobustnessReport, analyze
from repro.detection.blockindex import (
    BLOCK_WITNESS_FINDERS,
    find_type1_violation_blocks,
    find_type2_violation_blocks,
)
from repro.detection.subsets import (
    PairMatrix,
    SubsetsReport,
    maximal_robust_subsets,
    robust_subsets,
)
from repro.detection.typei import find_type1_violation, is_robust_type1
from repro.detection.typeii import find_type2_violation, is_robust_type2, is_robust_type2_naive
from repro.detection.witness import CycleWitness, WitnessAnchor, anchor_edges

__all__ = [
    "is_robust_type1",
    "is_robust_type2",
    "is_robust_type2_naive",
    "find_type1_violation",
    "find_type2_violation",
    "find_type1_violation_blocks",
    "find_type2_violation_blocks",
    "BLOCK_WITNESS_FINDERS",
    "CycleWitness",
    "WitnessAnchor",
    "anchor_edges",
    "robust_subsets",
    "PairMatrix",
    "maximal_robust_subsets",
    "SubsetsReport",
    "analyze",
    "RobustnessReport",
]
