"""The type-I robustness test of Alomari & Fekete [3].

A *type-I cycle* is any cycle in the summary graph containing at least one
counterflow edge.  The workload is attested robust iff no such cycle exists,
i.e. iff no counterflow edge closes back on itself: a counterflow edge
``P_i → P_j`` lies on a cycle exactly when ``P_i`` is reachable from ``P_j``
(reflexively — a counterflow self-loop is already a cycle between two
instantiations of the same program).
"""

from __future__ import annotations

from repro.detection.reachability import reachability_index
from repro.detection.witness import CycleWitness, anchor_edges, connecting_edges
from repro.summary.graph import SummaryGraph


def is_robust_type1(graph: SummaryGraph) -> bool:
    """True iff the summary graph contains no type-I cycle."""
    reach = reachability_index(graph)
    return not any(
        reach.reaches(edge.target, edge.source) for edge in graph.counterflow_edges
    )


def find_type1_violation(graph: SummaryGraph) -> CycleWitness | None:
    """A witness cycle containing a counterflow edge, or None if robust."""
    reach = reachability_index(graph)
    for edge in graph.counterflow_edges:
        if reach.reaches(edge.target, edge.source):
            walk = (edge, *connecting_edges(graph, edge.target, edge.source))
            return CycleWitness(
                edges=walk,
                reason="type-I",
                highlighted=(edge,),
                anchors=anchor_edges(graph, walk),
            )
    return None
