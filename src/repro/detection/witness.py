"""Cycle witnesses: concrete evidence for a non-robust verdict.

When the detection algorithms refuse to attest robustness they can produce
the offending closed walk through the summary graph, which is far more
actionable for a developer than a bare boolean.  A witness names the
distinguished edges (the non-counterflow edge and the counterflow edge(s)
that make the walk dangerous) and lists the full edge sequence.

Witness edges connect *LTP* nodes (``PlaceBid#2``), but the statements a
developer can edit live in the original BTPs.  Each edge therefore carries
a :class:`WitnessAnchor` resolving both endpoints to stable statement
anchors ``(program name, statement name, occurrence index)`` — the program
name is the BTP origin, not the unfolding — which is what
:mod:`repro.repair` edits and :func:`repro.viz.to_dot` highlighting point
at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, NamedTuple

import networkx as nx

from repro.summary.graph import SummaryEdge, SummaryGraph


class WitnessAnchor(NamedTuple):
    """Stable statement anchors for one witness edge.

    ``source_program``/``target_program`` are *BTP* names (the ``origin``
    of the unfolded LTP the edge touches); ``source_occurrence``/
    ``target_occurrence`` are the occurrence positions inside the LTP.
    Unlike the LTP names on the edge itself, these survive re-unfolding
    and name the statements a repair can actually edit.
    """

    source_program: str
    source_stmt: str
    source_occurrence: int
    target_program: str
    target_stmt: str
    target_occurrence: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "source_program": self.source_program,
            "source_stmt": self.source_stmt,
            "source_occurrence": self.source_occurrence,
            "target_program": self.target_program,
            "target_stmt": self.target_stmt,
            "target_occurrence": self.target_occurrence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WitnessAnchor":
        return cls(
            source_program=data["source_program"],
            source_stmt=data["source_stmt"],
            source_occurrence=int(data["source_occurrence"]),
            target_program=data["target_program"],
            target_stmt=data["target_stmt"],
            target_occurrence=int(data["target_occurrence"]),
        )

    def __str__(self) -> str:
        return (
            f"{self.source_program}.{self.source_stmt}@{self.source_occurrence}"
            f" -> {self.target_program}.{self.target_stmt}@{self.target_occurrence}"
        )


def anchor_edges(
    graph: SummaryGraph, edges: Iterable[SummaryEdge]
) -> tuple[WitnessAnchor, ...]:
    """Resolve witness edges to BTP-level statement anchors via the graph."""
    return tuple(
        WitnessAnchor(
            source_program=graph.program(edge.source).origin,
            source_stmt=edge.source_stmt,
            source_occurrence=edge.source_pos,
            target_program=graph.program(edge.target).origin,
            target_stmt=edge.target_stmt,
            target_occurrence=edge.target_pos,
        )
        for edge in edges
    )


@dataclass(frozen=True)
class CycleWitness:
    """A closed walk in the summary graph violating the robustness condition.

    ``edges`` is the full walk (each edge's target program is the next
    edge's source, and the last edge returns to the first edge's source).
    ``reason`` explains which condition of Theorem 6.4 the walk satisfies:
    ``'type-I'`` (a counterflow edge on a cycle — the [3] condition),
    ``'adjacent-counterflow'`` or ``'ordered-counterflow'``.
    ``anchors`` (when present) aligns 1:1 with ``edges`` and resolves each
    endpoint to a BTP-level statement anchor; it is derived data and does
    not participate in equality.
    """

    edges: tuple[SummaryEdge, ...]
    reason: str
    highlighted: tuple[SummaryEdge, ...] = field(default=())
    anchors: tuple[WitnessAnchor, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle witness needs at least one edge")
        for current, following in zip(self.edges, self.edges[1:] + self.edges[:1]):
            if current.target != following.source:
                raise ValueError(
                    f"witness is not a closed walk: {current} does not connect to {following}"
                )
        if self.anchors and len(self.anchors) != len(self.edges):
            raise ValueError(
                f"witness anchors must align with edges: "
                f"{len(self.anchors)} anchors for {len(self.edges)} edges"
            )

    @property
    def programs(self) -> tuple[str, ...]:
        """The programs visited, in order (may contain repeats)."""
        return tuple(edge.source for edge in self.edges)

    def anchored_edges(
        self,
    ) -> tuple[tuple[SummaryEdge, "WitnessAnchor | None"], ...]:
        """The walk as ``(edge, anchor)`` pairs (anchor ``None`` when the
        witness carries no anchors, e.g. one deserialized from a pre-anchor
        payload)."""
        if self.anchors:
            return tuple(zip(self.edges, self.anchors))
        return tuple((edge, None) for edge in self.edges)

    def statement_anchors(self) -> tuple[tuple[str, str, int], ...]:
        """The distinct offending statements, as ``(program, statement,
        occurrence)`` triples in walk order — the *source* side of every
        highlighted edge (the statement whose read/write admits the
        dependency), deduplicated."""
        result: dict[tuple[str, str, int], None] = {}
        for edge, anchor in self.anchored_edges():
            if anchor is None or (self.highlighted and edge not in self.highlighted):
                continue
            result.setdefault(
                (anchor.source_program, anchor.source_stmt, anchor.source_occurrence)
            )
        return tuple(result)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the witness."""
        lines = [f"dangerous cycle ({self.reason}):"]
        for edge, anchor in self.anchored_edges():
            marker = " *" if edge in self.highlighted else ""
            location = f"  ({anchor})" if anchor is not None else ""
            lines.append(f"  {edge} [{edge.kind}]{marker}{location}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; ``highlighted`` is stored as edge indices."""
        data = {
            "reason": self.reason,
            "edges": [edge.to_dict() for edge in self.edges],
            "highlighted": [
                index for index, edge in enumerate(self.edges) if edge in self.highlighted
            ],
        }
        if self.anchors:
            data["anchors"] = [anchor.to_dict() for anchor in self.anchors]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CycleWitness":
        edges = tuple(SummaryEdge.from_dict(item) for item in data["edges"])
        return cls(
            edges=edges,
            reason=data["reason"],
            highlighted=tuple(edges[index] for index in data.get("highlighted", ())),
            anchors=tuple(
                WitnessAnchor.from_dict(item) for item in data.get("anchors", ())
            ),
        )

    def __str__(self) -> str:
        return self.describe()


def connecting_edges(graph: SummaryGraph, source: str, target: str) -> list[SummaryEdge]:
    """Edges realising some shortest program-level path ``source → target``.

    Returns the empty list when ``source == target`` (the empty path); the
    caller is responsible for only asking about reachable pairs.
    """
    if source == target:
        return []
    # Plain BFS over the successor lists: witnesses are built on the hot
    # incremental/subset path, where a networkx graph per call is too dear.
    adjacency = graph.program_adjacency
    predecessor: dict[str, str] = {source: source}
    frontier = [source]
    while frontier and target not in predecessor:
        next_frontier: list[str] = []
        for here in frontier:
            for there in adjacency[here]:
                if there not in predecessor:
                    predecessor[there] = here
                    next_frontier.append(there)
        frontier = next_frontier
    if target not in predecessor:
        raise nx.NetworkXNoPath(f"no path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    # Not edges_between: that materializes the full (source, target) index,
    # and witnesses are built on freshly assembled graphs (incremental and
    # subset paths) whose index would be populated for this one lookup.  A
    # single targeted pass over the edge list stays proportional to |E|
    # without the per-pair allocations.
    wanted = {pair: None for pair in zip(path, path[1:])}
    for edge in graph.edges:
        pair = (edge.source, edge.target)
        if pair in wanted and wanted[pair] is None:
            wanted[pair] = edge
    return [wanted[pair] for pair in zip(path, path[1:])]
