"""Cycle witnesses: concrete evidence for a non-robust verdict.

When the detection algorithms refuse to attest robustness they can produce
the offending closed walk through the summary graph, which is far more
actionable for a developer than a bare boolean.  A witness names the
distinguished edges (the non-counterflow edge and the counterflow edge(s)
that make the walk dangerous) and lists the full edge sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import networkx as nx

from repro.summary.graph import SummaryEdge, SummaryGraph


@dataclass(frozen=True)
class CycleWitness:
    """A closed walk in the summary graph violating the robustness condition.

    ``edges`` is the full walk (each edge's target program is the next
    edge's source, and the last edge returns to the first edge's source).
    ``reason`` explains which condition of Theorem 6.4 the walk satisfies:
    ``'type-I'`` (a counterflow edge on a cycle — the [3] condition),
    ``'adjacent-counterflow'`` or ``'ordered-counterflow'``.
    """

    edges: tuple[SummaryEdge, ...]
    reason: str
    highlighted: tuple[SummaryEdge, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a cycle witness needs at least one edge")
        for current, following in zip(self.edges, self.edges[1:] + self.edges[:1]):
            if current.target != following.source:
                raise ValueError(
                    f"witness is not a closed walk: {current} does not connect to {following}"
                )

    @property
    def programs(self) -> tuple[str, ...]:
        """The programs visited, in order (may contain repeats)."""
        return tuple(edge.source for edge in self.edges)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the witness."""
        lines = [f"dangerous cycle ({self.reason}):"]
        for edge in self.edges:
            marker = " *" if edge in self.highlighted else ""
            lines.append(f"  {edge} [{edge.kind}]{marker}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; ``highlighted`` is stored as edge indices."""
        return {
            "reason": self.reason,
            "edges": [edge.to_dict() for edge in self.edges],
            "highlighted": [
                index for index, edge in enumerate(self.edges) if edge in self.highlighted
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CycleWitness":
        edges = tuple(SummaryEdge.from_dict(item) for item in data["edges"])
        return cls(
            edges=edges,
            reason=data["reason"],
            highlighted=tuple(edges[index] for index in data.get("highlighted", ())),
        )

    def __str__(self) -> str:
        return self.describe()


def connecting_edges(graph: SummaryGraph, source: str, target: str) -> list[SummaryEdge]:
    """Edges realising some shortest program-level path ``source → target``.

    Returns the empty list when ``source == target`` (the empty path); the
    caller is responsible for only asking about reachable pairs.
    """
    if source == target:
        return []
    # Plain BFS over the successor lists: witnesses are built on the hot
    # incremental/subset path, where a networkx graph per call is too dear.
    adjacency = graph.program_adjacency
    predecessor: dict[str, str] = {source: source}
    frontier = [source]
    while frontier and target not in predecessor:
        next_frontier: list[str] = []
        for here in frontier:
            for there in adjacency[here]:
                if there not in predecessor:
                    predecessor[there] = here
                    next_frontier.append(there)
        frontier = next_frontier
    if target not in predecessor:
        raise nx.NetworkXNoPath(f"no path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(predecessor[path[-1]])
    path.reverse()
    # Not edges_between: that materializes the full (source, target) index,
    # and witnesses are built on freshly assembled graphs (incremental and
    # subset paths) whose index would be populated for this one lookup.  A
    # single targeted pass over the edge list stays proportional to |E|
    # without the per-pair allocations.
    wanted = {pair: None for pair in zip(path, path[1:])}
    for edge in graph.edges:
        pair = (edge.source, edge.target)
        if pair in wanted and wanted[pair] is None:
            wanted[pair] = edge
    return [wanted[pair] for pair in zip(path, path[1:])]
