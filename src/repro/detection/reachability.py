"""Reachability helpers for the cycle tests.

Both detection algorithms only need program-level reachability in the
summary graph.  Reachability here is *reflexive*: a program reaches itself
via the empty path, matching the proof of Proposition 6.5 where the borrowed
edges of a cycle may coincide.  For efficiency we reason over strongly
connected components: within an SCC everything reaches everything, and
between SCCs reachability follows the condensation DAG.

The index is built directly over :attr:`SummaryGraph.program_adjacency`
with a Floyd–Warshall bitmask transitive closure: program counts are
small (tens), so ``n²`` big-int word operations beat a stack-managed
Tarjan pass by a wide margin in Python — and the detection algorithms
build one index per assembled (subset) graph or per repair candidate,
making this a hot path for subset enumeration and incremental
re-analysis.
"""

from __future__ import annotations

from repro.summary.graph import SummaryGraph


class ReachabilityIndex:
    """Precomputed reflexive reachability over a summary graph's programs.

    Accepts either a :class:`SummaryGraph` or a bare program-level
    adjacency mapping (successor tuples per node) — the latter is what the
    block-index detection path of :mod:`repro.detection.blockindex` builds
    straight from cached edge-block flags, without assembling a graph.
    """

    def __init__(self, graph: "SummaryGraph | dict[str, tuple[str, ...]]"):
        adjacency = (
            graph if isinstance(graph, dict) else graph.program_adjacency
        )
        names = list(adjacency)
        position = {name: index for index, name in enumerate(names)}
        count = len(names)
        # Reflexive transitive closure as one bitmask per node.
        closure = []
        for name in names:
            mask = 1 << position[name]
            for successor in adjacency[name]:
                mask |= 1 << position[successor]
            closure.append(mask)
        for via in range(count):
            bit = 1 << via
            via_mask = closure[via]
            for index in range(count):
                if closure[index] & bit:
                    closure[index] |= via_mask
        reverse = [0] * count
        for index in range(count):
            mask = closure[index]
            bit_here = 1 << index
            remaining = mask
            while remaining:
                lowest = remaining & -remaining
                reverse[lowest.bit_length() - 1] |= bit_here
                remaining ^= lowest
        # Mutual reachability partitions nodes into SCCs: the intersection
        # of forward and backward closures of a node is exactly its SCC,
        # so the mask doubles as the component key.
        self._scc_of: dict[str, int] = {}
        scc_ids: dict[int, int] = {}
        representatives: list[int] = []
        for index, name in enumerate(names):
            key = closure[index] & reverse[index]
            scc_id = scc_ids.get(key)
            if scc_id is None:
                scc_id = scc_ids[key] = len(representatives)
                representatives.append(index)
            self._scc_of[name] = scc_id
        self._scc_closures = [closure[rep] for rep in representatives]
        self._scc_bits = [1 << rep for rep in representatives]

    def scc(self, program: str) -> int:
        """The id of the strongly connected component containing a program."""
        return self._scc_of[program]

    def scc_reaches(self, source_scc: int, target_scc: int) -> bool:
        """Reflexive reachability between SCC ids."""
        return bool(self._scc_closures[source_scc] & self._scc_bits[target_scc])

    def reaches(self, source: str, target: str) -> bool:
        """True iff ``target`` is reachable from ``source`` (reflexively)."""
        return self.scc_reaches(self._scc_of[source], self._scc_of[target])


def reachability_index(graph: SummaryGraph) -> ReachabilityIndex:
    """The graph's reachability index, built once per graph instance.

    Both detection methods run over the same freshly assembled graph, so
    the index is memoized on the graph object itself (graphs are immutable
    after construction).
    """
    index = getattr(graph, "_reachability_index", None)
    if index is None:
        index = ReachabilityIndex(graph)
        graph._reachability_index = index
    return index
