"""Reachability helpers for the cycle tests.

Both detection algorithms only need program-level reachability in the
summary graph.  Reachability here is *reflexive*: a program reaches itself
via the empty path, matching the proof of Proposition 6.5 where the borrowed
edges of a cycle may coincide.  For efficiency we reason over strongly
connected components: within an SCC everything reaches everything, and
between SCCs reachability follows the condensation DAG.

The index is built directly over :attr:`SummaryGraph.program_adjacency`
with an iterative Tarjan SCC pass and bitmask transitive closures — the
detection algorithms run once per assembled (subset) graph, so this
construction is a hot path for subset enumeration and incremental
re-analysis.
"""

from __future__ import annotations

from repro.summary.graph import SummaryGraph


def _strongly_connected(adjacency: dict[str, tuple[str, ...]]) -> list[list[str]]:
    """Tarjan's algorithm, iteratively; components emerge sinks-first
    (reverse topological order of the condensation DAG)."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0
    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descended = False
            successors = adjacency[node]
            for offset in range(child_index, len(successors)):
                successor = successors[offset]
                if successor not in index_of:
                    work.append((node, offset + 1))
                    work.append((successor, 0))
                    descended = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if descended:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


class ReachabilityIndex:
    """Precomputed reflexive reachability over a summary graph's programs."""

    def __init__(self, graph: SummaryGraph):
        adjacency = graph.program_adjacency
        components = _strongly_connected(adjacency)
        self._scc_of: dict[str, int] = {}
        for index, component in enumerate(components):
            for node in component:
                self._scc_of[node] = index
        # Components arrive sinks-first, so every successor component's
        # closure is complete by the time its predecessors are processed.
        closures = [0] * len(components)
        for index, component in enumerate(components):
            mask = 1 << index
            for node in component:
                for successor in adjacency[node]:
                    successor_scc = self._scc_of[successor]
                    if successor_scc != index:
                        mask |= closures[successor_scc]
            closures[index] = mask
        self._closures = closures

    def scc(self, program: str) -> int:
        """The id of the strongly connected component containing a program."""
        return self._scc_of[program]

    def scc_reaches(self, source_scc: int, target_scc: int) -> bool:
        """Reflexive reachability between SCC ids."""
        return bool(self._closures[source_scc] >> target_scc & 1)

    def reaches(self, source: str, target: str) -> bool:
        """True iff ``target`` is reachable from ``source`` (reflexively)."""
        return self.scc_reaches(self._scc_of[source], self._scc_of[target])


def reachability_index(graph: SummaryGraph) -> ReachabilityIndex:
    """The graph's reachability index, built once per graph instance.

    Both detection methods run over the same freshly assembled graph, so
    the index is memoized on the graph object itself (graphs are immutable
    after construction).
    """
    index = getattr(graph, "_reachability_index", None)
    if index is None:
        index = ReachabilityIndex(graph)
        graph._reachability_index = index
    return index
