"""Reachability helpers for the cycle tests.

Both detection algorithms only need program-level reachability in the
summary graph.  Reachability here is *reflexive*: a program reaches itself
via the empty path, matching the proof of Proposition 6.5 where the borrowed
edges of a cycle may coincide.  For efficiency we reason over strongly
connected components: within an SCC everything reaches everything, and
between SCCs reachability follows the condensation DAG.
"""

from __future__ import annotations

from functools import cached_property

import networkx as nx

from repro.summary.graph import SummaryGraph


class ReachabilityIndex:
    """Precomputed reflexive reachability over a summary graph's programs."""

    def __init__(self, graph: SummaryGraph):
        self._program_graph = graph.program_graph

    @cached_property
    def _scc_of(self) -> dict[str, int]:
        mapping: dict[str, int] = {}
        for index, component in enumerate(nx.strongly_connected_components(self._program_graph)):
            for node in component:
                mapping[node] = index
        return mapping

    @cached_property
    def _scc_closure(self) -> dict[int, frozenset[int]]:
        condensation = nx.condensation(self._program_graph, scc=None)
        # nx.condensation assigns its own component ids; remap to ours.
        remap: dict[int, int] = {}
        for cond_id, data in condensation.nodes(data=True):
            members = data["members"]
            any_member = next(iter(members))
            remap[cond_id] = self._scc_of[any_member]
        closure: dict[int, set[int]] = {remap[node]: {remap[node]} for node in condensation}
        for cond_id in reversed(list(nx.topological_sort(condensation))):
            ours = remap[cond_id]
            for successor in condensation.successors(cond_id):
                closure[ours] |= closure[remap[successor]]
        return {scc: frozenset(reachable) for scc, reachable in closure.items()}

    def scc(self, program: str) -> int:
        """The id of the strongly connected component containing a program."""
        return self._scc_of[program]

    def scc_reaches(self, source_scc: int, target_scc: int) -> bool:
        """Reflexive reachability between SCC ids."""
        return target_scc in self._scc_closure[source_scc]

    def reaches(self, source: str, target: str) -> bool:
        """True iff ``target`` is reachable from ``source`` (reflexively)."""
        return self.scc_reaches(self._scc_of[source], self._scc_of[target])
