"""High-level robustness analysis API.

:func:`analyze` is the classic one-shot entry point: it takes a set of BTPs
plus their schema, runs both detection methods under the chosen settings,
and returns a :class:`RobustnessReport`.  It is a thin wrapper over the
staged, cache-aware :class:`repro.analysis.Analyzer` session — use the
session directly when analysing the same programs under several settings
or enumerating subsets, so unfolding and summary-graph construction are
paid only once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.btp.program import BTP
from repro.detection.witness import CycleWitness
from repro.schema import Schema
from repro.summary.graph import SummaryGraph, SummaryStats
from repro.summary.settings import AnalysisSettings


@dataclass(frozen=True)
class RobustnessReport:
    """The result of analysing a workload for robustness against MVRC.

    ``graph`` carries the full :class:`SummaryGraph` when the report was
    produced by an analysis run; it is ``None`` on reports deserialized via
    :meth:`from_dict` (the graph's LTP nodes are not serialized — only the
    ``stats`` are, which is all :meth:`describe` needs).
    """

    settings: AnalysisSettings
    graph: SummaryGraph | None
    robust: bool
    type1_robust: bool
    witness: CycleWitness | None
    type1_witness: CycleWitness | None
    workload: str | None = None
    stats: SummaryStats | None = None

    def __post_init__(self) -> None:
        if self.stats is None:
            if self.graph is None:
                raise ValueError("a report needs a summary graph or its stats")
            object.__setattr__(self, "stats", self.graph.stats)

    @property
    def program_count(self) -> int:
        """Number of unfolded LTP nodes in the summary graph."""
        return self.stats.nodes

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"settings: {self.settings.label}",
            self.stats.describe(),
            f"robust against MVRC (Algorithm 2, type-II cycles): {self.robust}",
            f"robust per Alomari & Fekete [3] (type-I cycles):   {self.type1_robust}",
        ]
        if self.witness is not None:
            lines.append(self.witness.describe())
        elif self.type1_witness is not None:
            lines.append(
                "note: a type-I cycle exists but no type-II cycle — the refinement of "
                "Theorem 4.2 is what attests robustness here:"
            )
            lines.append(self.type1_witness.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible dict; round-trips through :meth:`from_dict`."""
        return {
            "workload": self.workload,
            "settings": self.settings.label,
            "robust": self.robust,
            "type1_robust": self.type1_robust,
            "graph": self.stats.to_dict(),
            "witness": self.witness.to_dict() if self.witness else None,
            "type1_witness": self.type1_witness.to_dict() if self.type1_witness else None,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RobustnessReport":
        """Rebuild a report from :meth:`to_dict` output (``graph`` is ``None``)."""
        return cls(
            settings=AnalysisSettings.from_label(data["settings"]),
            graph=None,
            robust=bool(data["robust"]),
            type1_robust=bool(data["type1_robust"]),
            witness=CycleWitness.from_dict(data["witness"]) if data.get("witness") else None,
            type1_witness=(
                CycleWitness.from_dict(data["type1_witness"])
                if data.get("type1_witness")
                else None
            ),
            workload=data.get("workload"),
            stats=SummaryStats.from_dict(data["graph"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "RobustnessReport":
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        return self.describe()


def analyze(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    max_loop_iterations: int = 2,
) -> RobustnessReport:
    """Run the full pipeline: validate, unfold, build ``SuG``, detect cycles."""
    from repro.analysis.session import Analyzer  # deferred: avoids an import cycle

    session = Analyzer(programs, schema=schema, max_loop_iterations=max_loop_iterations)
    return session.analyze(settings)
