"""High-level robustness analysis API.

:func:`analyze` is the main entry point a downstream user calls: it takes a
set of BTPs plus their schema, runs both detection methods under the chosen
settings, and returns a :class:`RobustnessReport` bundling the verdicts,
summary-graph statistics, and a dangerous-cycle witness when one exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.typei import find_type1_violation
from repro.detection.typeii import find_type2_violation
from repro.detection.witness import CycleWitness
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.settings import AnalysisSettings


@dataclass(frozen=True)
class RobustnessReport:
    """The result of analysing a workload for robustness against MVRC."""

    settings: AnalysisSettings
    graph: SummaryGraph
    robust: bool
    type1_robust: bool
    witness: CycleWitness | None
    type1_witness: CycleWitness | None

    @property
    def program_count(self) -> int:
        """Number of unfolded LTP nodes in the summary graph."""
        return len(self.graph)

    def describe(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"settings: {self.settings.label}",
            self.graph.describe(),
            f"robust against MVRC (Algorithm 2, type-II cycles): {self.robust}",
            f"robust per Alomari & Fekete [3] (type-I cycles):   {self.type1_robust}",
        ]
        if self.witness is not None:
            lines.append(self.witness.describe())
        elif self.type1_witness is not None:
            lines.append(
                "note: a type-I cycle exists but no type-II cycle — the refinement of "
                "Theorem 4.2 is what attests robustness here:"
            )
            lines.append(self.type1_witness.describe())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def analyze(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    max_loop_iterations: int = 2,
) -> RobustnessReport:
    """Run the full pipeline: validate, unfold, build ``SuG``, detect cycles."""
    for program in programs:
        program.validate_against(schema)
    ltps = unfold(programs, max_loop_iterations)
    graph = construct_summary_graph(ltps, schema, settings)
    witness = find_type2_violation(graph)
    type1_witness = find_type1_violation(graph)
    return RobustnessReport(
        settings=settings,
        graph=graph,
        robust=witness is None,
        type1_robust=type1_witness is None,
        witness=witness,
        type1_witness=type1_witness,
    )
