"""Algorithm 2: robustness via the absence of type-II cycles.

A type-II cycle (Theorem 6.4) contains at least one non-counterflow edge
and either two *adjacent counterflow* edges or an *ordered-counterflow*
pair: a non-counterflow edge ``(P3,q3,·,q4,P4)`` immediately followed by a
counterflow edge ``(P4,q'4,·,q5,P5)`` where ``q'4 <_{P4} q4`` in program
order or ``q3`` instantiates to an R- or PR-operation (``type(q3) ∈
{key sel, pred sel, pred upd, pred del}``).

:func:`is_robust_type2_naive` transcribes the paper's triple loop verbatim;
:func:`is_robust_type2` is an equivalent formulation that first collects the
*dangerous adjacent pairs* ``(e2, e3)`` around each program and then asks,
per strongly-connected-component pair, whether some non-counterflow edge
``e1`` closes the walk ``P1 →e1 P2 ⇝ P3 →e2 P4 →e3 P5 ⇝ P1``.  Both return
``True`` only when the workload is robust against MVRC (Proposition 6.5).
"""

from __future__ import annotations

from repro.btp.statement import READ_TRIGGER_TYPES
from repro.detection.reachability import reachability_index
from repro.detection.witness import CycleWitness, anchor_edges, connecting_edges
from repro.summary.graph import SummaryEdge, SummaryGraph


def _read_trigger_sources(graph: SummaryGraph) -> frozenset[tuple[str, str]]:
    """The ``(program, statement)`` pairs whose statement is an R- or
    PR-operation, memoized on the graph (graphs are immutable after
    construction, and Algorithm 2 tests the condition once per adjacent
    edge pair — far more often than there are distinct statements)."""
    triggers = getattr(graph, "_read_trigger_source_set", None)
    if triggers is None:
        triggers = frozenset(
            (program.name, name)
            for program in graph.programs
            for name, stmt in program.statements_by_name.items()
            if stmt.stype in READ_TRIGGER_TYPES
        )
        graph._read_trigger_source_set = triggers
    return triggers


def _ordered_pair_condition(graph: SummaryGraph, e2: SummaryEdge, e3: SummaryEdge) -> bool:
    """The parenthesised condition of Algorithm 2 for adjacent ``e2``, ``e3``.

    ``e2`` enters program ``P4`` at occurrence ``q4`` and the counterflow
    edge ``e3`` leaves it at occurrence ``q'4``; the pair is dangerous when
    ``e2`` is itself counterflow, when ``q'4`` precedes ``q4`` in ``P4``,
    or when ``e2``'s source statement reads (R- or PR-operation).
    """
    if e2.counterflow:
        return True
    if e3.source_pos < e2.target_pos:
        return True
    return (e2.source, e2.source_stmt) in _read_trigger_sources(graph)


def is_robust_type2_naive(graph: SummaryGraph) -> bool:
    """Algorithm 2 as written in the paper (triple loop over edges)."""
    reach = reachability_index(graph)
    counterflow_by_source = graph.counterflow_by_source
    for e1 in graph.non_counterflow_edges:
        for e2 in graph.edges:
            if not reach.reaches(e1.target, e2.source):
                continue
            for e3 in counterflow_by_source[e2.target]:
                if not reach.reaches(e3.target, e1.source):
                    continue
                if _ordered_pair_condition(graph, e2, e3):
                    return False
    return True


def _dangerous_pairs(graph: SummaryGraph) -> list[tuple[SummaryEdge, SummaryEdge]]:
    """All adjacent pairs ``(e2, e3)`` satisfying the Algorithm 2 condition.

    The incoming-edge grouping is :attr:`SummaryGraph.edges_by_target`,
    cached on the immutable graph (like ``_read_trigger_sources``), so
    repeated Algorithm 2 calls on the same graph stop rescanning all edges.
    """
    edges_by_target = graph.edges_by_target
    pairs = []
    for e3 in graph.counterflow_edges:
        for e2 in edges_by_target[e3.source]:
            if _ordered_pair_condition(graph, e2, e3):
                pairs.append((e2, e3))
    return pairs


def find_type2_violation(graph: SummaryGraph) -> CycleWitness | None:
    """A type-II cycle witness, or None when the workload is robust.

    Equivalent to the paper's Algorithm 2 (validated against
    :func:`is_robust_type2_naive` in the test suite) but quadratic-ish in
    practice: dangerous pairs and non-counterflow edges are reduced to
    SCC pairs before the reachability product is scanned.
    """
    if not graph.counterflow_edges or not graph.non_counterflow_edges:
        return None
    reach = reachability_index(graph)

    dangerous_by_scc: dict[tuple[int, int], tuple[SummaryEdge, SummaryEdge]] = {}
    for e2, e3 in _dangerous_pairs(graph):
        key = (reach.scc(e2.source), reach.scc(e3.target))
        dangerous_by_scc.setdefault(key, (e2, e3))
    if not dangerous_by_scc:
        return None

    nc_by_scc: dict[tuple[int, int], SummaryEdge] = {}
    for e1 in graph.non_counterflow_edges:
        key = (reach.scc(e1.target), reach.scc(e1.source))
        nc_by_scc.setdefault(key, e1)

    for (entry_scc, exit_scc), (e2, e3) in dangerous_by_scc.items():
        for (after_e1_scc, before_e1_scc), e1 in nc_by_scc.items():
            if reach.scc_reaches(after_e1_scc, entry_scc) and reach.scc_reaches(
                exit_scc, before_e1_scc
            ):
                return _build_witness(graph, e1, e2, e3)
    return None


def _build_witness(
    graph: SummaryGraph, e1: SummaryEdge, e2: SummaryEdge, e3: SummaryEdge
) -> CycleWitness:
    """Assemble the closed walk ``P1 →e1 P2 ⇝ P3 →e2 P4 →e3 P5 ⇝ P1``."""
    reason = "adjacent-counterflow" if e2.counterflow else "ordered-counterflow"
    walk = tuple(
        [e1]
        + connecting_edges(graph, e1.target, e2.source)
        + [e2, e3]
        + connecting_edges(graph, e3.target, e1.source)
    )
    return CycleWitness(
        edges=walk,
        reason=reason,
        highlighted=(e1, e2, e3),
        anchors=anchor_edges(graph, walk),
    )


def is_robust_type2(graph: SummaryGraph) -> bool:
    """True iff the summary graph contains no type-II cycle (Algorithm 2)."""
    return find_type2_violation(graph) is None
