"""Robust-subset enumeration (the experiment grid of Figures 6 and 7).

Robustness is anti-monotone (Proposition 5.2): every subset of a robust set
of programs is robust.  The enumeration exploits this by walking subsets in
decreasing size and skipping subsets of already-attested robust sets; the
*maximal* robust subsets are those without a robust strict superset.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.typei import is_robust_type1
from repro.detection.typeii import is_robust_type2
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.settings import AnalysisSettings

Method = Callable[[SummaryGraph], bool]

#: The two detection methods by name.
METHODS: dict[str, Method] = {
    "type-II": is_robust_type2,
    "type-I": is_robust_type1,
}


def _resolve_method(method: str | Method) -> Method:
    if callable(method):
        return method
    try:
        return METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(METHODS)}"
        ) from None


def is_robust(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
) -> bool:
    """Unfold, build the summary graph, and run the chosen detection method."""
    ltps = unfold(programs, max_loop_iterations)
    graph = construct_summary_graph(ltps, schema, settings)
    return _resolve_method(method)(graph)


def enumerate_robust_subsets(
    names: Iterable[str],
    check_combo: Callable[[tuple[str, ...]], bool],
) -> dict[frozenset[str], bool]:
    """The anti-monotone enumeration shared by the one-shot path and the
    :class:`repro.analysis.Analyzer` session.

    Walks subsets of ``names`` in decreasing size; subsets of attested-robust
    sets inherit robustness without calling ``check_combo`` (Proposition
    5.2).  ``check_combo`` decides robustness for one candidate combination
    — by running the full pipeline (one-shot path) or by restricting a
    cached summary graph (session path).
    """
    ordered = sorted(names)
    verdicts: dict[frozenset[str], bool] = {}
    for size in range(len(ordered), 0, -1):
        for combo in itertools.combinations(ordered, size):
            subset = frozenset(combo)
            if any(
                subset < other and robust
                for other, robust in verdicts.items()
                if robust
            ):
                verdicts[subset] = True
                continue
            verdicts[subset] = check_combo(combo)
    return verdicts


def maximal_subsets(
    verdicts: dict[frozenset[str], bool]
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets of a verdict grid, largest first."""
    robust = [subset for subset, ok in verdicts.items() if ok]
    maximal = [
        subset
        for subset in robust
        if not any(subset < other for other in robust)
    ]
    return tuple(sorted(maximal, key=lambda s: (-len(s), sorted(s))))


def robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
) -> dict[frozenset[str], bool]:
    """Robustness verdict for every non-empty subset of the programs.

    Subsets are keyed by the frozenset of program (BTP) names.  Every tested
    subset pays the full pipeline (unfold + Algorithm 1); prefer
    :meth:`repro.analysis.Analyzer.robust_subsets`, which builds the summary
    graph once and restricts it per subset.
    """
    check = _resolve_method(method)
    by_name = {program.name: program for program in programs}

    def check_combo(combo: tuple[str, ...]) -> bool:
        graph = construct_summary_graph(
            unfold([by_name[name] for name in combo]), schema, settings
        )
        return check(graph)

    return enumerate_robust_subsets(by_name, check_combo)


def maximal_robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets, largest first (as listed in Figures 6/7)."""
    return maximal_subsets(robust_subsets(programs, schema, settings, method))


def format_subsets(subsets: Iterable[frozenset[str]], abbreviations: dict[str, str] | None = None) -> str:
    """Render subsets the way the paper does, e.g. ``{Am, DC, TS}, {Bal, DC}``."""
    rendered = []
    for subset in subsets:
        names = sorted(abbreviations.get(name, name) if abbreviations else name for name in subset)
        rendered.append("{" + ", ".join(names) + "}")
    return ", ".join(rendered)
