"""Robust-subset enumeration (the experiment grid of Figures 6 and 7).

Robustness is anti-monotone (Proposition 5.2): every subset of a robust set
of programs is robust.  The enumeration exploits this by walking subsets in
decreasing size and skipping subsets of already-attested robust sets; the
*maximal* robust subsets are those without a robust strict superset.

On top of the attested-superset pruning, :class:`PairMatrix` adds the
contrapositive fast path: both built-in detection methods decide robustness
by the *absence* of a bad cycle, so a violation found in ``SuG(𝒫')``
persists in every superset's graph (``SuG(𝒫')`` is an induced subgraph of
``SuG(𝒫'')`` for ``𝒫' ⊆ 𝒫''``).  Once a 1- or 2-program core is known
non-robust, every candidate containing it is non-robust without assembling
a summary graph; per-pair interference flags derived from the cached edge
blocks (any non-counterflow edge / any counterflow edge / any program with
both an incoming edge and an outgoing counterflow edge) answer many of the
remaining candidates as robust, again without graph assembly.  Only the
*ambiguous* subsets pay for assembly plus Algorithm 2.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.typei import is_robust_type1
from repro.detection.typeii import is_robust_type2
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.pairwise import EdgeBlockStore
from repro.summary.settings import AnalysisSettings

Method = Callable[[SummaryGraph], bool]

#: The two detection methods by name.
METHODS: dict[str, Method] = {
    "type-II": is_robust_type2,
    "type-I": is_robust_type1,
}


def _resolve_method(method: str | Method) -> Method:
    if callable(method):
        return method
    try:
        return METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(METHODS)}"
        ) from None


def is_robust(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
    backend: str = "thread",
) -> bool:
    """Unfold, build the summary graph, and run the chosen detection method."""
    ltps = unfold(programs, max_loop_iterations)
    graph = construct_summary_graph(ltps, schema, settings, jobs=jobs, backend=backend)
    return _resolve_method(method)(graph)


class PairMatrix:
    """Per-pair interference summary over an :class:`EdgeBlockStore`.

    ``members`` maps each program (BTP) name to the LTP names of its
    unfoldings; ``check`` is one of the two built-in detection methods.
    :meth:`verdict` decides one candidate combination with three fast
    paths before falling back to graph assembly:

    1. **non-robust cores** — a candidate containing a known non-robust
       1-/2-program core is non-robust (contrapositive of Proposition 5.2;
       exact because both methods detect a bad cycle that persists in every
       supergraph);
    2. **interference flags** — from the cached blocks' per-pair
       ``(has_non_counterflow, has_counterflow)`` flags: no counterflow
       edge at all ⇒ robust (both methods); no non-counterflow edge ⇒
       robust (type-II needs one); no program with both an incoming edge
       and an outgoing counterflow edge ⇒ robust (no dangerous adjacent
       pair can form, and no counterflow edge can close a cycle);
    3. **2-subset memo** — 1- and 2-program verdicts are answered from the
       matrix directly once computed.

    The matrix *materializes* (computes all 1-/2-program verdicts) the
    first time a candidate fails a real check: from then on, the
    exponentially many supersets of non-robust pairs short-circuit.  On a
    workload whose full set is robust nothing is materialized — the
    attested-superset pruning already collapses that case.
    """

    def __init__(
        self,
        store: EdgeBlockStore,
        members: Mapping[str, Sequence[str]],
        check: Method,
        full_graph: SummaryGraph | None = None,
    ):
        self._store = store
        self._members = {name: tuple(ltps) for name, ltps in members.items()}
        self._check = check
        self._needs_non_counterflow = check is is_robust_type2
        self._full_graph = full_graph
        self._universe = frozenset(self._members)
        self._pair_verdicts: dict[frozenset[str], bool] = {}
        self._nonrobust_cores: list[frozenset[str]] = []
        self._materialized = False

    @classmethod
    def for_method(
        cls,
        store: EdgeBlockStore,
        members: Mapping[str, Sequence[str]],
        check: Method,
        full_graph: SummaryGraph | None = None,
    ) -> "PairMatrix | None":
        """A matrix when ``check`` is a known cycle-absence method, else
        ``None`` (arbitrary callables get no anti-monotonicity guarantee)."""
        if check is is_robust_type2 or check is is_robust_type1:
            return cls(store, members, check, full_graph)
        return None

    # -- internals ----------------------------------------------------------
    def _ltp_names(self, subset: Iterable[str]) -> list[str]:
        return [ltp for name in sorted(subset) for ltp in self._members[name]]

    def _graph(self, subset: frozenset[str], ltp_names: Sequence[str]) -> SummaryGraph:
        if subset == self._universe and self._full_graph is not None:
            return self._full_graph
        return self._store.graph(ltp_names)

    def _screen(self, ltp_names: Sequence[str]) -> bool:
        """True when the flags alone prove the subset robust."""
        if not ltp_names:
            return True
        self._store.ensure_blocks(ltp_names)
        flags = self._store.block_flags
        any_counterflow = False
        any_non_counterflow = False
        has_incoming: set[str] = set()
        has_counterflow_out: set[str] = set()
        for source in ltp_names:
            for target in ltp_names:
                non_counterflow, counterflow = flags(source, target)
                if counterflow:
                    any_counterflow = True
                    has_counterflow_out.add(source)
                if non_counterflow:
                    any_non_counterflow = True
                if counterflow or non_counterflow:
                    has_incoming.add(target)
        if not any_counterflow:
            return True
        if self._needs_non_counterflow and not any_non_counterflow:
            return True
        return not (has_incoming & has_counterflow_out)

    def pair_verdict(self, subset: frozenset[str]) -> bool:
        """The verdict of a 1- or 2-program subset, memoized."""
        cached = self._pair_verdicts.get(subset)
        if cached is not None:
            return cached
        ltp_names = self._ltp_names(subset)
        robust = self._screen(ltp_names) or self._check(
            self._graph(subset, ltp_names)
        )
        self._pair_verdicts[subset] = robust
        if not robust:
            self._nonrobust_cores.append(subset)
        return robust

    def materialize(self) -> None:
        """Compute every 1- and 2-program verdict (idempotent)."""
        if self._materialized:
            return
        self._materialized = True
        names = sorted(self._universe)
        for name in names:
            self.pair_verdict(frozenset((name,)))
        for left, right in itertools.combinations(names, 2):
            self.pair_verdict(frozenset((left, right)))

    def _contains_nonrobust_core(self, subset: frozenset[str]) -> bool:
        return any(core <= subset for core in self._nonrobust_cores)

    # -- the decision procedure ---------------------------------------------
    def verdict(self, combo: Iterable[str]) -> bool:
        """The robustness verdict of one candidate combination."""
        subset = frozenset(combo)
        if len(subset) <= 2:
            return self.pair_verdict(subset)
        if self._contains_nonrobust_core(subset):
            return False
        ltp_names = self._ltp_names(subset)
        # The full set is checked exactly once (and its graph is usually
        # prebuilt), so the flag screen would be pure overhead there.
        if subset != self._universe and self._screen(ltp_names):
            return True
        robust = self._check(self._graph(subset, ltp_names))
        if not robust and not self._materialized:
            # The grid has entered non-robust territory: pay the cheap
            # pair sweep once so the remaining supersets short-circuit.
            self.materialize()
        return robust


def enumerate_robust_subsets(
    names: Iterable[str],
    check_combo: Callable[[tuple[str, ...]], bool],
) -> dict[frozenset[str], bool]:
    """The anti-monotone enumeration shared by the one-shot path and the
    :class:`repro.analysis.Analyzer` session.

    Walks subsets of ``names`` in decreasing size; subsets of attested-robust
    sets inherit robustness without calling ``check_combo`` (Proposition
    5.2).  ``check_combo`` decides robustness for one candidate combination
    — via :meth:`PairMatrix.verdict` (both library paths) or by running the
    full pipeline per candidate (arbitrary method callables).
    """
    ordered = sorted(names)
    verdicts: dict[frozenset[str], bool] = {}
    # Only *attested* robust sets (those check_combo confirmed) can make a
    # candidate inherit robustness: every inherited-robust set is itself a
    # subset of an attested one, so scanning the short attested list is
    # equivalent to scanning the whole verdicts dict — without the quadratic
    # blow-up in the number of subsets.
    attested: list[frozenset[str]] = []
    for size in range(len(ordered), 0, -1):
        for combo in itertools.combinations(ordered, size):
            subset = frozenset(combo)
            if any(subset < other for other in attested):
                verdicts[subset] = True
                continue
            robust = check_combo(combo)
            verdicts[subset] = robust
            if robust:
                attested.append(subset)
    return verdicts


def maximal_subsets(
    verdicts: dict[frozenset[str], bool]
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets of a verdict grid, largest first.

    Bucketed by subset size: a strict superset is necessarily larger, and
    every robust strict superset is contained in some *maximal* robust set
    of larger size (chains of robust supersets end at a maximal one), so
    scanning sizes in decreasing order and comparing each candidate only
    against the maximal sets found so far is exact — and near-linear where
    the old all-pairs scan over the robust list was quadratic.
    """
    by_size: dict[int, list[frozenset[str]]] = {}
    for subset, robust in verdicts.items():
        if robust:
            by_size.setdefault(len(subset), []).append(subset)
    maximal: list[frozenset[str]] = []
    for size in sorted(by_size, reverse=True):
        for subset in by_size[size]:
            if not any(subset < other for other in maximal):
                maximal.append(subset)
    return tuple(sorted(maximal, key=lambda s: (-len(s), sorted(s))))


def robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
    backend: str = "thread",
) -> dict[frozenset[str], bool]:
    """Robustness verdict for every non-empty subset of the programs.

    Subsets are keyed by the frozenset of program (BTP) names.  Unfolding
    happens once and the enumeration is driven off a shared
    :class:`~repro.summary.pairwise.EdgeBlockStore`: each candidate subset's
    ``SuG`` is assembled from cached pairwise edge blocks (exact, because
    Algorithm 1 adds edges per ordered pair of programs), so no block is
    ever computed twice — and for the built-in methods the
    :class:`PairMatrix` answers candidates containing a known non-robust
    pair (or screened robust by the interference flags) without assembling
    a graph at all.  ``jobs``/``backend`` parallelize block computation.
    """
    check = _resolve_method(method)
    ltps = unfold(programs, max_loop_iterations)
    store = EdgeBlockStore(schema, settings, jobs=jobs, backend=backend)
    store.register(ltps)
    ltps_by_origin: dict[str, list[str]] = {program.name: [] for program in programs}
    for ltp in ltps:
        ltps_by_origin[ltp.origin].append(ltp.name)

    matrix = PairMatrix.for_method(store, ltps_by_origin, check)
    if matrix is not None:
        return enumerate_robust_subsets(ltps_by_origin, matrix.verdict)

    def check_combo(combo: tuple[str, ...]) -> bool:
        keep = [name for origin in combo for name in ltps_by_origin[origin]]
        return check(store.graph(keep))

    return enumerate_robust_subsets(ltps_by_origin, check_combo)


def maximal_robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
    backend: str = "thread",
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets, largest first (as listed in Figures 6/7)."""
    return maximal_subsets(
        robust_subsets(
            programs, schema, settings, method, max_loop_iterations, jobs, backend
        )
    )


def format_subsets(subsets: Iterable[frozenset[str]], abbreviations: dict[str, str] | None = None) -> str:
    """Render subsets the way the paper does, e.g. ``{Am, DC, TS}, {Bal, DC}``."""
    rendered = []
    for subset in subsets:
        names = sorted(abbreviations.get(name, name) if abbreviations else name for name in subset)
        rendered.append("{" + ", ".join(names) + "}")
    return ", ".join(rendered)


@dataclass(frozen=True)
class SubsetsReport:
    """The result of a maximal-robust-subsets query, as one report object.

    The serializable counterpart of :func:`maximal_robust_subsets` /
    :meth:`repro.analysis.Analyzer.maximal_robust_subsets`: the CLI's
    ``repro subsets --json`` payload is exactly :meth:`to_dict`, and the
    service's ``/v1/subsets`` endpoint returns the same shape (which is what
    makes the two byte-identical).  ``abbreviations`` carry the Figure 6/7
    short labels for :meth:`describe`; they are presentation-only and not
    serialized.
    """

    workload: str
    settings: AnalysisSettings
    method: str
    maximal: tuple[frozenset[str], ...]
    abbreviations: Mapping[str, str] = field(default_factory=dict, compare=False)

    def describe(self) -> str:
        """The CLI's two-line text rendering."""
        subsets = format_subsets(self.maximal, dict(self.abbreviations))
        return (
            f"workload: {self.workload}   setting: {self.settings.label}   "
            f"method: {self.method}\n"
            f"maximal robust subsets: {subsets or '(none)'}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "settings": self.settings.label,
            "method": self.method,
            "maximal_robust_subsets": [sorted(subset) for subset in self.maximal],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubsetsReport":
        return cls(
            workload=data["workload"],
            settings=AnalysisSettings.from_label(data["settings"]),
            method=data["method"],
            maximal=tuple(
                frozenset(names) for names in data["maximal_robust_subsets"]
            ),
        )

    def __str__(self) -> str:
        return self.describe()
