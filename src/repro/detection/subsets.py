"""Robust-subset enumeration (the experiment grid of Figures 6 and 7).

Robustness is anti-monotone (Proposition 5.2): every subset of a robust set
of programs is robust.  The enumeration exploits this by walking subsets in
decreasing size and skipping subsets of already-attested robust sets; the
*maximal* robust subsets are those without a robust strict superset.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence

from repro.btp.program import BTP
from repro.btp.unfold import unfold
from repro.detection.typei import is_robust_type1
from repro.detection.typeii import is_robust_type2
from repro.schema import Schema
from repro.summary.construct import construct_summary_graph
from repro.summary.graph import SummaryGraph
from repro.summary.pairwise import EdgeBlockStore
from repro.summary.settings import AnalysisSettings

Method = Callable[[SummaryGraph], bool]

#: The two detection methods by name.
METHODS: dict[str, Method] = {
    "type-II": is_robust_type2,
    "type-I": is_robust_type1,
}


def _resolve_method(method: str | Method) -> Method:
    if callable(method):
        return method
    try:
        return METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(METHODS)}"
        ) from None


def is_robust(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
) -> bool:
    """Unfold, build the summary graph, and run the chosen detection method."""
    ltps = unfold(programs, max_loop_iterations)
    graph = construct_summary_graph(ltps, schema, settings, jobs=jobs)
    return _resolve_method(method)(graph)


def enumerate_robust_subsets(
    names: Iterable[str],
    check_combo: Callable[[tuple[str, ...]], bool],
) -> dict[frozenset[str], bool]:
    """The anti-monotone enumeration shared by the one-shot path and the
    :class:`repro.analysis.Analyzer` session.

    Walks subsets of ``names`` in decreasing size; subsets of attested-robust
    sets inherit robustness without calling ``check_combo`` (Proposition
    5.2).  ``check_combo`` decides robustness for one candidate combination
    — by running the full pipeline (one-shot path) or by restricting a
    cached summary graph (session path).
    """
    ordered = sorted(names)
    verdicts: dict[frozenset[str], bool] = {}
    # Only *attested* robust sets (those check_combo confirmed) can make a
    # candidate inherit robustness: every inherited-robust set is itself a
    # subset of an attested one, so scanning the short attested list is
    # equivalent to scanning the whole verdicts dict — without the quadratic
    # blow-up in the number of subsets.
    attested: list[frozenset[str]] = []
    for size in range(len(ordered), 0, -1):
        for combo in itertools.combinations(ordered, size):
            subset = frozenset(combo)
            if any(subset < other for other in attested):
                verdicts[subset] = True
                continue
            robust = check_combo(combo)
            verdicts[subset] = robust
            if robust:
                attested.append(subset)
    return verdicts


def maximal_subsets(
    verdicts: dict[frozenset[str], bool]
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets of a verdict grid, largest first."""
    robust = [subset for subset, ok in verdicts.items() if ok]
    maximal = [
        subset
        for subset in robust
        if not any(subset < other for other in robust)
    ]
    return tuple(sorted(maximal, key=lambda s: (-len(s), sorted(s))))


def robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
) -> dict[frozenset[str], bool]:
    """Robustness verdict for every non-empty subset of the programs.

    Subsets are keyed by the frozenset of program (BTP) names.  Unfolding
    happens once and the enumeration is driven off a shared
    :class:`~repro.summary.pairwise.EdgeBlockStore`: each candidate subset's
    ``SuG`` is assembled from cached pairwise edge blocks (exact, because
    Algorithm 1 adds edges per ordered pair of programs), so no block is
    ever computed twice.  ``max_loop_iterations`` is forwarded to
    ``unfold`` (it previously hard-defaulted to 2, disagreeing with
    :func:`is_robust`); ``jobs`` parallelizes block computation.
    """
    check = _resolve_method(method)
    ltps = unfold(programs, max_loop_iterations)
    store = EdgeBlockStore(schema, settings, jobs=jobs)
    store.register(ltps)
    ltps_by_origin: dict[str, list[str]] = {program.name: [] for program in programs}
    for ltp in ltps:
        ltps_by_origin[ltp.origin].append(ltp.name)

    def check_combo(combo: tuple[str, ...]) -> bool:
        keep = [name for origin in combo for name in ltps_by_origin[origin]]
        return check(store.graph(keep))

    return enumerate_robust_subsets(ltps_by_origin, check_combo)


def maximal_robust_subsets(
    programs: Sequence[BTP],
    schema: Schema,
    settings: AnalysisSettings = AnalysisSettings(),
    method: str | Method = "type-II",
    max_loop_iterations: int = 2,
    jobs: int | None = None,
) -> tuple[frozenset[str], ...]:
    """The maximal robust subsets, largest first (as listed in Figures 6/7)."""
    return maximal_subsets(
        robust_subsets(programs, schema, settings, method, max_loop_iterations, jobs)
    )


def format_subsets(subsets: Iterable[frozenset[str]], abbreviations: dict[str, str] | None = None) -> str:
    """Render subsets the way the paper does, e.g. ``{Am, DC, TS}, {Bal, DC}``."""
    rendered = []
    for subset in subsets:
        names = sorted(abbreviations.get(name, name) if abbreviations else name for name in subset)
        rendered.append("{" + ", ".join(names) + "}")
    return ", ".join(rendered)
