"""repro — robustness against multi-version Read Committed (MVRC).

A faithful, from-scratch reproduction of

    Vandevoort, Ketsman, Koch, Neven.
    "Detecting Robustness against MVRC for Transaction Programs with
    Predicate Reads", EDBT 2023 (arXiv:2302.08789).

The library decides, by static analysis, whether a set of transaction
programs can be executed under isolation level *multi-version Read
Committed* while still guaranteeing serializability.  Quick start::

    from repro import Analyzer

    session = Analyzer("auction")          # or "tpcc", "auction(5)", a
    report = session.analyze()             # workload file/text, or BTPs
    print(report)                          # robust: True — safe under MVRC
    print(report.to_json(indent=2))        # machine-readable report

    matrix = session.analyze_matrix()      # all four Section 7.2 settings
    maximal = session.maximal_robust_subsets()   # reuses cached stages

The :class:`Analyzer` session memoizes each pipeline stage (unfold →
Algorithm 1 → Algorithm 2), so multi-setting comparisons and subset
enumeration never repeat the expensive work; the one-shot
:func:`analyze` remains for single reports.  On the command line, the same
surface is ``repro analyze auction --json`` (see ``repro --help``).

See :mod:`repro.btp` for the program formalism, :mod:`repro.summary` for
summary-graph construction (Algorithm 1), :mod:`repro.detection` for the
robustness tests (Algorithm 2 and the type-I baseline), :mod:`repro.mvsched`
and :mod:`repro.engine` for the multiversion-schedule substrate, and
:mod:`repro.experiments` for the paper's evaluation.
"""

from repro import workloads
from repro.analysis import AnalysisMatrix, Analyzer
from repro.churn import (
    BurstConfig,
    ChurnStep,
    ChurnTrace,
    Monitor,
    Mutation,
    MutationEngine,
    OracleCheck,
)
from repro.btp import (
    BTP,
    FKConstraint,
    LTP,
    Statement,
    StatementType,
    choice,
    loop,
    optional,
    seq,
    unfold,
)
from repro.detection import (
    CycleWitness,
    RobustnessReport,
    SubsetsReport,
    WitnessAnchor,
    analyze,
    is_robust_type1,
    is_robust_type2,
    maximal_robust_subsets,
    robust_subsets,
)
from repro.repair import (
    AddProtectingFK,
    PromotePredicateToKey,
    PromoteReadToUpdate,
    Repair,
    RepairReport,
    RepairSet,
    SplitProgram,
    apply_repairs,
)
from repro.errors import (
    DeadlineExceeded,
    FaultError,
    InstantiationError,
    ProgramError,
    ReproError,
    ScheduleError,
    SchemaError,
    SqlError,
)
from repro.faults import Deadline, FaultPlan, FaultRule
from repro.schema import ForeignKey, Relation, Schema
from repro.store import BlockStore
from repro.service import (
    AdviseRequest,
    AnalysisService,
    AnalyzeRequest,
    BatchRequest,
    GraphRequest,
    GridRequest,
    GridSpec,
    ServiceError,
    SubsetsRequest,
    WatchRequest,
)
from repro.summary import (
    ALL_SETTINGS,
    ATTR_DEP,
    ATTR_DEP_FK,
    TPL_DEP,
    TPL_DEP_FK,
    AnalysisSettings,
    EdgeBlockStore,
    Granularity,
    SummaryEdge,
    SummaryGraph,
    SummaryStats,
    build_summary_graph,
    construct_summary_graph,
    pair_edges,
    workload_fingerprint,
)
from repro.workloads import Workload

__version__ = "1.9.0"

__all__ = [
    "__version__",
    # analysis sessions
    "Analyzer",
    "AnalysisMatrix",
    # the warm-session service and its request/grid layer
    "AnalysisService",
    "AnalyzeRequest",
    "SubsetsRequest",
    "GraphRequest",
    "AdviseRequest",
    "WatchRequest",
    "GridRequest",
    "BatchRequest",
    "GridSpec",
    "ServiceError",
    # churn monitoring
    "Monitor",
    "MutationEngine",
    "Mutation",
    "BurstConfig",
    "ChurnTrace",
    "ChurnStep",
    "OracleCheck",
    # the repair advisor
    "RepairReport",
    "RepairSet",
    "Repair",
    "PromotePredicateToKey",
    "PromoteReadToUpdate",
    "AddProtectingFK",
    "SplitProgram",
    "apply_repairs",
    # schema
    "Schema",
    "Relation",
    "ForeignKey",
    # programs
    "Statement",
    "StatementType",
    "BTP",
    "LTP",
    "FKConstraint",
    "seq",
    "choice",
    "optional",
    "loop",
    "unfold",
    # summary graphs
    "SummaryGraph",
    "SummaryEdge",
    "SummaryStats",
    "build_summary_graph",
    "construct_summary_graph",
    "EdgeBlockStore",
    "pair_edges",
    "AnalysisSettings",
    "Granularity",
    "TPL_DEP",
    "ATTR_DEP",
    "TPL_DEP_FK",
    "ATTR_DEP_FK",
    "ALL_SETTINGS",
    "workload_fingerprint",
    # detection
    "analyze",
    "RobustnessReport",
    "SubsetsReport",
    "is_robust_type1",
    "is_robust_type2",
    "robust_subsets",
    "maximal_robust_subsets",
    "CycleWitness",
    "WitnessAnchor",
    # workloads
    "workloads",
    "Workload",
    # fault injection and deadlines
    "FaultPlan",
    "FaultRule",
    "Deadline",
    "BlockStore",
    # errors
    "ReproError",
    "SchemaError",
    "ProgramError",
    "SqlError",
    "ScheduleError",
    "InstantiationError",
    "FaultError",
    "DeadlineExceeded",
]
