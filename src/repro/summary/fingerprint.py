"""Content fingerprints for schemas, programs and whole workloads.

PR 2's cache-staleness machinery compared schemas by content hash and
programs by re-unfolding; this module exposes the same identity as stable,
addressable fingerprints so higher layers can *key* things by workload:

* :func:`schema_fingerprint` — a content hash of a :class:`~repro.schema.Schema`;
* :func:`program_fingerprint` — a content hash of one program's unfolded
  LTPs (``Unfold≤k`` output, so two BTPs that unfold identically share it);
* :func:`workload_fingerprint` — schema fingerprint + every program's
  unfold hash + ``max_loop_iterations``, combined order-independently.

Two sessions share a workload fingerprint exactly when they would accept
each other's :meth:`~repro.analysis.Analyzer.save_cache` artifacts, which
is what makes the fingerprint the key of both the on-disk cache files and
the :class:`~repro.service.AnalysisService` warm-session pool.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Sequence

from repro.btp.ltp import LTP
from repro.schema import Schema


def schema_fingerprint(schema: Schema) -> str:
    """A content hash of a schema (its fields are tuples of frozen
    dataclasses, so ``repr`` is deterministic across processes)."""
    return hashlib.sha256(repr(schema).encode()).hexdigest()


def program_fingerprint(ltps: Sequence[LTP]) -> str:
    """A content hash of one program's unfolded LTPs.

    Hashes the canonical JSON of each LTP's ``to_dict`` (the same
    serialization :meth:`~repro.analysis.Analyzer.save_cache` persists), so
    the fingerprint survives process boundaries and matches exactly when
    PR 2's unfold-equality staleness check would accept the cache.
    """
    digest = hashlib.sha256()
    for ltp in ltps:
        digest.update(json.dumps(ltp.to_dict(), sort_keys=True).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def workload_fingerprint(
    schema: Schema,
    unfolded_by_program: Mapping[str, Sequence[LTP]],
    max_loop_iterations: int,
) -> str:
    """The identity of one analysis workload: schema + unfold hashes + k.

    ``unfolded_by_program`` maps each BTP name to its ``Unfold≤k`` LTPs.
    Program order does not matter (entries are hashed sorted by name), so
    reordering a workload file keeps its warm sessions and cache artifacts
    valid; renaming or editing any program changes the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(schema_fingerprint(schema).encode())
    digest.update(f"|k={max_loop_iterations}".encode())
    for name in sorted(unfolded_by_program):
        digest.update(f"|{name}=".encode())
        digest.update(program_fingerprint(unfolded_by_program[name]).encode())
    return digest.hexdigest()
