"""Plane-packed batch evaluation of Algorithm 1's interference conditions.

The per-pair kernel of :mod:`repro.summary.pairwise` decides
``ncDepConds``/``cDepConds`` one occurrence pair at a time.  This module
evaluates them for *entire occurrence-pair batches*:

* a :class:`PlaneArena` packs every compiled occurrence row of every
  registered program into contiguous integer **planes** — one
  ``array('Q')`` buffer per mask kind (writes, predicate reads, the
  combined ``w|r|p`` and ``r|p`` masks, protecting FKs), each occurrence
  owning ``words`` consecutive 64-bit words, plus ``array('q')`` planes
  for the interned relation id and dense statement-type id.  Programs
  occupy contiguous row ranges; removing one leaves a hole that later
  registrations reuse, so an incremental ``replace_program`` repacks only
  the edited program's rows;
* :func:`sweep_blocks` then evaluates the conditions for the full cross
  product of a source row set × target row set in one **sweep**, as
  elementwise AND/compare passes over the planes, and returns per-block
  *packed coordinates* ``(source_row, target_row, has_nc, has_cf)`` —
  edge-block bitsets instead of per-pair Python tuples.

Two sweep kernels produce bit-identical results:

* **numpy** (used when importable): planes are viewed zero-copy via
  ``np.frombuffer``, the five mask tests of ``ncDepConds`` fold into two
  broadcast AND sweeps over precombined planes (``wi ∧ (wj|rj|pj)`` and
  ``(ri|pi) ∧ wj``), Table 1 dispatch is an ``int8`` gather over
  :data:`~repro.summary.tables.NC_CODE_ROWS` /
  :data:`~repro.summary.tables.C_CODE_ROWS`, and edges fall out of one
  ``nonzero`` per row chunk;
* **stdlib** (the baseline — no third-party imports): each sweep packs the
  target rows into one big Python integer per plane (``k`` bits per
  target slot) and decides a whole source row against *all* targets with
  ~10 big-int operations, using the carry trick ``((x + F) & HIGH)`` to
  collapse each ``k``-bit slot to its "mask test is non-zero" indicator
  bit.  The arena's word sizing always leaves the top bit of each slot
  free, so the additions never carry across slots.

Condition algebra (shared by both kernels and property-tested against the
frozenset originals): with ``any_j = wj|rj|pj`` and ``rp_i = ri|pi``,

* ``ncDepConds``'s five tests collapse to ``(wi ∧ any_j) ∨ (rp_i ∧ wj)``;
* ``cDepConds`` is ``(pi ∧ wj) ∨ (ri ∧ wj ∧ ¬blocked)`` which, writing
  ``rpw = (rp_i ∧ wj)``, equals ``(rpw ∧ ¬blocked) ∨ ((pi ∧ wj) ∧
  blocked)`` — two mask tests plus the FK test instead of three.

The ``backend="process"`` fan-out of
:class:`~repro.summary.pairwise.EdgeBlockStore` builds on the same planes
via ``multiprocessing.shared_memory``: the parent copies the plane buffers
into one read-only shared segment, workers **map them zero-copy** (no
profile pickling — a work item is just ``(sweep id, row range)``), run the
same sweep kernels over their row slice, and write dense nc/cf bitset rows
into a preallocated shared output plane; the parent extracts coordinates
from the output plane exactly as the serial path does, so results are
deterministic whatever order tasks complete in.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from array import array
from typing import Iterable, NamedTuple, Sequence

from repro.errors import ProgramError
from repro.faults import inject as _faults
from repro.obs import log as obs_log
from repro.obs.trace import current_trace_id, set_trace_id
from repro.summary.tables import C_CODE_ROWS, ENTRY_COND, ENTRY_TRUE, NC_CODE_ROWS

try:  # pragma: no cover - exercised via both kernel paths in tests
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less hosts use the stdlib path
    _np = None

#: Sweep kernels: ``"auto"`` resolves to numpy when importable, else stdlib.
KERNELS = ("auto", "numpy", "stdlib")

#: Process-wide default, overridable per call; ``REPRO_PLANES_KERNEL`` lets
#: CI pin the stdlib path on hosts that do have numpy.
DEFAULT_KERNEL = os.environ.get("REPRO_PLANES_KERNEL", "auto")

#: Rows per numpy sweep chunk are sized so one boolean/uint64 intermediate
#: stays ~16 MB whatever the target count.
_CHUNK_CELLS = 2_000_000

_NC_CODE_NP = None
_C_CODE_NP = None


def numpy_available() -> bool:
    """Whether the numpy fast path can be used in this process."""
    return _np is not None


def resolve_kernel(kernel: str | None) -> str:
    """``"numpy"`` or ``"stdlib"`` from a requested kernel name."""
    kernel = DEFAULT_KERNEL if kernel is None else kernel
    if kernel not in KERNELS:
        raise ProgramError(
            f"unknown plane kernel {kernel!r}; expected one of {KERNELS}"
        )
    if kernel == "auto":
        return "numpy" if numpy_available() else "stdlib"
    if kernel == "numpy" and not numpy_available():
        raise ProgramError("plane kernel 'numpy' requested but numpy is not importable")
    return kernel


def words_for_bits(bits: int) -> int:
    """64-bit words per mask slot, always leaving the top slot bit free.

    The stdlib kernel's carry trick adds ``2**(k-1) - 1`` to every slot and
    needs the result to stay inside the slot; a free top bit guarantees it.
    """
    return bits // 64 + 1


class PlaneArena:
    """Contiguous occurrence planes for compiled program profiles.

    One instance backs one :class:`~repro.summary.pairwise.EdgeBlockStore`:
    every registered program's occurrence rows live at a contiguous
    ``(start, count)`` row range, all planes share the same ``words``-wide
    mask slots (attribute and FK masks alike — the wider of the two
    requirements, so the sweep kernels need a single slot geometry).

    The arena is the **source of truth** the sweep kernels read; numpy
    views are taken zero-copy via ``np.frombuffer`` and never cached across
    mutations (``array`` refuses to grow while a view exports its buffer).
    """

    __slots__ = (
        "words",
        "_writes",
        "_preads",
        "_anyrw",
        "_rp",
        "_fks",
        "_rels",
        "_types",
        "_rows",
        "_free",
        "_capacity",
        "rows_packed",
        "pack_seconds",
    )

    def __init__(self, words: int):
        self.words = words
        self._writes = array("Q")
        self._preads = array("Q")
        self._anyrw = array("Q")  # writes | reads | preads, per occurrence
        self._rp = array("Q")  # reads | preads, per occurrence
        self._fks = array("Q")
        self._rels = array("q")
        self._types = array("q")
        self._rows: dict[str, tuple[int, int]] = {}
        self._free: list[tuple[int, int]] = []
        self._capacity = 0
        #: Total occurrence rows ever written — the incremental-repack
        #: regression counter: replacing one program advances this by that
        #: program's row count only.
        self.rows_packed = 0
        self.pack_seconds = 0.0

    # -- row allocation -----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def rows_of(self, name: str) -> tuple[int, int]:
        """``(start, count)`` row range of one packed program."""
        return self._rows[name]

    @property
    def programs(self) -> int:
        return len(self._rows)

    @property
    def capacity(self) -> int:
        """Allocated rows (live rows plus reusable holes)."""
        return self._capacity

    def _take_slot(self, count: int) -> int:
        for index, (start, free) in enumerate(self._free):
            if free >= count:
                if free == count:
                    del self._free[index]
                else:
                    self._free[index] = (start + count, free - count)
                return start
        start = self._capacity
        self._grow(count)
        return start

    def _grow(self, rows: int) -> None:
        words = self.words
        self._writes.extend([0] * (rows * words))
        self._preads.extend([0] * (rows * words))
        self._anyrw.extend([0] * (rows * words))
        self._rp.extend([0] * (rows * words))
        self._fks.extend([0] * (rows * words))
        self._rels.extend([-1] * rows)
        self._types.extend([0] * rows)
        self._capacity += rows

    def _put_mask(self, plane: array, row: int, mask: int) -> None:
        base = row * self.words
        for word in range(self.words):
            plane[base + word] = mask & 0xFFFFFFFFFFFFFFFF
            mask >>= 64
        if mask:
            raise ProgramError(
                "plane arena: mask wider than the arena's slot width "
                f"({self.words} words); repack with a wider arena"
            )

    def add(self, profile) -> None:
        """Pack one compiled profile's occurrence rows (idempotent)."""
        if profile.name in self._rows:
            return
        started = time.perf_counter()
        occurrences = profile.occurrences
        start = self._take_slot(len(occurrences)) if occurrences else self._capacity
        for offset, (_, _, relation, type_id, wm, rm, pm, fkm) in enumerate(
            occurrences
        ):
            row = start + offset
            self._put_mask(self._writes, row, wm)
            self._put_mask(self._preads, row, pm)
            self._put_mask(self._anyrw, row, wm | rm | pm)
            self._put_mask(self._rp, row, rm | pm)
            self._put_mask(self._fks, row, fkm)
            self._rels[row] = relation
            self._types[row] = type_id
        self._rows[profile.name] = (start, len(occurrences))
        self.rows_packed += len(occurrences)
        self.pack_seconds += time.perf_counter() - started

    def remove(self, name: str) -> None:
        """Free one program's rows (they become a reusable hole)."""
        span = self._rows.pop(name, None)
        if span is not None and span[1]:
            self._free.append(span)

    # -- raw buffers --------------------------------------------------------
    def buffers(self) -> dict[str, memoryview]:
        """The plane buffers as flat byte views (little-endian words)."""
        return {
            "writes": memoryview(self._writes).cast("B"),
            "preads": memoryview(self._preads).cast("B"),
            "anyrw": memoryview(self._anyrw).cast("B"),
            "rp": memoryview(self._rp).cast("B"),
            "fks": memoryview(self._fks).cast("B"),
            "rels": memoryview(self._rels).cast("B"),
            "types": memoryview(self._types).cast("B"),
        }


class PlaneView(NamedTuple):
    """One sweep kernel's read-only view of packed planes.

    ``writes``/``preads``/``anyrw``/``rp``/``fks`` are flat little-endian
    64-bit word buffers with ``words`` words per row; ``rels``/``types``
    are flat signed-64 buffers, one word per row.  Built either from a
    :class:`PlaneArena` (serial path) or from a mapped shared-memory
    segment (process workers) — the kernels cannot tell the difference.
    """

    words: int
    writes: memoryview
    preads: memoryview
    anyrw: memoryview
    rp: memoryview
    fks: memoryview
    rels: memoryview
    types: memoryview


def arena_view(arena: PlaneArena) -> PlaneView:
    buffers = arena.buffers()
    return PlaneView(arena.words, *(buffers[key] for key in PlaneView._fields[1:]))


# ---------------------------------------------------------------------------
# numpy sweep kernel
# ---------------------------------------------------------------------------

def _np_tables():
    global _NC_CODE_NP, _C_CODE_NP
    if _NC_CODE_NP is None:
        _NC_CODE_NP = _np.array(NC_CODE_ROWS, dtype=_np.int8)
        _C_CODE_NP = _np.array(C_CODE_ROWS, dtype=_np.int8)
    return _NC_CODE_NP, _C_CODE_NP


def _np_rows(buffer: memoryview, dtype, words: int):
    plane = _np.frombuffer(buffer, dtype=dtype)
    return plane.reshape(-1, words) if words > 1 else plane


def _np_gather(view: PlaneView, rows):
    """Copy the sweep's rows out of the planes (fancy indexing copies, so
    no view keeps the arena's buffers exported afterwards)."""
    words = view.words
    index = _np.asarray(rows, dtype=_np.intp)
    return (
        _np_rows(view.writes, _np.uint64, words)[index],
        _np_rows(view.preads, _np.uint64, words)[index],
        _np_rows(view.anyrw, _np.uint64, words)[index],
        _np_rows(view.rp, _np.uint64, words)[index],
        _np_rows(view.fks, _np.uint64, words)[index],
        _np_rows(view.rels, _np.int64, 1)[index],
        _np_rows(view.types, _np.int64, 1)[index],
    )


#: Per-thread sweep scratch buffers, reused across np_sweep calls: fresh
#: chunk-sized uint64/intp temporaries land in mmap'd allocations whose
#: page faults would otherwise dominate the sweep.  Thread-local because
#: independent stores may sweep concurrently.  Worst-case retention is
#: bounded by ``_CHUNK_CELLS`` cells per buffer.
_SWEEP_SCRATCH = threading.local()


def _scratch(name: str, shape, dtype):
    buffers = getattr(_SWEEP_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = _SWEEP_SCRATCH.buffers = {}
    cells = shape[0] * shape[1]
    buffer = buffers.get(name)
    if buffer is None or buffer.size < cells or buffer.dtype != dtype:
        buffer = buffers[name] = _np.empty(cells, dtype=dtype)
    return buffer[:cells].reshape(shape)


def _np_test(lhs, rhs):
    """Per-pair "masks intersect" over gathered rows: broadcast AND."""
    if lhs.ndim == 1:
        return (lhs[:, None] & rhs[None, :]) != 0
    return ((lhs[:, None, :] & rhs[None, :, :]) != 0).any(axis=2)


def np_sweep(view: PlaneView, rows, cols, use_foreign_keys: bool):
    """Dense nc/cf boolean matrices for a row set × column set, chunked.

    Yields ``(row_offset, nc, cf)`` per row chunk; matrices are
    ``chunk × len(cols)`` booleans.  The yielded matrices are *reused
    scratch buffers* — consume (or copy) them before advancing the
    generator.  The single-word fast path runs every ufunc into a
    preallocated buffer pool: the chunk-sized ``uint64``/``intp``
    temporaries otherwise land in mmap'd allocations whose page faults
    dominate the sweep at typical scales.
    """
    nc_code_t, c_code_t = _np_tables()
    nc_flat, c_flat = nc_code_t.reshape(-1), c_code_t.reshape(-1)
    w_i, p_i, _, rp_i, fk_i, rel_i, type_i = _np_gather(view, rows)
    w_j, _, any_j, _, fk_j, rel_j, type_j = _np_gather(view, cols)
    type_i7 = type_i * 7
    total = len(rows)
    columns = len(cols)
    chunk = max(1, _CHUNK_CELLS // max(columns, 1))
    if view.words > 1:
        # Wide masks: the generic broadcast path ("intersect" needs a
        # reduction over the word axis, which has no in-place form).
        for offset in range(0, total, chunk):
            stop = min(offset + chunk, total)
            sl = slice(offset, stop)
            w_any = _np_test(w_i[sl], any_j)
            rpw = _np_test(rp_i[sl], w_j)
            nc_cond = w_any | rpw
            if use_foreign_keys:
                pw = _np_test(p_i[sl], w_j)
                blocked = _np_test(fk_i[sl], fk_j)
                c_cond = (rpw & ~blocked) | (pw & blocked)
            else:
                c_cond = rpw
            type_pairs = type_i7[sl][:, None] + type_j[None, :]
            nc_code = nc_flat[type_pairs]
            c_code = c_flat[type_pairs]
            same_relation = rel_i[sl][:, None] == rel_j[None, :]
            nc = ((nc_code == ENTRY_TRUE) | ((nc_code == ENTRY_COND) & nc_cond))
            nc &= same_relation
            cf = ((c_code == ENTRY_TRUE) | ((c_code == ENTRY_COND) & c_cond))
            cf &= same_relation
            yield offset, nc, cf
        return
    shape = (min(chunk, total), columns)
    work = _scratch("work", shape, _np.uint64)
    pairs = _scratch("pairs", shape, _np.intp)  # intp: take() copies others
    nc_code = _scratch("nc_code", shape, _np.int8)
    c_code = _scratch("c_code", shape, _np.int8)
    nc_cond, c_cond, pw, blocked, same, tmp, nc, cf = (
        _scratch(name, shape, bool)
        for name in ("nc_cond", "c_cond", "pw", "blocked", "same", "tmp", "nc", "cf")
    )

    def test_into(lhs, rhs, out):
        _np.bitwise_and(lhs[:, None], rhs[None, :], out=work[: len(lhs)])
        return _np.not_equal(work[: len(lhs)], 0, out=out)

    for offset in range(0, total, chunk):
        stop = min(offset + chunk, total)
        sl = slice(offset, stop)
        n = stop - offset
        # nc_cond = (w_i ∧ any_j) ∨ (rp_i ∧ w_j); the second conjunct is
        # also cDepConds' unblocked term, so it lands in c_cond first.
        test_into(w_i[sl], any_j, nc_cond[:n])
        test_into(rp_i[sl], w_j, c_cond[:n])
        _np.logical_or(nc_cond[:n], c_cond[:n], out=nc_cond[:n])
        if use_foreign_keys:
            # c_cond = (rpw ∧ ¬blocked) ∨ (pw ∧ blocked), folded in place.
            test_into(p_i[sl], w_j, pw[:n])
            test_into(fk_i[sl], fk_j, blocked[:n])
            _np.logical_and(pw[:n], blocked[:n], out=pw[:n])
            _np.logical_not(blocked[:n], out=blocked[:n])
            _np.logical_and(c_cond[:n], blocked[:n], out=c_cond[:n])
            _np.logical_or(c_cond[:n], pw[:n], out=c_cond[:n])
        _np.add(type_i7[sl][:, None], type_j[None, :], out=pairs[:n])
        _np.take(nc_flat, pairs[:n], out=nc_code[:n])
        _np.take(c_flat, pairs[:n], out=c_code[:n])
        _np.equal(rel_i[sl][:, None], rel_j[None, :], out=same[:n])
        _np.equal(nc_code[:n], ENTRY_COND, out=tmp[:n])
        _np.logical_and(tmp[:n], nc_cond[:n], out=tmp[:n])
        _np.equal(nc_code[:n], ENTRY_TRUE, out=nc[:n])
        _np.logical_or(nc[:n], tmp[:n], out=nc[:n])
        _np.logical_and(nc[:n], same[:n], out=nc[:n])
        _np.equal(c_code[:n], ENTRY_COND, out=tmp[:n])
        _np.logical_and(tmp[:n], c_cond[:n], out=tmp[:n])
        _np.equal(c_code[:n], ENTRY_TRUE, out=cf[:n])
        _np.logical_or(cf[:n], tmp[:n], out=cf[:n])
        _np.logical_and(cf[:n], same[:n], out=cf[:n])
        yield offset, nc[:n], cf[:n]


def _np_coords(view, rows, cols, use_foreign_keys):
    coords: list[tuple[int, int, bool, bool]] = []
    for offset, nc, cf in np_sweep(view, rows, cols, use_foreign_keys):
        either = nc | cf
        if not either.any():
            continue
        s_idx, t_idx = either.nonzero()
        nc_hits = nc[s_idx, t_idx].tolist()
        cf_hits = cf[s_idx, t_idx].tolist()
        s_list = (s_idx + offset).tolist()
        t_list = t_idx.tolist()
        coords.extend(zip(s_list, t_list, nc_hits, cf_hits))
    return coords


# ---------------------------------------------------------------------------
# stdlib big-int (SWAR) sweep kernel
# ---------------------------------------------------------------------------

def _row_int(buffer: memoryview, row: int, words: int) -> int:
    stride = words * 8
    return int.from_bytes(buffer[row * stride : (row + 1) * stride], "little")


def _swar_plane(buffer: memoryview, words: int, cols) -> int:
    """All target rows of one plane joined into a single big integer,
    ``words * 64`` bits per target slot."""
    stride = words * 8
    return int.from_bytes(
        b"".join(
            buffer[col * stride : (col + 1) * stride].tobytes() for col in cols
        ),
        "little",
    )


class _SwarConstants(NamedTuple):
    k: int  # bits per target slot
    high: int  # the top bit of every slot
    fill: int  # 2**(k-1) - 1 replicated into every slot
    t_writes: int
    t_anyrw: int
    t_fks: int
    rel_ind: dict[int, int]  # relation id -> HIGH bits of matching slots
    nc_true: tuple[int, ...]  # per source type id: HIGH bits of True columns
    nc_cond: tuple[int, ...]
    c_true: tuple[int, ...]
    c_cond: tuple[int, ...]


def _swar_setup(view: PlaneView, cols) -> _SwarConstants:
    words = view.words
    k = words * 64
    columns = len(cols)
    ones = ((1 << (k * columns)) - 1) // ((1 << k) - 1) if columns else 0
    high = ones << (k - 1)
    fill = high - ones
    rel_ind: dict[int, int] = {}
    type_ind = [0] * 7
    rels = view.rels.cast("q")
    types = view.types.cast("q")
    bit = 1 << (k - 1)
    for slot, col in enumerate(cols):
        slot_bit = bit << (slot * k)
        relation = rels[col]
        rel_ind[relation] = rel_ind.get(relation, 0) | slot_bit
        type_ind[types[col]] |= slot_bit
    def table_rows(code_rows, wanted):
        return tuple(
            _or_all(type_ind[tj] for tj in range(7) if row[tj] == wanted)
            for row in code_rows
        )
    return _SwarConstants(
        k,
        high,
        fill,
        _swar_plane(view.writes, words, cols),
        _swar_plane(view.anyrw, words, cols),
        _swar_plane(view.fks, words, cols),
        rel_ind,
        table_rows(NC_CODE_ROWS, ENTRY_TRUE),
        table_rows(NC_CODE_ROWS, ENTRY_COND),
        table_rows(C_CODE_ROWS, ENTRY_TRUE),
        table_rows(C_CODE_ROWS, ENTRY_COND),
    )


def _or_all(values: Iterable[int]) -> int:
    result = 0
    for value in values:
        result |= value
    return result


def swar_row(view: PlaneView, consts: _SwarConstants, row: int,
             use_foreign_keys: bool) -> tuple[int, int]:
    """One source row against every target slot: ``(nc, cf)`` indicator
    integers with the top bit of each matching slot set."""
    rels = view.rels.cast("q")
    match = consts.rel_ind.get(rels[row], 0)
    if not match:
        return 0, 0
    type_id = view.types.cast("q")[row]
    nc_true = consts.nc_true[type_id] & match
    nc_cond = consts.nc_cond[type_id] & match
    c_true = consts.c_true[type_id] & match
    c_cond = consts.c_cond[type_id] & match
    if not (nc_cond or c_cond):
        return nc_true, c_true
    words = view.words
    high, fill = consts.high, consts.fill
    # Replicate the source mask into every slot (one multiply), AND against
    # the joined target plane, then collapse each slot to its "non-zero"
    # indicator bit: the fill addition carries into the free top bit of any
    # slot whose AND result is non-zero.
    ones = consts.high >> (consts.k - 1)
    nc_hits = 0
    if nc_cond:
        w_i = _row_int(view.writes, row, words)
        rp_i = _row_int(view.rp, row, words)
        cond = 0
        if w_i:
            cond = ((w_i * ones) & consts.t_anyrw) + fill & high
        if rp_i:
            cond |= ((rp_i * ones) & consts.t_writes) + fill & high
        nc_hits = nc_cond & cond
    c_hits = 0
    if c_cond:
        rp_i = _row_int(view.rp, row, words)
        rpw = ((rp_i * ones) & consts.t_writes) + fill & high if rp_i else 0
        if use_foreign_keys:
            fk_i = _row_int(view.fks, row, words)
            blocked = ((fk_i * ones) & consts.t_fks) + fill & high if fk_i else 0
            if blocked:
                p_i = _row_int(view.preads, row, words)
                pw = ((p_i * ones) & consts.t_writes) + fill & high if p_i else 0
                cond = (rpw & (high ^ blocked)) | (pw & blocked)
            else:
                cond = rpw
        else:
            cond = rpw
        c_hits = c_cond & cond
    return nc_true | nc_hits, c_true | c_hits


def _swar_coords(view, rows, cols, use_foreign_keys):
    coords: list[tuple[int, int, bool, bool]] = []
    if not cols:
        return coords
    consts = _swar_setup(view, cols)
    k = consts.k
    for s, row in enumerate(rows):
        nc, cf = swar_row(view, consts, row, use_foreign_keys)
        merged = nc | cf
        while merged:
            low = merged & -merged
            t = (low.bit_length() - 1) // k
            coords.append((s, t, bool(nc & low), bool(cf & low)))
            merged ^= low
    return coords


# ---------------------------------------------------------------------------
# sweeps over an arena: planning, extraction, grouping
# ---------------------------------------------------------------------------

class SweepPlan(NamedTuple):
    """One batch: every ordered pair in ``sources × targets`` at once."""

    sources: tuple[str, ...]
    targets: tuple[str, ...]


def plan_sweeps(missing: Sequence[tuple[str, str]]) -> list[SweepPlan]:
    """Group missing ordered pairs into maximal cross-product sweeps.

    Pairs are grouped by source program, then sources sharing an identical
    target list share one sweep — a full ``n × n`` build is a single
    sweep, an incremental replace (one new program as source row plus as
    target column) is two.
    """
    by_source: dict[str, list[str]] = {}
    for source, target in missing:
        by_source.setdefault(source, []).append(target)
    groups: dict[tuple[str, ...], list[str]] = {}
    for source, targets in by_source.items():
        groups.setdefault(tuple(targets), []).append(source)
    return [
        SweepPlan(tuple(sources), targets) for targets, sources in groups.items()
    ]


def _sweep_rows(arena: PlaneArena, names: Sequence[str]):
    """``(flat row indices, [(name, sweep offset, count)])`` for a sweep."""
    rows: list[int] = []
    meta: list[tuple[str, int, int]] = []
    for name in names:
        start, count = arena.rows_of(name)
        meta.append((name, len(rows), count))
        rows.extend(range(start, start + count))
    return rows, meta


def group_coords(
    coords: Sequence[tuple[int, int, bool, bool]],
    src_meta: Sequence[tuple[str, int, int]],
    dst_meta: Sequence[tuple[str, int, int]],
) -> dict[tuple[str, str], tuple[tuple[int, int, bool, bool], ...]]:
    """Split sweep-local coordinates into per-ordered-pair blocks.

    Every pair of the sweep gets an entry (empty blocks included — they
    are cache entries too); within a block, coordinates keep the
    ``(source occurrence, target occurrence)`` program order the scalar
    kernel emits edges in.
    """
    src_of: list[int] = []
    src_local: list[int] = []
    for ordinal, (_, _, count) in enumerate(src_meta):
        src_of.extend([ordinal] * count)
        src_local.extend(range(count))
    dst_of: list[int] = []
    dst_local: list[int] = []
    for ordinal, (_, _, count) in enumerate(dst_meta):
        dst_of.extend([ordinal] * count)
        dst_local.extend(range(count))
    buckets: list[list[list[tuple[int, int, bool, bool]]]] = [
        [[] for _ in dst_meta] for _ in src_meta
    ]
    for s, t, nc, cf in coords:
        buckets[src_of[s]][dst_of[t]].append(
            (src_local[s], dst_local[t], bool(nc), bool(cf))
        )
    return {
        (src_name, dst_name): tuple(buckets[si][ti])
        for si, (src_name, _, _) in enumerate(src_meta)
        for ti, (dst_name, _, _) in enumerate(dst_meta)
    }


def sweep_blocks(
    arena: PlaneArena,
    sources: Sequence[str],
    targets: Sequence[str],
    use_foreign_keys: bool,
    kernel: str | None = None,
) -> dict[tuple[str, str], tuple[tuple[int, int, bool, bool], ...]]:
    """Packed blocks for every ordered pair in ``sources × targets``.

    The serial entry point: one plane sweep, then per-pair grouping.  The
    resolved kernel ("numpy" or "stdlib") decides how the sweep runs; the
    results are bit-identical.
    """
    rows, src_meta = _sweep_rows(arena, sources)
    cols, dst_meta = _sweep_rows(arena, targets)
    view = arena_view(arena)
    if resolve_kernel(kernel) == "numpy":
        coords = _np_coords(view, rows, cols, use_foreign_keys)
    else:
        coords = _swar_coords(view, rows, cols, use_foreign_keys)
    return group_coords(coords, src_meta, dst_meta)


# ---------------------------------------------------------------------------
# dense bitset emission (bench + process-backend wire format)
# ---------------------------------------------------------------------------

def dense_rows(
    view: PlaneView,
    rows: Sequence[int],
    cols: Sequence[int],
    use_foreign_keys: bool,
    kernel: str | None = None,
) -> tuple[bytes, bytes]:
    """The sweep as two dense bitset planes (nc, cf).

    Row ``s`` of each plane is ``ceil(len(cols)/8)`` bytes; bit ``t``
    (little-endian within the row) is set when the ordered occurrence pair
    ``(rows[s], cols[t])`` admits that dependency.  This is the
    preallocated-output-plane format process workers write.
    """
    stride = (len(cols) + 7) // 8
    if resolve_kernel(kernel) == "numpy":
        nc_parts: list[bytes] = []
        cf_parts: list[bytes] = []
        for _, nc, cf in np_sweep(view, rows, cols, use_foreign_keys):
            nc_parts.append(
                _np.packbits(nc, axis=1, bitorder="little").tobytes()
            )
            cf_parts.append(
                _np.packbits(cf, axis=1, bitorder="little").tobytes()
            )
        return b"".join(nc_parts), b"".join(cf_parts)
    if not cols:
        return b"", b""
    consts = _swar_setup(view, cols)
    k = consts.k
    nc_rows: list[bytes] = []
    cf_rows: list[bytes] = []
    for row in rows:
        nc, cf = swar_row(view, consts, row, use_foreign_keys)
        nc_rows.append(_indicator_bytes(nc, k, stride))
        cf_rows.append(_indicator_bytes(cf, k, stride))
    return b"".join(nc_rows), b"".join(cf_rows)


def _indicator_bytes(indicator: int, k: int, stride: int) -> bytes:
    dense = 0
    while indicator:
        low = indicator & -indicator
        dense |= 1 << ((low.bit_length() - 1) // k)
        indicator ^= low
    return dense.to_bytes(stride, "little")


def coords_from_dense(
    nc_plane: bytes, cf_plane: bytes, row_count: int, col_count: int
) -> list[tuple[int, int, bool, bool]]:
    """Sweep coordinates back out of dense bitset planes."""
    stride = (col_count + 7) // 8
    coords: list[tuple[int, int, bool, bool]] = []
    for s in range(row_count):
        nc = int.from_bytes(nc_plane[s * stride : (s + 1) * stride], "little")
        cf = int.from_bytes(cf_plane[s * stride : (s + 1) * stride], "little")
        merged = nc | cf
        while merged:
            low = merged & -merged
            t = low.bit_length() - 1
            coords.append((s, t, bool(nc & low), bool(cf & low)))
            merged ^= low
    return coords


# ---------------------------------------------------------------------------
# shared-memory process fan-out
# ---------------------------------------------------------------------------

#: Parent-side registry of live (created, not yet unlinked) segments, so
#: abnormal exits can best-effort unlink instead of leaking ``/dev/shm``
#: entries.  Keyed by segment name; the value carries the mapped object
#: (unlinking needs one) and an owner token, letting one store's finalizer
#: clean up after itself without unlinking a concurrent store's batch.
_LIVE_SEGMENTS: dict[str, tuple[object, object | None]] = {}
_LIVE_LOCK = threading.Lock()
_SEGMENT_IDS = itertools.count()


def _create_segment(size: int, owner: object | None = None):
    """A named shared-memory segment, registered for leak cleanup.

    Names are ``repro_<pid>_<n>`` so a test (or an operator) can audit
    ``/dev/shm`` for this library's residue specifically.
    """
    from multiprocessing import shared_memory

    if _faults.fire("shm.attach") is not None:
        raise OSError("injected fault: shared-memory segment creation failed")
    name = f"repro_{os.getpid()}_{next(_SEGMENT_IDS)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=max(size, 1))
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[segment.name] = (segment, owner)
    return segment


def _release_segment(segment) -> None:
    """Close and unlink one segment, dropping it from the live registry."""
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(segment.name, None)
    try:
        segment.close()
        segment.unlink()
    except OSError:  # pragma: no cover - already gone (cleanup raced us)
        pass


def live_segments() -> tuple[str, ...]:
    """Names of segments created but not yet unlinked (leak diagnostics)."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE_SEGMENTS))


def cleanup_segments(owner: object | None = None) -> int:
    """Best-effort unlink of registered segments; returns how many.

    With ``owner`` only that owner's segments go (a store finalizer
    cleaning up after itself); without, everything does (the ``repro
    serve`` SIGTERM path and the :mod:`atexit` hook).  Safe to call any
    time: normally the sweep's ``finally`` has already emptied the
    registry and this is a no-op.
    """
    with _LIVE_LOCK:
        doomed = [
            segment
            for segment, seg_owner in _LIVE_SEGMENTS.values()
            if owner is None or seg_owner is owner
        ]
    for segment in doomed:
        _release_segment(segment)
    return len(doomed)


atexit.register(cleanup_segments)


#: Worker-side cache of attached segments, keyed by shm name; entries not
#: referenced by the current task generation are closed (the parent unlinks
#: segments after every batch, so stale attachments only waste mappings).
_WORKER_SEGMENTS: dict = {}


def _attach_segment(name: str):
    from multiprocessing import shared_memory

    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        # Attaching re-registers the name with the process tree's (shared)
        # resource tracker, which is an idempotent set-add; the parent's
        # unlink() performs the single matching unregister.  Do NOT
        # unregister here — that would double-unregister and make the
        # tracker log a KeyError at interpreter exit.
        segment = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS[name] = segment
    return segment


def _prune_segments(keep: set) -> None:
    for name in list(_WORKER_SEGMENTS):
        if name not in keep:
            try:
                _WORKER_SEGMENTS.pop(name).close()
            except Exception:  # pragma: no cover - best effort
                pass


_PLANE_ORDER = ("writes", "preads", "anyrw", "rp", "fks", "rels", "types")


def pack_shared_input(arena: PlaneArena, owner: object | None = None):
    """Copy the arena's planes into one read-only shared-memory segment.

    Returns ``(segment, layout)`` where the layout carries the per-plane
    byte offsets and the slot width — everything a worker needs to rebuild
    a :class:`PlaneView` zero-copy from the mapped buffer.
    """
    buffers = arena.buffers()
    offsets: dict[str, tuple[int, int]] = {}
    cursor = 0
    for key in _PLANE_ORDER:
        size = buffers[key].nbytes
        offsets[key] = (cursor, size)
        cursor += size
    segment = _create_segment(cursor, owner)
    for key in _PLANE_ORDER:
        offset, size = offsets[key]
        if size:
            segment.buf[offset : offset + size] = buffers[key]
    return segment, {"words": arena.words, "offsets": offsets}


def view_from_shared(buffer: memoryview, layout: dict) -> PlaneView:
    planes = {}
    for key in _PLANE_ORDER:
        offset, size = layout["offsets"][key]
        planes[key] = buffer[offset : offset + size]
    return PlaneView(layout["words"], *(planes[key] for key in _PLANE_ORDER))


def _plane_worker(task: dict) -> int:
    """Compute one row slice of one sweep into the shared output plane."""
    if task.get("kill"):
        # Injected worker.kill fault: die the way a real OOM-killed or
        # segfaulting worker does — no exception, no cleanup — so the
        # parent observes a genuine BrokenProcessPool and the pool is
        # genuinely unusable afterwards.
        os._exit(1)
    # Adopt the originating request's trace id (shipped in the task
    # descriptor) so anything this worker logs or raises is attributable
    # to the HTTP request that caused the sweep.
    set_trace_id(task.get("trace_id"))
    _prune_segments({task["input_name"], task["output_name"]})
    input_segment = _attach_segment(task["input_name"])
    output_segment = _attach_segment(task["output_name"])
    view = view_from_shared(input_segment.buf, task["layout"])
    lo, hi = task["row_lo"], task["row_hi"]
    cols = task["cols"]
    nc_bytes, cf_bytes = dense_rows(
        view, task["rows"][lo:hi], cols, task["use_foreign_keys"], task["kernel"]
    )
    stride = (len(cols) + 7) // 8
    nc_offset = task["nc_offset"] + lo * stride
    cf_offset = task["cf_offset"] + lo * stride
    output_segment.buf[nc_offset : nc_offset + len(nc_bytes)] = nc_bytes
    output_segment.buf[cf_offset : cf_offset + len(cf_bytes)] = cf_bytes
    return hi - lo


def process_sweep_blocks(
    arena: PlaneArena,
    plans: Sequence[SweepPlan],
    use_foreign_keys: bool,
    pool,
    workers: int,
    kernel: str | None = None,
    owner: object | None = None,
) -> list[dict[tuple[str, str], tuple[tuple[int, int, bool, bool], ...]]]:
    """Run several sweeps across a process pool, zero-copy via shared memory.

    The input planes ship once per batch (one segment all workers map);
    each work item is a ``(sweep, row range)`` descriptor; workers write
    dense nc/cf bitset rows into a preallocated output segment at
    positional offsets, so extraction order — and therefore every block —
    is deterministic regardless of scheduling.  Returns one grouped-block
    dict per plan, aligned with ``plans``.
    """
    kernel = resolve_kernel(kernel)
    input_segment, layout = pack_shared_input(arena, owner)
    sweeps = []
    cursor = 0
    for plan in plans:
        rows, src_meta = _sweep_rows(arena, plan.sources)
        cols, dst_meta = _sweep_rows(arena, plan.targets)
        stride = (len(cols) + 7) // 8
        size = len(rows) * stride
        sweeps.append(
            {
                "rows": rows,
                "cols": cols,
                "src_meta": src_meta,
                "dst_meta": dst_meta,
                "stride": stride,
                "nc_offset": cursor,
                "cf_offset": cursor + size,
            }
        )
        cursor += 2 * size
    try:
        output_segment = _create_segment(cursor, owner)
    except OSError:
        _release_segment(input_segment)
        raise
    try:
        tasks = []
        trace_id = current_trace_id()
        total_rows = sum(len(sweep["rows"]) for sweep in sweeps) or 1
        for sweep in sweeps:
            rows = sweep["rows"]
            if not rows or not sweep["cols"]:
                continue
            # ~4 slices per worker across the whole batch amortizes dispatch
            # while keeping the pool fed; slices stay row-aligned.
            share = max(1, round(len(rows) * workers * 4 / total_rows))
            step = max(1, len(rows) // share)
            for lo in range(0, len(rows), step):
                tasks.append(
                    {
                        "input_name": input_segment.name,
                        "output_name": output_segment.name,
                        "layout": layout,
                        "rows": rows,
                        "cols": sweep["cols"],
                        "row_lo": lo,
                        "row_hi": min(lo + step, len(rows)),
                        "nc_offset": sweep["nc_offset"],
                        "cf_offset": sweep["cf_offset"],
                        "use_foreign_keys": use_foreign_keys,
                        "kernel": kernel,
                        "trace_id": trace_id,
                    }
                )
        if tasks and _faults.fire("worker.kill") is not None:
            # One poison task per batch: the worker that picks it up dies
            # abruptly (os._exit), breaking the pool for real.
            tasks.insert(0, {"kill": True})
        if tasks:
            obs_log.debug(
                "sweep.dispatch",
                tasks=len(tasks),
                sweeps=len(sweeps),
                workers=workers,
            )
            list(pool.map(_plane_worker, tasks))
        results = []
        output = bytes(output_segment.buf)
        for sweep in sweeps:
            rows, cols = sweep["rows"], sweep["cols"]
            size = len(rows) * sweep["stride"]
            coords = coords_from_dense(
                output[sweep["nc_offset"] : sweep["nc_offset"] + size],
                output[sweep["cf_offset"] : sweep["cf_offset"] + size],
                len(rows),
                len(cols),
            )
            results.append(group_coords(coords, sweep["src_meta"], sweep["dst_meta"]))
        return results
    finally:
        _release_segment(input_segment)
        _release_segment(output_segment)
